#!/usr/bin/env python3
"""Security analysis walkthrough (§5, §8 and §11 of the paper).

Reproduces, analytically:

* the wave-attack sweep of Fig. 3 (how many activations an attacker can
  force under PRFM and PRAC-N before a victim is refreshed),
* the secure-configuration selection used by the performance experiments,
* Chronus' closed-form security bound, and
* the worst-case DRAM-bandwidth consumption of the §11 performance attack.

Run with::

    python examples/security_analysis.py
"""

from repro.analysis.bandwidth import chronus_max_bandwidth_consumption, prac_max_bandwidth_consumption
from repro.analysis.security import (
    chronus_max_activations,
    chronus_secure_backoff_threshold,
    minimum_secure_nrh_prac,
    prac_max_activations,
    prfm_max_activations,
    secure_prac_backoff_threshold,
    secure_prfm_threshold,
)


def main() -> None:
    print("=== Wave attack vs PRFM (Fig. 3a) ===")
    print("RFMth   |R1|=2K  |R1|=64K")
    for rfm_th in (2, 4, 16, 64, 256):
        small = prfm_max_activations(rfm_th, 2048)
        large = prfm_max_activations(rfm_th, 65536)
        print(f"{rfm_th:5d}   {small:7d}  {large:8d}")

    print("\n=== Wave attack vs PRAC-N (Fig. 3b, worst case over |R1|) ===")
    print("NBO    PRAC-1  PRAC-2  PRAC-4")
    for nbo in (1, 4, 16, 64, 256):
        row = [
            max(prac_max_activations(nbo, nref, r1) for r1 in (2048, 8192, 65536))
            for nref in (1, 2, 4)
        ]
        print(f"{nbo:4d}   {row[0]:6d}  {row[1]:6d}  {row[2]:6d}")
    print(f"PRAC-4 can be configured securely down to N_RH = {minimum_secure_nrh_prac(4)}")

    print("\n=== Secure configurations used by the performance experiments ===")
    print("N_RH    PRFM RFMth   PRAC-4 NBO   Chronus NBO   Chronus bound")
    for nrh in (1024, 256, 64, 32, 20):
        try:
            rfm_th = str(secure_prfm_threshold(nrh))
        except ValueError:
            rfm_th = "none"
        try:
            prac_nbo = str(secure_prac_backoff_threshold(nrh, 4))
        except ValueError:
            prac_nbo = "none"
        chronus_nbo = chronus_secure_backoff_threshold(nrh)
        bound = chronus_max_activations(chronus_nbo)
        print(f"{nrh:5d}   {rfm_th:>10s}   {prac_nbo:>10s}   {chronus_nbo:11d}   {bound:13d}")

    print("\n=== Memory performance attack bounds (S11 / Appendix D) ===")
    for nrh in (128, 20):
        prac = prac_max_bandwidth_consumption(nrh)
        chronus = chronus_max_bandwidth_consumption(nrh)
        print(
            f"N_RH={nrh:4d}: an attacker can consume up to {prac:.0%} of DRAM time "
            f"under PRAC-4 but only {chronus:.0%} under Chronus"
        )


if __name__ == "__main__":
    main()
