#!/usr/bin/env python3
"""Quickstart: simulate one four-core workload mix under three mechanisms.

Runs the paper's system configuration (Table 2) on a small synthetic
workload mix with no mitigation, with Chronus, and with PRAC-4, and prints
the performance and DRAM-energy comparison -- a miniature version of the
paper's headline result.

Run with::

    python examples/quickstart.py
"""

from repro import paper_system_config, simulate
from repro.workloads import build_mix_traces, workload_mixes


def main() -> None:
    mix = workload_mixes()[0]
    print(f"Workload mix {mix.name}: {', '.join(mix.applications)}")
    traces = build_mix_traces(mix, accesses_per_core=2000)

    results = {}
    for mechanism in ("None", "Chronus", "PRAC-4"):
        config = paper_system_config(mechanism=mechanism, nrh=1024)
        results[mechanism] = simulate(config, traces)
        print(f"  simulated {mechanism:8s} ({results[mechanism].cycles} DRAM cycles)")

    baseline = results["None"]
    print("\nmechanism   slowdown   norm. energy   back-offs   preventive rows")
    for mechanism, result in results.items():
        slowdown = result.cycles / baseline.cycles
        energy = result.energy_nj / baseline.energy_nj
        backoffs = result.mitigation_stats.get("backoffs", 0)
        rows = result.controller_stats["preventive_refresh_rows"]
        print(f"{mechanism:10s}  {slowdown:7.3f}   {energy:11.3f}   {backoffs:9d}   {rows:15.0f}")

    print(
        "\nChronus keeps the baseline DRAM timings (Concurrent Counter Update), "
        "so its slowdown stays near 1.0 while PRAC pays for its inflated "
        "tRP/tRC on every row miss."
    )


if __name__ == "__main__":
    main()
