#!/usr/bin/env python3
"""Memory performance (denial-of-memory-service) attack demo (§11).

One malicious core hammers eight rows in each of four banks as fast as it
can, forcing the read-disturbance mitigation to spend DRAM time on preventive
refreshes.  The script compares how much a benign co-running application
slows down under PRAC-4 versus Chronus, next to the theoretical worst-case
bounds of Appendix D.

Run with::

    python examples/performance_attack.py
"""

from repro import paper_system_config, simulate
from repro.analysis.bandwidth import (
    chronus_max_bandwidth_consumption,
    prac_max_bandwidth_consumption,
)
from repro.attacks.patterns import performance_attack_trace
from repro.workloads.mixes import build_mix_traces


NRH = 20
BENIGN_APPS = ["549.fotonik3d", "429.mcf", "437.leslie3d"]


def main() -> None:
    benign = build_mix_traces(BENIGN_APPS, accesses_per_core=1500)
    attack = performance_attack_trace(num_banks=4, rows_per_bank=8, num_accesses=8000)

    print(f"Theoretical worst-case DRAM time consumed by preventive refreshes (N_RH={NRH}):")
    print(f"  PRAC-4 : {prac_max_bandwidth_consumption(NRH):.0%}")
    print(f"  Chronus: {chronus_max_bandwidth_consumption(NRH):.0%}\n")

    for mechanism in ("PRAC-4", "Chronus"):
        peaceful_config = paper_system_config(mechanism=mechanism, nrh=NRH).with_overrides(
            num_cores=len(BENIGN_APPS)
        )
        peaceful = simulate(peaceful_config, benign)

        attacked_config = paper_system_config(mechanism=mechanism, nrh=NRH).with_overrides(
            num_cores=len(BENIGN_APPS) + 1, attacker_cores=(0,)
        )
        attacked = simulate(attacked_config, [attack] + benign)

        print(f"=== {mechanism} ===")
        print("  benign app        IPC alone-mix   IPC under attack   slowdown")
        worst = 0.0
        for index, app in enumerate(BENIGN_APPS):
            before = peaceful.core_ipcs[index]
            after = attacked.core_ipcs[index + 1]
            slowdown = 1.0 - after / before
            worst = max(worst, slowdown)
            print(f"  {app:16s}  {before:13.3f}   {after:16.3f}   {slowdown:8.1%}")
        backoffs = attacked.mitigation_stats.get("backoffs", 0)
        print(f"  back-offs triggered by the attacker: {backoffs}")
        print(f"  worst single-application slowdown:   {worst:.1%}\n")


if __name__ == "__main__":
    main()
