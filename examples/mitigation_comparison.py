#!/usr/bin/env python3
"""Compare all mitigation mechanisms across RowHammer thresholds.

A miniature version of Fig. 8 / Fig. 10: sweeps the RowHammer threshold from
1K down to 20 for every evaluated mechanism on a couple of four-core mixes and
prints normalised weighted speedup, normalised DRAM energy and storage cost.

Run with::

    python examples/mitigation_comparison.py [accesses_per_core]
"""

import sys

from repro.analysis.storage import storage_overhead_bytes
from repro.experiments.runner import ExperimentRunner, default_mixes


MECHANISMS = ("Chronus", "Chronus-PB", "PRAC-4", "Graphene", "Hydra", "PRFM", "PARA")
NRH_VALUES = (1024, 64, 20)


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    runner = ExperimentRunner(accesses_per_core=accesses)
    mixes = [mix.applications for mix in default_mixes(2)]
    print(f"Simulating {len(MECHANISMS)} mechanisms x {len(NRH_VALUES)} thresholds "
          f"x {len(mixes)} four-core mixes ({accesses} accesses/core) ...\n")

    comparisons = runner.compare(MECHANISMS, NRH_VALUES, mixes)

    print("mechanism    N_RH   norm. WS   perf. overhead   norm. energy   storage (MiB)")
    for comparison in comparisons:
        storage = storage_overhead_bytes(comparison.mechanism, comparison.nrh)
        print(
            f"{comparison.mechanism:10s}  {comparison.nrh:5d}   "
            f"{comparison.mean_normalized_ws:8.3f}   "
            f"{comparison.mean_performance_overhead:14.1%}   "
            f"{comparison.mean_normalized_energy:12.3f}   "
            f"{storage.total_mib:13.3f}"
        )

    chronus_at_20 = next(c for c in comparisons if c.mechanism == "Chronus" and c.nrh == 20)
    prac_at_20 = next(c for c in comparisons if c.mechanism == "PRAC-4" and c.nrh == 20)
    print(
        f"\nAt N_RH = 20, Chronus loses {chronus_at_20.mean_performance_overhead:.1%} "
        f"of performance while PRAC-4 loses {prac_at_20.mean_performance_overhead:.1%} "
        "(the paper's headline comparison)."
    )


if __name__ == "__main__":
    main()
