#!/usr/bin/env python3
"""Red-team a mitigation mechanism with synthesised attack patterns.

Compiles every registered attack pattern (see ``python -m repro attack
list``), lets a ground-truth disturbance oracle watch each one run against
Chronus and PRAC-4, and then searches for the empirical minimum RowHammer
threshold at which an attack escapes -- printed next to the paper's
analytical bound.

Run with::

    python examples/red_team.py

The probes are memoised in the shared on-disk result cache, so a second run
completes almost instantly.  See docs/ATTACKS.md for the pattern catalogue
and the search semantics.
"""

from repro.attacks import AttackSpec, pattern_names
from repro.attacks.redteam import RedTeamEngine
from repro.experiments.cache import ResultCache, default_cache_dir
from repro.experiments.sweep import SweepEngine, attack_search_job
from repro.system.config import paper_system_config

MECHANISMS = ("Chronus", "PRAC-4")
NRH_GRID = (1, 2, 4, 8, 16)
PATTERNS = ("single_sided", "wave", "rfm_dodge")


def probe_all_patterns(engine: SweepEngine, nrh: int = 16, mechanism: str = "Chronus") -> None:
    """Show the oracle's view of every pattern at one sweep point."""
    print(f"Ground-truth disturbance per pattern ({mechanism}, N_RH={nrh}):")
    base = paper_system_config()
    jobs = {
        name: attack_search_job(base, mechanism, nrh, AttackSpec.create(name))
        for name in pattern_names()
    }
    results = engine.run_jobs(list(jobs.values()))
    for name, job in jobs.items():
        stats = results[job.key].mitigation_stats
        print(
            f"  {name:13s} max row disturbance {stats['oracle_max_disturbance']:4d} "
            f"/ {nrh}  ({stats['oracle_activations']} ACTs, "
            f"{stats['oracle_mitigation_events']} victim refreshes)"
        )
    print()


def search_boundaries(engine: SweepEngine) -> None:
    """Empirical vs analytical security boundary for each mechanism."""
    redteam = RedTeamEngine(engine=engine)
    for mechanism in MECHANISMS:
        report = redteam.search(mechanism, NRH_GRID, patterns=PATTERNS)
        print(f"{mechanism}:")
        print(f"  escaping thresholds : {report.escaping_nrh_values() or 'none'}")
        print(f"  empirical min secure: {report.empirical_min_secure_nrh}")
        print(f"  analytical min secure: {report.analytical_min_secure}")
        disagreement = report.disagreement
        print(f"  agreement            : {'no -- ' + disagreement if disagreement else 'yes'}\n")


def main() -> None:
    engine = SweepEngine(cache=ResultCache(default_cache_dir()))
    probe_all_patterns(engine)
    search_boundaries(engine)
    print(engine.cache.summary())


if __name__ == "__main__":
    main()
