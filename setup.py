"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so that
editable installs work in offline environments whose setuptools predates the
bundled ``bdist_wheel`` command (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
