"""Fig. 15 (Appendix E): PRAC DRAM energy on the eight-core configuration."""

from repro.experiments import figures

from conftest import print_cache_stats, print_figure, run_once


def test_fig15_eightcore_energy(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig15_data,
        nrh_values=(1024, 20),
        applications=("523.xalancbmk", "519.lbm"),
        accesses_per_core=800,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 15: PRAC-4 DRAM energy, eight-core homogeneous workloads",
        rows,
        columns=("mechanism", "nrh", "normalized_energy"),
    )
    print_cache_stats(sweep_engine)
    by_nrh = {r["nrh"]: r for r in rows}
    # Energy overhead is non-negligible at N_RH = 1K and grows at N_RH = 20.
    assert by_nrh[1024]["normalized_energy"] >= 1.0
    assert by_nrh[20]["normalized_energy"] >= by_nrh[1024]["normalized_energy"]
