"""Fig. 12 (Appendix C): Chronus vs ABACuS with ABACuS's address mapping."""

from repro.experiments import figures

from conftest import (
    BENCH_ACCESSES,
    BENCH_MIXES,
    BENCH_NRH_VALUES,
    print_cache_stats,
    print_figure,
    run_once,
)


def test_fig12_chronus_vs_abacus(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig12_data,
        nrh_values=BENCH_NRH_VALUES,
        num_mixes=BENCH_MIXES,
        accesses_per_core=BENCH_ACCESSES,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 12: Chronus vs ABACuS (ABACuS address mapping)",
        rows,
        columns=("mechanism", "nrh", "normalized_ws", "performance_overhead"),
    )
    print_cache_stats(sweep_engine)
    by_key = {(r["mechanism"], r["nrh"]): r for r in rows}
    for nrh in BENCH_NRH_VALUES:
        assert by_key[("Chronus", nrh)]["normalized_ws"] >= by_key[("ABACuS", nrh)]["normalized_ws"] - 0.02
