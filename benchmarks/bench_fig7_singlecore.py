"""Fig. 7: single-core performance of all mechanisms at N_RH = 1K and 32."""

from repro.experiments import figures

from conftest import BENCH_ACCESSES, print_cache_stats, print_figure, run_once


APPLICATIONS = ("549.fotonik3d", "429.mcf", "462.libquantum", "483.xalancbmk")
MECHANISMS = ("Chronus", "Chronus-PB", "PRAC-4", "Graphene", "Hydra", "PARA")


def test_fig7_single_core(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig7_data,
        nrh_values=(1024, 32),
        mechanisms=MECHANISMS,
        applications=APPLICATIONS,
        accesses_per_core=BENCH_ACCESSES,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 7: single-core normalized speedup",
        rows,
        columns=("nrh", "mechanism", "application", "normalized_speedup"),
    )
    print_cache_stats(sweep_engine)

    def mean(mechanism, nrh):
        values = [
            r["normalized_speedup"]
            for r in rows
            if r["mechanism"] == mechanism and r["nrh"] == nrh
        ]
        return sum(values) / len(values)

    # Chronus has the lowest overhead at the modern threshold ...
    assert mean("Chronus", 1024) >= mean("PRAC-4", 1024)
    # ... and still outperforms PRAC at the future threshold.
    assert mean("Chronus", 32) >= mean("PRAC-4", 32)
