"""Channel scale-out: read-bandwidth scaling and per-mechanism completion.

The paper's simulated system (Table 2) is a single DDR5 channel; the
multi-channel scale-out generalises it to N independent channels behind a
:class:`~repro.controller.router.ChannelRouter`.  This benchmark demonstrates
the two properties the scale-out claims:

1. **Bandwidth scaling.**  A bandwidth-bound synthetic workload (four cores
   issuing back-to-back random reads that miss every row buffer and bypass
   the LLC) gains aggregate read bandwidth roughly linearly in the channel
   count; the benchmark asserts >= 1.5x from one channel to two.
2. **Mechanism compatibility.**  Every mechanism of
   :data:`~repro.core.factory.MECHANISM_NAMES` runs a two-channel system to
   completion (one mitigation instance per channel).

Both parts simulate directly (no result cache): the traces are tiny and the
point is the scaling ratio, not a cached figure.
"""

from __future__ import annotations

import random

from repro.core.factory import MECHANISM_NAMES
from repro.cpu.trace import Trace, TraceEntry
from repro.system.config import paper_system_config
from repro.system.simulator import simulate
from repro.workloads.mixes import build_mix_traces

from conftest import print_figure, run_once

#: Channel counts of the scaling sweep.
CHANNEL_COUNTS = (1, 2, 4)

#: Minimum accepted bandwidth gain from 1 -> 2 channels (acceptance bound).
MIN_TWO_CHANNEL_SPEEDUP = 1.5

#: Random reads per core of the bandwidth-bound workload.
STREAM_ACCESSES = 1500


def bandwidth_bound_traces(num_cores: int = 4, accesses: int = STREAM_ACCESSES, seed: int = 7):
    """Back-to-back random reads: every access is a row miss in a random bank.

    Row misses cost ACT + RD + PRE on the channel command bus, so a single
    channel saturates long before the cores' MSHRs do -- which is exactly the
    regime in which extra channels pay off.
    """
    traces = []
    for core in range(num_cores):
        rng = random.Random(seed + core)
        base = core * (1 << 27)
        entries = [
            TraceEntry(
                gap_instructions=0,
                address=base + (rng.randrange(1 << 26) // 64) * 64,
            )
            for _ in range(accesses)
        ]
        traces.append(Trace(f"randstream{core}", entries))
    return traces


def channel_scaling_rows():
    rows = []
    for channels in CHANNEL_COUNTS:
        config = paper_system_config().with_overrides(
            num_cores=4, channels=channels, attacker_cores=(0, 1, 2, 3)
        )
        result = simulate(config, bandwidth_bound_traces())
        rows.append(
            {
                "channels": channels,
                "cycles": result.cycles,
                "reads": result.controller_stats["reads_served"],
                "read_bw_bytes_per_cycle": round(
                    result.read_bandwidth_bytes_per_cycle(), 2
                ),
                "per_channel_reads": "/".join(
                    str(record["reads_served"]) for record in result.channel_stats
                ),
            }
        )
    return rows


def test_read_bandwidth_scales_with_channels(benchmark):
    rows = run_once(benchmark, channel_scaling_rows)
    print_figure("Channel scale-out: aggregate read bandwidth", rows)

    bandwidth = {row["channels"]: row["read_bw_bytes_per_cycle"] for row in rows}
    speedup = bandwidth[2] / bandwidth[1]
    print(f"--- 1 -> 2 channel read-bandwidth speedup: {speedup:.2f}x ---")
    assert speedup >= MIN_TWO_CHANNEL_SPEEDUP
    # More channels never hurt aggregate bandwidth on this workload.
    assert bandwidth[4] >= bandwidth[2]


def mechanism_completion_rows():
    traces = build_mix_traces(
        ["549.fotonik3d", "429.mcf"],
        accesses_per_core=300,
        seed=1,
    )
    rows = []
    for mechanism in MECHANISM_NAMES:
        config = paper_system_config(mechanism=mechanism, nrh=128).with_overrides(
            num_cores=2, channels=2
        )
        result = simulate(config, traces)
        assert result.cycles < config.max_cycles, f"{mechanism} hit the cycle limit"
        assert all(ipc > 0 for ipc in result.core_ipcs), f"{mechanism} core starved"
        assert len(result.channel_stats) == 2
        rows.append(
            {
                "mechanism": mechanism,
                "cycles": result.cycles,
                "reads_ch0": result.channel_stats[0]["reads_served"],
                "reads_ch1": result.channel_stats[1]["reads_served"],
                "is_secure": result.is_secure,
            }
        )
    return rows


def test_every_mechanism_completes_on_two_channels(benchmark):
    rows = run_once(benchmark, mechanism_completion_rows)
    print_figure("Two-channel completion, all mechanisms (N_RH = 128)", rows)
    assert len(rows) == len(MECHANISM_NAMES)
