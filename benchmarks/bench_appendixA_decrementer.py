"""Appendix A: the 8-bit decrementer circuit (Table 3)."""

from repro.experiments import figures

from conftest import print_figure, run_once


def test_appendix_a_decrementer(benchmark):
    data = run_once(benchmark, figures.appendix_a_data)
    print_figure("Appendix A, Table 3: decrementer gate-level implementation", data["table"])
    print(
        f"total gates={data['gate_count']}, transistors={data['transistor_count']}, "
        f"critical path={data['critical_path_delay_ns']} ns, "
        f"functional mismatches={data['functional_mismatches']}"
    )
    assert data["gate_count"] == 21
    assert data["transistor_count"] == 96
    assert data["functional_mismatches"] == 0
    assert data["fits_within_trc"]
