"""§11 + Appendix D: memory performance (denial-of-memory-service) attack."""

from repro.experiments import figures

from conftest import print_cache_stats, print_figure, run_once


def test_sec11_theoretical_bandwidth_bounds(benchmark):
    rows = run_once(benchmark, figures.sec11_theory_data, nrh_values=(128, 20))
    print_figure(
        "S11 theory: worst-case DRAM bandwidth consumed by preventive refreshes",
        rows,
        columns=("mechanism", "nrh", "nbo", "nref", "max_bandwidth_consumption"),
    )
    by_key = {(r["mechanism"], r["nrh"]): r["max_bandwidth_consumption"] for r in rows}
    # Paper: ~94% for PRAC vs ~32% for Chronus at N_RH = 20.
    assert by_key[("PRAC-4", 20)] > 0.8
    assert by_key[("Chronus", 20)] < 0.4


def test_sec11_performance_attack_simulation(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.sec11_simulation_data,
        nrh_values=(128, 20),
        mechanisms=("PRAC-4", "Chronus"),
        num_mixes=1,
        accesses_per_core=1200,
        attack_accesses=6000,
        engine=sweep_engine,
    )
    print_figure(
        "S11 simulation: benign-core slowdown under a memory performance attack",
        rows,
        columns=("mechanism", "nrh", "mean_performance_loss", "max_slowdown"),
    )
    print_cache_stats(sweep_engine)
    by_key = {(r["mechanism"], r["nrh"]): r for r in rows}
    # Chronus bounds the damage better than PRAC at the future threshold.
    assert (
        by_key[("Chronus", 20)]["mean_performance_loss"]
        <= by_key[("PRAC-4", 20)]["mean_performance_loss"] + 0.02
    )
