"""Fig. 4: performance of the industry mechanisms (PRAC / RFM variants)."""

from repro.experiments import figures

from conftest import (
    BENCH_ACCESSES,
    BENCH_MIXES,
    BENCH_NRH_VALUES,
    print_cache_stats,
    print_figure,
    run_once,
)


def test_fig4_prac_and_rfm_variants(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig4_data,
        nrh_values=BENCH_NRH_VALUES,
        mechanisms=("PRAC-4", "PRAC-1", "PRAC+PRFM", "PRFM"),
        num_mixes=BENCH_MIXES,
        accesses_per_core=BENCH_ACCESSES,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 4: normalized weighted speedup of PRAC / RFM configurations",
        rows,
        columns=("mechanism", "nrh", "normalized_ws", "performance_overhead", "is_secure"),
    )
    print_cache_stats(sweep_engine)
    by_key = {(r["mechanism"], r["nrh"]): r for r in rows}
    # Overheads grow as N_RH shrinks.
    assert (
        by_key[("PRAC-4", 20)]["normalized_ws"]
        <= by_key[("PRAC-4", 1024)]["normalized_ws"] + 0.02
    )
    # PRAC has a non-negligible overhead even at N_RH = 1K (timing changes).
    assert by_key[("PRAC-4", 1024)]["performance_overhead"] > 0.0
    # PRFM becomes expensive at very low thresholds.
    assert by_key[("PRFM", 20)]["performance_overhead"] > by_key[("PRFM", 1024)]["performance_overhead"]
