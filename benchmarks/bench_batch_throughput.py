#!/usr/bin/env python3
"""Batch-kernel throughput: in-process batch mode vs serial vs the worker pool.

The workload is the *quick figure sweep* -- the same mechanism set, threshold
sweep and four-core mix that ``bench_fig8_multicore.py`` simulates (the
benchmark suite's largest single figure) -- executed three times from a cold
cache:

* **serial**  -- ``SweepEngine(workers=0)``, one job at a time.
* **batch**   -- ``SweepEngine(workers=0, batch=True)``: the NumPy-backed
  batch planner (``repro.experiments.batch``) shares precomputed trace
  arrays, the decoded-address table and pooled LLC / counter buffers across
  every config of a group, and enables the controller's gated fast kernels.
* **pool**    -- ``SweepEngine(workers=N)``, the PR 5 process pool.

Alongside wall-clock, every run returns a digest of its result payloads:
the batch digest must be byte-identical to the serial one (the same standard
``tests/test_batch_equivalence.py`` enforces, re-checked here on the real
benchmark workload).

Machine-independent gating (CI): absolute wall-clock depends on the runner,
so the gates are *same-run* relative ratios:

* ``--min-batch-speedup X`` -- batch must be at least X times faster than
  serial, measured in the same process on the same machine.
* on a single-CPU machine the batch run must also beat the worker pool
  (process parallelism is physically useless there -- the honest pool
  number is <= 1.0x -- so in-process batching is the only lever); on
  multi-core machines the pool may legitimately win and the comparison is
  reported, not gated.

Usage::

    python benchmarks/bench_batch_throughput.py              # full set + checks
    python benchmarks/bench_batch_throughput.py --quick      # CI smoke subset
    python benchmarks/bench_batch_throughput.py --update     # re-record the JSON
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.experiments.cache import ResultCache, result_to_dict  # noqa: E402
from repro.experiments.runner import default_mixes  # noqa: E402
from repro.experiments.sweep import SweepEngine, SweepSpec  # noqa: E402

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_batch_throughput.json"
)

#: Worker count of the recorded pool comparison (bench_sweep_throughput's).
DEFAULT_WORKERS = 8

#: Fig. 8 mechanism set (bench_fig8_multicore.py).
FIG8_MECHANISMS = (
    "Chronus", "Chronus-PB", "PRAC-4", "Graphene", "Hydra", "PRFM", "PARA",
)

#: Threshold sweep of the quick benchmark suite (benchmarks/conftest.py).
BENCH_NRH_VALUES = (1024, 128, 20)


def sweep_spec(quick: bool) -> SweepSpec:
    """The quick figure sweep (full) or a CI smoke subset (quick)."""
    mixes = tuple(mix.applications for mix in default_mixes(1))
    if quick:
        # Batchable by construction: no single-app "alone" jobs (each has
        # its own trace and would form a singleton group), so the whole
        # subset shares one TracePlan and the gate measures the batch
        # engine, not the group planner's worst case.
        return SweepSpec(
            mechanisms=("Chronus", "PRAC-4", "Graphene"),
            nrh_values=(1024, 128),
            mixes=mixes,
            accesses_per_core=400,
            include_alone=False,
        )
    return SweepSpec(
        mechanisms=FIG8_MECHANISMS,
        nrh_values=BENCH_NRH_VALUES,
        mixes=mixes,
        accesses_per_core=1500,
    )


def results_digest(results) -> str:
    """Order-independent digest of every result payload in a sweep."""
    payloads = sorted(
        json.dumps(result_to_dict(result), sort_keys=True)
        for result in results.values()
    )
    return hashlib.sha256("\n".join(payloads).encode()).hexdigest()


def run_cold_sweep(
    spec: SweepSpec, workers: int, batch: bool = False
) -> Dict[str, object]:
    """Execute ``spec`` once from a cold cache and time it.

    Each pass uses a fresh cold cache (the point is execution speed, not
    cache hits).  Callers repeat this and keep the per-mode minimum -- see
    ``main``, which *interleaves* the modes round-robin so that the slow
    frequency drift of a shared-host runner lands on every mode equally
    instead of flattering whichever mode ran during a fast window.
    """
    with tempfile.TemporaryDirectory(prefix="bench-batch-") as tmp:
        engine = SweepEngine(
            cache=ResultCache(os.path.join(tmp, "cache")),
            workers=workers,
            batch=batch,
        )
        try:
            start = time.perf_counter()
            results = engine.run(spec)
            elapsed = time.perf_counter() - start
            cold_report = engine.last_run_report
            # Warm re-run: everything must come from the cache.
            engine.run(spec)
            warm_executed = engine.last_run_report.executed_jobs
        finally:
            engine.close()
    return {
        "jobs": len(results),
        "seconds": elapsed,
        "warm_executed": warm_executed,
        "shards": len(cold_report.shards),
        "digest": results_digest(results),
    }


def _keep_best(
    best: Optional[Dict[str, object]], new: Dict[str, object]
) -> Dict[str, object]:
    """The per-mode minimum over interleaved rounds."""
    if best is None or new["seconds"] < best["seconds"]:
        return new
    return best


def load_bench() -> Dict[str, object]:
    if not os.path.exists(BENCH_JSON):
        return {
            "description": (
                "Batch-kernel throughput on the quick figure sweep: "
                "in-process batch mode vs serial vs the worker pool "
                "(see benchmarks/bench_batch_throughput.py)"
            )
        }
    with open(BENCH_JSON) as handle:
        return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset: two mechanisms, one threshold, 400 accesses",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-record BENCH_batch_throughput.json and append to the trajectory",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="measure and print only; skip every gate",
    )
    parser.add_argument(
        "--no-pool", action="store_true",
        help="skip the worker-pool comparison (serial + batch only)",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS, metavar="N",
        help=f"worker count of the pool comparison (default {DEFAULT_WORKERS})",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, metavar="N",
        help="interleaved cold-sweep rounds (serial/batch/pool per round); "
             "the per-mode minimum is recorded (default 1)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=None, metavar="X",
        help="machine-independent gate: fail unless the batch cold sweep is "
             "at least X times faster than the serial one measured in the "
             "same run",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    failures: List[str] = []
    bench = load_bench()

    spec = sweep_spec(args.quick)
    label = "quick" if args.quick else "full"
    jobs = len(spec.expand())

    repeats = max(1, args.repeats)
    rounds = "round" if repeats == 1 else "interleaved rounds"
    print(f"cold sweep ({label}): {jobs} jobs, {repeats} {rounds}...")
    serial: Optional[Dict[str, object]] = None
    batch: Optional[Dict[str, object]] = None
    pool: Optional[Dict[str, object]] = None
    for _ in range(repeats):
        serial = _keep_best(serial, run_cold_sweep(spec, workers=0))
        batch = _keep_best(batch, run_cold_sweep(spec, workers=0, batch=True))
        if not args.no_pool:
            pool = _keep_best(pool, run_cold_sweep(spec, workers=args.workers))
    assert serial is not None and batch is not None
    print(f"  serial: {serial['seconds']:6.2f}s ({serial['jobs']} jobs)")
    batch_speedup = serial["seconds"] / batch["seconds"]
    print(
        f"  batch:  {batch['seconds']:6.2f}s ({batch_speedup:.2f}x vs "
        f"serial, {batch['shards']} batch group(s))"
    )

    pool_speedup = None
    if pool is not None:
        pool_speedup = serial["seconds"] / pool["seconds"]
        print(
            f"  pool:   {pool['seconds']:6.2f}s ({pool_speedup:.2f}x vs "
            f"serial, cpu_count={cpu_count})"
        )

    if not args.no_check:
        if batch["digest"] != serial["digest"]:
            failures.append(
                "batch result payloads differ from serial (byte-identity "
                "violated on the benchmark workload)"
            )
        else:
            print("digest: batch results byte-identical to serial: OK")
        for name, run in (("serial", serial), ("batch", batch), ("pool", pool)):
            if run is not None and run["warm_executed"]:
                failures.append(
                    f"warm {name} re-run executed jobs: the cache did not "
                    f"serve the sweep"
                )
        if args.min_batch_speedup is not None:
            if batch_speedup < args.min_batch_speedup:
                failures.append(
                    f"batch cold sweep only {batch_speedup:.2f}x faster than "
                    f"serial (floor {args.min_batch_speedup:.2f}x)"
                )
            else:
                print(
                    f"batch gate: {batch_speedup:.2f}x >= "
                    f"{args.min_batch_speedup:.2f}x: OK"
                )
        if pool is not None and cpu_count < 2:
            # The ISSUE 6 acceptance comparison: on a single-CPU box the
            # pool cannot help, so batch mode must be the faster engine.
            if batch["seconds"] >= pool["seconds"]:
                failures.append(
                    f"batch ({batch['seconds']:.2f}s) not faster than the "
                    f"{args.workers}-worker pool ({pool['seconds']:.2f}s) on "
                    f"a single-CPU machine"
                )
            else:
                print(
                    f"single-CPU gate: batch {pool['seconds'] / batch['seconds']:.2f}x "
                    f"faster than the {args.workers}-worker pool: OK"
                )

    if args.update:
        bench["cold_sweep"] = {
            "spec": label,
            "jobs": serial["jobs"],
            "serial_seconds": round(serial["seconds"], 3),
            "batch_seconds": round(batch["seconds"], 3),
            "batch_speedup": round(batch_speedup, 3),
            "batch_groups": batch["shards"],
            "pool_seconds": (
                round(pool["seconds"], 3) if pool is not None else None
            ),
            "pool_speedup": (
                round(pool_speedup, 3) if pool_speedup is not None else None
            ),
            "workers": args.workers,
            "cpu_count": cpu_count,
            "repeats": max(1, args.repeats),
            "digest_match": batch["digest"] == serial["digest"],
            "note": (
                "single-process numbers; on a 1-CPU machine the pool "
                "speedup is honestly <= 1.0x and batch mode is the only "
                "way to beat serial.  Since the structure-of-arrays bank "
                "timing plane became the default backend, serial runs the "
                "same vectorized kernels as batch, so the full-sweep ratio "
                "compressed to the shareable-setup fraction; the quick "
                "sweep, where shared precomputation dominates, still shows "
                "the batch engine's full advantage."
            ),
        }
        bench["recorded_on"] = platform.platform()
        bench["python"] = platform.python_version()
        bench["recorded_at"] = time.strftime("%Y-%m-%d")
        bench.setdefault("trajectory", []).append(
            {
                "date": time.strftime("%Y-%m-%d"),
                "spec": label,
                "serial_seconds": round(serial["seconds"], 3),
                "batch_speedup": round(batch_speedup, 3),
                "pool_speedup": (
                    round(pool_speedup, 3) if pool_speedup is not None else None
                ),
                "cpu_count": cpu_count,
                "python": platform.python_version(),
            }
        )
        with open(BENCH_JSON, "w") as handle:
            json.dump(bench, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"re-recorded {BENCH_JSON}")
        from repro.artifacts.emit import emit_bench_artifact

        artifact = emit_bench_artifact(BENCH_JSON)
        print(f"re-recorded {artifact}")
        return 0

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
