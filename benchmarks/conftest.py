"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
simulations are scaled down (few mixes, a few thousand memory accesses per
core) so the whole suite runs on a laptop; the *shape* of each figure -- which
mechanism wins, how overheads scale with the RowHammer threshold -- is what
the benchmarks reproduce and print.  docs/EXPERIMENTS.md records the output
of a full run next to the paper's numbers.

All simulation-backed benchmarks share one session-scoped
:class:`~repro.experiments.sweep.SweepEngine` whose results persist in an
on-disk cache (``REPRO_CACHE_DIR``, default ``benchmarks/.repro-cache``).
The first run simulates everything; every later run -- including a different
figure that shares baselines -- is served from the cache.  Each benchmark
prints the cache statistics so the served-from-cache fraction is visible in
the output.  Set ``REPRO_SWEEP_WORKERS=N`` (the engine's own knob) to
simulate missing jobs across N worker processes.

Each benchmark runs exactly once (``rounds=1``): the interesting output is the
figure data itself, the wall-clock time is reported by pytest-benchmark as a
bonus.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


#: Memory accesses per core used by the scaled-down simulation benchmarks.
#: Override with REPRO_BENCH_ACCESSES for a larger (slower, more faithful) run.
BENCH_ACCESSES = _env_int("REPRO_BENCH_ACCESSES", 1500)

#: Workload mixes per sweep point (REPRO_BENCH_MIXES overrides; the paper uses 60).
BENCH_MIXES = _env_int("REPRO_BENCH_MIXES", 1)

#: RowHammer thresholds swept by the scaled-down benchmarks (a subset of the
#: paper's 1K..20 sweep that still shows the trend and the crossover).
BENCH_NRH_VALUES = (1024, 128, 20)

#: On-disk result cache shared by every simulation benchmark.
BENCH_CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".repro-cache"),
)


@pytest.fixture(scope="session")
def sweep_engine():
    """One engine (and one persistent result cache) for the whole session."""
    from repro.experiments.cache import ResultCache
    from repro.experiments.sweep import SweepEngine

    # workers=None defers to the engine's REPRO_SWEEP_WORKERS env var.
    return SweepEngine(cache=ResultCache(BENCH_CACHE_DIR), workers=None)


def run_once(benchmark, function: Callable, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_figure(title: str, rows: Sequence[dict], columns: Sequence[str] | None = None) -> None:
    """Print a reproduced figure/table in a uniform format."""
    from repro.experiments.figures import format_rows

    print(f"\n=== {title} ===")
    print(format_rows(rows, columns))


def print_cache_stats(engine) -> None:
    """Print the shared engine's cache statistics below a figure."""
    print(
        f"--- {engine.cache.summary()}; {engine.executed_jobs} jobs simulated "
        f"this session (workers={engine.workers}) ---"
    )
