#!/usr/bin/env python3
"""Service load benchmark: concurrent clients, cold vs cached latency.

Boots a real :class:`SimulationService` on an ephemeral port (event loop on
a background thread, serial engine, cold on-disk cache) and drives it with
several concurrent :class:`ServiceClient` threads over real sockets -- the
HTTP parser, WebSocket framing, admission queue and executor thread are all
on the measured path.

Two phases, maintained in ``BENCH_service_load.json``:

* **cold** -- every client submits distinct sweeps (unique seeds), watches
  each over WebSocket to completion and records the end-to-end latency
  (submit POST to terminal ``done`` event).  Because one executor thread
  serialises execution, cold latency includes honest queue wait -- that is
  the number a capacity planner needs, not the bare engine time.
* **cached** -- the same submissions again.  Every job must be served
  entirely from the result cache (``executed == 0``); the recorded
  latencies measure pure service overhead (parse, admit, schedule, replay
  the stream).

Gates (machine-independent, same-run relative):

* every job in both phases reaches ``done``,
* the cached phase executes zero simulator jobs,
* cached p50 latency must beat cold p50 -- the cache has to be visible at
  the service boundary, not just inside the engine.

Usage::

    python benchmarks/bench_service_load.py            # full set + checks
    python benchmarks/bench_service_load.py --quick    # CI smoke subset
    python benchmarks/bench_service_load.py --update   # re-record the JSON
"""

from __future__ import annotations

import argparse
import asyncio
import datetime
import json
import os
import platform
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.sweep import SweepEngine  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.queue import FairQueue  # noqa: E402
from repro.service.server import SimulationService  # noqa: E402

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_service_load.json"
)

#: Concurrent client threads / sequential submissions per client.
FULL_CLIENTS, FULL_JOBS_PER_CLIENT = 4, 3
QUICK_CLIENTS, QUICK_JOBS_PER_CLIENT = 2, 2


def client_spec(client_index: int, round_index: int, quick: bool) -> Dict[str, object]:
    """A small sweep unique to (client, round) -- distinct seeds keep the
    cold phase genuinely cold."""
    return {
        "mechanisms": ["Chronus"],
        "nrh": [128],
        "num_mixes": 1,
        "accesses": 150 if quick else 400,
        "seed": client_index * 100 + round_index,
    }


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile (no numpy dependency on the bench path)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class ServiceUnderTest:
    """A live service on a background loop thread, torn down cleanly."""

    def __init__(self, cache_dir: str) -> None:
        self.engine = SweepEngine(cache=ResultCache(cache_dir), workers=0)
        self.service = SimulationService(
            engine=self.engine,
            queue=FairQueue(max_depth=256, per_client_active=64,
                            rate=1000.0, burst=1000),
        )
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start(port=0))
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(10):
            raise RuntimeError("service did not start")

    @property
    def port(self) -> int:
        return self.service.port

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


def drive_phase(
    port: int, clients: int, jobs_per_client: int, quick: bool
) -> List[float]:
    """Run one phase; returns per-job end-to-end latencies in seconds."""
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[str] = []

    def run_client(index: int) -> None:
        client = ServiceClient(port=port, client_id=f"bench-{index}", timeout=120)
        for round_index in range(jobs_per_client):
            spec = client_spec(index, round_index, quick)
            start = time.perf_counter()
            response = client.submit(spec)
            final = client.wait(str(response["job"]), timeout=600)
            latencies[index].append(time.perf_counter() - start)
            if final.get("state") != "done":
                errors.append(
                    f"client {index} round {round_index}: state {final.get('state')!r}"
                )

    threads = [
        threading.Thread(target=run_client, args=(index,))
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=900)
        if thread.is_alive():
            errors.append("client thread did not finish")
    if errors:
        raise RuntimeError("; ".join(errors))
    return [latency for per_client in latencies for latency in per_client]


def summarise(latencies: List[float]) -> Dict[str, object]:
    return {
        "jobs": len(latencies),
        "p50_ms": round(percentile(latencies, 0.50) * 1000.0, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1000.0, 2),
        "mean_ms": round(sum(latencies) / len(latencies) * 1000.0, 2),
        "max_ms": round(max(latencies) * 1000.0, 2),
    }


def measure(quick: bool) -> Dict[str, object]:
    clients = QUICK_CLIENTS if quick else FULL_CLIENTS
    jobs_per_client = QUICK_JOBS_PER_CLIENT if quick else FULL_JOBS_PER_CLIENT
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        under_test = ServiceUnderTest(os.path.join(tmp, "cache"))
        try:
            cold = drive_phase(under_test.port, clients, jobs_per_client, quick)
            executed_cold = under_test.engine.executed_jobs
            cached = drive_phase(under_test.port, clients, jobs_per_client, quick)
            executed_cached = under_test.engine.executed_jobs - executed_cold
            stats = ServiceClient(port=under_test.port).stats()
        finally:
            under_test.close()
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "quick": quick,
        "cold": dict(summarise(cold), executed_jobs=executed_cold),
        "cached": dict(summarise(cached), executed_jobs=executed_cached),
        "jobs_done": stats["jobs_by_state"].get("done", 0),
        "cpu_count": os.cpu_count() or 1,
    }


def load_bench() -> Dict[str, object]:
    if not os.path.exists(BENCH_JSON):
        return {
            "description": (
                "Service load trajectory: cold vs cached end-to-end job "
                "latency under concurrent clients "
                "(see benchmarks/bench_service_load.py)"
            )
        }
    with open(BENCH_JSON) as handle:
        return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset: fewer clients and submissions",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-record BENCH_service_load.json and append to the trajectory",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="measure and print only; skip every gate",
    )
    args = parser.parse_args(argv)

    measured = measure(quick=args.quick)
    cold, cached = measured["cold"], measured["cached"]
    print(
        f"cold:   p50 {cold['p50_ms']:8.1f} ms  p95 {cold['p95_ms']:8.1f} ms  "
        f"({cold['jobs']} jobs, {cold['executed_jobs']} executed)"
    )
    print(
        f"cached: p50 {cached['p50_ms']:8.1f} ms  p95 {cached['p95_ms']:8.1f} ms  "
        f"({cached['jobs']} jobs, {cached['executed_jobs']} executed)"
    )

    failures: List[str] = []
    if not args.no_check:
        if cached["executed_jobs"] != 0:
            failures.append(
                f"cached phase executed {cached['executed_jobs']} jobs; "
                "expected everything to come from the result cache"
            )
        if cold["executed_jobs"] == 0:
            failures.append("cold phase executed nothing; the cache was warm")
        if cached["p50_ms"] >= cold["p50_ms"]:
            failures.append(
                f"cached p50 {cached['p50_ms']} ms is not faster than cold "
                f"p50 {cold['p50_ms']} ms; the cache is invisible at the "
                "service boundary"
            )

    if args.update:
        bench = load_bench()
        today = datetime.date.today().isoformat()
        record = {
            "recorded_at": today,
            "recorded_on": platform.platform(),
            "python": platform.python_version(),
        }
        bench["load"] = dict(measured, **record)
        bench.setdefault("trajectory", []).append({
            "date": today,
            "python": platform.python_version(),
            "cpu_count": measured["cpu_count"],
            "clients": measured["clients"],
            "cold_p50_ms": cold["p50_ms"],
            "cold_p95_ms": cold["p95_ms"],
            "cached_p50_ms": cached["p50_ms"],
            "cached_p95_ms": cached["p95_ms"],
        })
        with open(BENCH_JSON, "w") as handle:
            json.dump(bench, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"recorded to {BENCH_JSON}")
        from repro.artifacts.emit import emit_bench_artifact

        artifact = emit_bench_artifact(BENCH_JSON)
        print(f"recorded to {artifact}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("all service-load checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
