"""Fig. 11: storage overhead of Chronus, PRAC, Graphene, Hydra and PRFM."""

from repro.experiments import figures

from conftest import print_figure, run_once


def test_fig11_storage_overhead(benchmark):
    rows = run_once(benchmark, figures.fig11_data)
    print_figure(
        "Fig. 11: storage overhead (64 banks x 128K rows)",
        rows,
        columns=("mechanism", "nrh", "dram_bytes", "cpu_bytes", "total_mib"),
    )
    by_key = {(r["mechanism"], r["nrh"]): r for r in rows}
    # Chronus and PRAC store identical per-row counters in DRAM.
    assert by_key[("Chronus", 1024)]["dram_bytes"] == by_key[("PRAC-4", 1024)]["dram_bytes"]
    # Graphene's CAM grows dramatically as N_RH shrinks (paper: 50.3x).
    growth = by_key[("Graphene", 20)]["cpu_bytes"] / by_key[("Graphene", 1024)]["cpu_bytes"]
    assert growth > 30
    # PRFM needs only one counter per bank (88 B at N_RH = 1K).
    assert by_key[("PRFM", 1024)]["cpu_bytes"] == 88
