"""Red-team search: empirical vs analytical security boundary per mechanism.

Runs the :mod:`repro.attacks` red-team engine over a representative set of
mechanisms and prints, for each, the RowHammer thresholds at which a
synthesised attack pattern empirically escapes (ground-truth disturbance
oracle) next to the analytical wave-attack bound.  All probes go through
the shared session sweep engine, so repeated runs replay from the on-disk
result cache.  See docs/ATTACKS.md.
"""

from repro.attacks.redteam import RedTeamEngine

from conftest import print_cache_stats, print_figure, run_once

#: One representative per mechanism class (keeps the cold run laptop-sized).
REDTEAM_MECHANISMS = ("Chronus", "PRAC-4", "PRFM", "Graphene")

REDTEAM_NRH_GRID = (1, 2, 4, 8, 16)

REDTEAM_PATTERNS = ("single_sided", "wave", "rfm_dodge")


def redteam_rows(engine):
    redteam = RedTeamEngine(engine=engine)
    reports = redteam.compare(
        REDTEAM_MECHANISMS, REDTEAM_NRH_GRID, patterns=REDTEAM_PATTERNS
    )
    return [
        {
            "mechanism": report.mechanism,
            "escaping_nrh": ",".join(map(str, report.escaping_nrh_values())) or "-",
            "empirical_min_secure": report.empirical_min_secure_nrh,
            "analytical_min_secure": report.analytical_min_secure,
            "disagreement": report.disagreement or "-",
        }
        for report in reports
    ]


def test_redteam_boundary_vs_analysis(benchmark, sweep_engine):
    rows = run_once(benchmark, redteam_rows, sweep_engine)
    print_figure(
        "Red team: empirical escaping N_RH vs analytical bound",
        rows,
        columns=(
            "mechanism",
            "escaping_nrh",
            "empirical_min_secure",
            "analytical_min_secure",
            "disagreement",
        ),
    )
    print_cache_stats(sweep_engine)
    by_mechanism = {row["mechanism"]: row for row in rows}
    # Every mechanism reports an empirical escaping threshold (N_RH = 1 is
    # the degenerate floor: the first activation already escapes).
    assert all(row["escaping_nrh"].split(",")[0] == "1" for row in rows)
    # Chronus' empirical boundary coincides with the paper's closed form
    # (NBO >= 1 requires N_RH >= Anormal + 2 = 5).
    chronus = by_mechanism["Chronus"]
    assert chronus["empirical_min_secure"] == chronus["analytical_min_secure"] == 5
    # No attack escapes at a threshold the analysis claims secure.
    assert all(row["disagreement"] == "-" for row in rows)
