"""Fig. 13 (Appendix C): storage of Chronus vs ABACuS."""

from repro.experiments import figures

from conftest import print_figure, run_once


def test_fig13_abacus_storage(benchmark):
    rows = run_once(benchmark, figures.fig13_data)
    print_figure(
        "Fig. 13: Chronus (DRAM) vs ABACuS (CPU CAM+SRAM) storage",
        rows,
        columns=("mechanism", "nrh", "dram_bytes", "cpu_bytes", "total_mib"),
    )
    by_key = {(r["mechanism"], r["nrh"]): r for r in rows}
    # ABACuS keeps everything in the CPU and needs far less total storage,
    # but its footprint grows quickly as N_RH shrinks (8 KB -> ~340 KB).
    assert by_key[("ABACuS", 1024)]["dram_bytes"] == 0
    assert by_key[("ABACuS", 1024)]["cpu_bytes"] < 16 * 1024
    assert by_key[("ABACuS", 20)]["cpu_bytes"] > 10 * by_key[("ABACuS", 1024)]["cpu_bytes"]
    # Chronus' DRAM-side counters dwarf ABACuS' SRAM but sit in cheap DRAM.
    assert by_key[("Chronus", 1024)]["dram_bytes"] > by_key[("ABACuS", 1024)]["cpu_bytes"]
