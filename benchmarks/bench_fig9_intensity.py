"""Fig. 9: sensitivity to workload memory intensity at N_RH = 32."""

from repro.experiments import figures

from conftest import BENCH_ACCESSES, print_cache_stats, print_figure, run_once


def test_fig9_memory_intensity(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig9_data,
        nrh=32,
        mechanisms=("Chronus", "PRAC-4", "PRFM"),
        mixes_per_type=1,
        accesses_per_core=BENCH_ACCESSES,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 9: normalized weighted speedup per workload intensity type (N_RH = 32)",
        rows,
        columns=("mix_type", "mechanism", "normalized_ws"),
    )
    print_cache_stats(sweep_engine)
    by_key = {(r["mix_type"], r["mechanism"]): r["normalized_ws"] for r in rows}
    for mix_type in figures.MIX_TYPES:
        # Chronus is the best mechanism for every intensity class.
        assert by_key[(mix_type, "Chronus")] >= by_key[(mix_type, "PRAC-4")] - 1e-9
    # Overheads are larger for memory-intensive mixes than cache-resident ones.
    assert by_key[("HHHH", "PRAC-4")] <= by_key[("LLLL", "PRAC-4")] + 0.02
