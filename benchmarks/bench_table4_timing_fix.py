"""Table 4 (Appendix E): effect of the PRAC timing erratum fix."""

from repro.experiments import figures

from conftest import BENCH_ACCESSES, BENCH_MIXES, print_cache_stats, print_figure, run_once


def test_table4_prac_timing_fix(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.table4_data,
        nrh_values=(1024, 20),
        num_mixes=BENCH_MIXES,
        accesses_per_core=BENCH_ACCESSES,
        engine=sweep_engine,
    )
    print_figure(
        "Table 4: PRAC-4 overhead with the old (buggy) vs fixed timings",
        rows,
        columns=("timings", "nrh", "performance_overhead", "normalized_energy"),
    )
    print_cache_stats(sweep_engine)
    by_key = {(r["timings"], r["nrh"]): r for r in rows}
    # The erratum fix (reduced tRAS/tRTP/tWR) can only help performance.
    assert (
        by_key[("new", 1024)]["performance_overhead"]
        <= by_key[("old", 1024)]["performance_overhead"] + 0.02
    )
