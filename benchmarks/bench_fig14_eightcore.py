"""Fig. 14 (Appendix E): PRAC on eight-core, large-LLC homogeneous workloads."""

from repro.experiments import figures

from conftest import print_cache_stats, print_figure, run_once


def test_fig14_eightcore_performance(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig14_data,
        nrh_values=(1024, 20),
        applications=("523.xalancbmk", "519.lbm"),
        accesses_per_core=800,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 14: PRAC-4 on eight-core homogeneous workloads (large LLC)",
        rows,
        columns=("mechanism", "nrh", "normalized_ws", "performance_overhead"),
    )
    print_cache_stats(sweep_engine)
    by_nrh = {r["nrh"]: r for r in rows}
    # With the large LLC, PRAC's overhead at N_RH = 1K is small (paper: 2.4%),
    # and it grows dramatically at N_RH = 20 (paper: 78.8%).
    assert by_nrh[20]["performance_overhead"] >= by_nrh[1024]["performance_overhead"]
