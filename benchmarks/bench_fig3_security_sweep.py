"""Fig. 3: maximum activations a wave attack achieves under PRFM and PRAC-N."""

from repro.experiments import figures

from conftest import print_figure, run_once


def test_fig3a_prfm_security_sweep(benchmark):
    rows = run_once(benchmark, figures.fig3a_data)
    print_figure(
        "Fig. 3a: max ACTs to a single row under PRFM",
        rows,
        columns=("rfm_threshold", "initial_rows", "max_acts"),
    )
    by_key = {(r["rfm_threshold"], r["initial_rows"]): r["max_acts"] for r in rows}
    # Larger RFM thresholds allow the attacker more activations.
    assert by_key[(256, 2048)] > by_key[(2, 2048)]
    # Only very small thresholds keep the attack below N_RH = 32.
    assert max(by_key[(2, r1)] for r1 in (2048, 65536)) < 32


def test_fig3b_prac_security_sweep(benchmark):
    rows = run_once(benchmark, figures.fig3b_data)
    print_figure(
        "Fig. 3b: worst-case max ACTs to a single row under PRAC-N",
        rows,
        columns=("nbo", "nref", "max_acts"),
    )
    by_key = {(r["nbo"], r["nref"]): r["max_acts"] for r in rows}
    # PRAC-4 at NBO=1 bounds the attacker near 20 activations (paper: 19).
    assert by_key[(1, 4)] < 25
    # Larger back-off thresholds and fewer RFMs per back-off are weaker.
    assert by_key[(256, 4)] > by_key[(1, 4)]
    assert by_key[(1, 1)] >= by_key[(1, 4)]
