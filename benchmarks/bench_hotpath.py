#!/usr/bin/env python3
"""Hot-path wall-clock benchmark for the event-horizon simulation engine.

Times the *reference workload set* -- a fixed two-core mix under all twelve
mechanisms on one and two memory channels -- end to end on the live
simulator (no result cache: this measures the engine, not the cache), and
maintains ``BENCH_hotpath.json``.  Each workload is timed ``BENCH_REPEATS``
times back to back and the minimum is reported: wall-clock noise on a
shared-host runner is strictly additive, so the min estimates the code's
true cost (single passes on this class of machine jitter by +-20%).
The JSON carries:

* ``fingerprints`` -- pinned golden metrics (cycles / IPCs / energy / REF
  and RFM counts) per workload.  Every run re-checks them, so a perf change
  that shifts any simulated number fails loudly here (wall-clock may move,
  results may not).
* ``reference`` -- the committed quick-set wall-clock this machine class is
  compared against; CI fails when the quick set regresses by more than
  ``--tolerance`` (default 30%, env ``REPRO_BENCH_TOLERANCE``).  Since the
  structure-of-arrays timing plane landed, the reference also records
  ``readiness_scan`` -- the exclusive profile time the controller spends in
  its readiness-scan kernel family (demand-scan entry, vector fold, hint
  maintenance) on one profiled workload, so the cost the SoA plane attacks
  stays measured, not assumed.
* ``seed_engine`` -- the recorded wall-clock of the pre-event-horizon seed
  engine on the same workload set (measured once while both engines existed
  in the tree), giving the speedup trajectory its anchor: the event-horizon
  engine must stay >= 2x faster than that recording.
* ``trajectory`` -- one appended record per ``--update`` run, so the bench
  history travels with the repository.

Usage::

    python benchmarks/bench_hotpath.py             # full set + checks
    python benchmarks/bench_hotpath.py --quick     # CI smoke subset
    python benchmarks/bench_hotpath.py --update    # re-record the JSON
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import platform
import pstats
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core.factory import MECHANISM_NAMES
from repro.experiments.sweep import build_job_traces, mechanism_job
from repro.system.config import paper_system_config
from repro.system.simulator import simulate

BENCH_JSON = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_hotpath.json")

APPS = ("429.mcf", "401.bzip2")
ACCESSES = 1500
NRH = 64

#: The CI smoke subset: cheap, but covers a plain, an on-die (PRAC timing
#: path + back-off) and a controller-side (RFM path) mechanism.
QUICK_WORKLOADS: Tuple[Tuple[str, int], ...] = (
    ("None", 1),
    ("PRAC-4", 1),
    ("PRFM", 1),
    ("PRAC-4", 2),
)


#: Timed repetitions per workload; the *minimum* is recorded.  Wall-clock
#: noise on a shared-host runner is strictly additive (frequency jitter,
#: host contention), so the min over a few back-to-back runs estimates the
#: true cost of the code far better than any single pass -- the standard
#: pyperf-style estimator.  Env-overridable for debugging single passes.
BENCH_REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "3")))

#: The workload profiled for the readiness-scan kernel measurement (a PRAC
#: run: it exercises the demand scan, the back-off path and the hint folds).
READINESS_PROFILE_WORKLOAD: Tuple[str, int] = ("PRAC-4", 1)

#: Function names of the controller's readiness-scan kernel family, both
#: backends (matched by bare function name within controller.py).
READINESS_KERNELS = frozenset(
    {
        "_demand_ready_cycle",
        "_demand_ready_cycle_array",
        "_demand_ready_cycle_vector",
        "_bank_demand_ready",
        "_bank_demand_ready_array",
        "_fold_bank_hint",
        "_fold_bank_hint_array",
        "_fold_stream",
    }
)


def measure_readiness_scan() -> Dict[str, object]:
    """Exclusive profile time of the readiness-scan kernels on one workload.

    Returns the summed ``tottime`` of the kernel family, the total profiled
    time and their ratio.  cProfile inflates per-call overhead, so the
    numbers are comparable only against other entries of this field -- the
    point is the trajectory (is the scan share shrinking?), not an absolute
    wall-clock claim.
    """
    mechanism, channels = READINESS_PROFILE_WORKLOAD
    base = paper_system_config().with_overrides(channels=channels)
    job = mechanism_job(base, APPS, mechanism, NRH, ACCESSES)
    traces = build_job_traces(job)
    profiler = cProfile.Profile()
    profiler.enable()
    simulate(job.config, traces, workload_name=job.workload_name)
    profiler.disable()
    stats = pstats.Stats(profiler).stats  # type: ignore[attr-defined]
    kernel_seconds = 0.0
    total_seconds = 0.0
    for (filename, _line, name), (_cc, _nc, tottime, _ct, _callers) in stats.items():
        total_seconds += tottime
        if name in READINESS_KERNELS and filename.endswith("controller.py"):
            kernel_seconds += tottime
    return {
        "workload": workload_key(mechanism, channels),
        "seconds": round(kernel_seconds, 4),
        "profiled_seconds": round(total_seconds, 4),
        "share": round(kernel_seconds / total_seconds, 4) if total_seconds else 0.0,
    }


def reference_workloads(quick: bool) -> List[Tuple[str, int]]:
    if quick:
        return list(QUICK_WORKLOADS)
    return [
        (mechanism, channels)
        for channels in (1, 2)
        for mechanism in MECHANISM_NAMES
    ]


def workload_key(mechanism: str, channels: int) -> str:
    return f"{mechanism}/ch{channels}"


def fingerprint(result) -> Dict[str, object]:
    """The golden metrics a perf change must not move."""
    return {
        "cycles": result.cycles,
        "core_ipcs": result.core_ipcs,
        "energy_nj": result.energy_nj,
        "reads_served": result.controller_stats["reads_served"],
        "refreshes": result.controller_stats["refreshes"],
        "rfms": result.controller_stats["rfms"],
    }


def run_workload(
    mechanism: str, channels: int, strict_tick: bool = False
) -> Tuple[float, Dict[str, object]]:
    """Time one workload ``BENCH_REPEATS`` times; return (min seconds, fp).

    The repeats double as a determinism check: every pass must produce the
    same fingerprint, or the measurement is meaningless.
    """
    base = paper_system_config().with_overrides(channels=channels)
    job = mechanism_job(base, APPS, mechanism, NRH, ACCESSES)
    traces = build_job_traces(job)
    best = float("inf")
    fp: Optional[Dict[str, object]] = None
    for _ in range(BENCH_REPEATS):
        start = time.perf_counter()
        result = simulate(
            job.config, traces, workload_name=job.workload_name,
            strict_tick=strict_tick,
        )
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        current = fingerprint(result)
        if fp is None:
            fp = current
        elif fp != current:
            raise AssertionError(
                f"{workload_key(mechanism, channels)}: fingerprint moved "
                f"between repeats: {fp} != {current}"
            )
    assert fp is not None
    return best, fp


def run_set(quick: bool) -> Tuple[Dict[str, float], Dict[str, Dict[str, object]]]:
    seconds: Dict[str, float] = {}
    fingerprints: Dict[str, Dict[str, object]] = {}
    for mechanism, channels in reference_workloads(quick):
        key = workload_key(mechanism, channels)
        elapsed, fp = run_workload(mechanism, channels)
        seconds[key] = elapsed
        fingerprints[key] = fp
        print(f"  {key:<16} {elapsed:7.3f}s  cycles={fp['cycles']}")
    return seconds, fingerprints


def load_bench() -> Dict[str, object]:
    with open(BENCH_JSON) as handle:
        return json.load(handle)


def check_fingerprints(
    recorded: Dict[str, Dict[str, object]],
    measured: Dict[str, Dict[str, object]],
) -> List[str]:
    errors = []
    for key, fp in measured.items():
        expected = recorded.get(key)
        if expected is None:
            errors.append(f"{key}: no recorded fingerprint (run with --update)")
        elif expected != fp:
            errors.append(f"{key}: golden metrics moved: {expected} != {fp}")
    return errors


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset only (the regression-gated workloads)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-record fingerprints/reference and append to the trajectory",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="measure and print only; skip fingerprint and regression gates",
    )
    parser.add_argument(
        "--strict-compare", action="store_true",
        help="also time the strict-tick reference path on the quick set",
    )
    parser.add_argument(
        "--relative-gate", type=float, default=None, metavar="MIN_SPEEDUP",
        help="machine-independent gate: fail unless the event-horizon path "
             "is at least MIN_SPEEDUP x faster than the strict-tick path on "
             "the quick set, measured in the same run (implies "
             "--strict-compare); use in CI where absolute wall-clock "
             "depends on the runner hardware",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30")),
        help="allowed quick-set wall-clock regression vs the committed "
             "reference (fraction, default 0.30)",
    )
    args = parser.parse_args(argv)

    bench = load_bench()
    label = "quick set" if args.quick else "full reference set"
    print(
        f"Timing {label} ({ACCESSES} accesses/core, N_RH={NRH}, "
        f"{'+'.join(APPS)}, min of {BENCH_REPEATS}):"
    )
    seconds, fingerprints = run_set(args.quick)
    total = sum(seconds.values())
    quick_total = sum(seconds[workload_key(m, c)] for m, c in QUICK_WORKLOADS
                      if workload_key(m, c) in seconds)
    print(f"total: {total:.2f}s  (quick subset: {quick_total:.2f}s)")

    seed = bench.get("seed_engine", {})
    if not args.quick and seed.get("total_seconds"):
        speedup = seed["total_seconds"] / total
        print(
            f"speedup vs recorded seed engine "
            f"({seed['total_seconds']:.2f}s): {speedup:.2f}x"
        )

    strict_speedup = None
    if args.strict_compare or args.relative_gate is not None:
        strict_total = 0.0
        for mechanism, channels in QUICK_WORKLOADS:
            elapsed, _ = run_workload(mechanism, channels, strict_tick=True)
            strict_total += elapsed
        strict_speedup = strict_total / quick_total
        print(
            f"strict-tick quick set: {strict_total:.2f}s "
            f"(event-horizon skipping: {strict_speedup:.2f}x faster)"
        )

    if args.update:
        print("profiling the readiness-scan kernel family...")
        readiness = measure_readiness_scan()
        print(
            f"  readiness scan ({readiness['workload']}): "
            f"{readiness['seconds']:.3f}s of {readiness['profiled_seconds']:.3f}s "
            f"profiled ({readiness['share']:.1%})"
        )
        bench.setdefault("fingerprints", {}).update(fingerprints)
        bench["reference"] = {
            "quick_seconds": quick_total,
            "workloads": {k: seconds[k] for k in seconds},
            "readiness_scan": readiness,
            "repeats": BENCH_REPEATS,
            "recorded_on": platform.platform(),
            "python": platform.python_version(),
            "recorded_at": time.strftime("%Y-%m-%d"),
        }
        bench.setdefault("trajectory", []).append(
            {
                "date": time.strftime("%Y-%m-%d"),
                "quick_seconds": round(quick_total, 3),
                "total_seconds": round(total, 3) if not args.quick else None,
                "repeats": BENCH_REPEATS,
                "python": platform.python_version(),
            }
        )
        with open(BENCH_JSON, "w") as handle:
            json.dump(bench, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"re-recorded {BENCH_JSON}")
        from repro.artifacts.emit import emit_bench_artifact

        artifact = emit_bench_artifact(BENCH_JSON)
        print(f"re-recorded {artifact}")
        return 0

    if args.no_check:
        return 0

    failures = check_fingerprints(bench.get("fingerprints", {}), fingerprints)
    if args.relative_gate is not None:
        verdict = "OK" if strict_speedup >= args.relative_gate else "REGRESSION"
        print(
            f"relative gate: event path {strict_speedup:.2f}x faster than "
            f"strict tick (floor {args.relative_gate:.2f}x): {verdict}"
        )
        if strict_speedup < args.relative_gate:
            failures.append(
                f"event-horizon skipping degraded: only {strict_speedup:.2f}x "
                f"faster than strict tick (floor {args.relative_gate:.2f}x)"
            )
    reference = bench.get("reference", {})
    committed = reference.get("quick_seconds")
    if committed:
        limit = committed * (1.0 + args.tolerance)
        verdict = "OK" if quick_total <= limit else "REGRESSION"
        print(
            f"quick-set gate: {quick_total:.2f}s vs committed "
            f"{committed:.2f}s (limit {limit:.2f}s): {verdict}"
        )
        if quick_total > limit:
            failures.append(
                f"quick set regressed: {quick_total:.2f}s > {limit:.2f}s "
                f"({args.tolerance:.0%} over the committed {committed:.2f}s)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
