"""Fig. 8: multi-core performance of all evaluated mechanisms."""

from repro.experiments import figures

from conftest import (
    BENCH_ACCESSES,
    BENCH_MIXES,
    BENCH_NRH_VALUES,
    print_cache_stats,
    print_figure,
    run_once,
)


def test_fig8_multicore_performance(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig8_data,
        nrh_values=BENCH_NRH_VALUES,
        mechanisms=("Chronus", "Chronus-PB", "PRAC-4", "Graphene", "Hydra", "PRFM", "PARA"),
        num_mixes=BENCH_MIXES,
        accesses_per_core=BENCH_ACCESSES,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 8: normalized weighted speedup, four-core mixes",
        rows,
        columns=("mechanism", "nrh", "normalized_ws", "performance_overhead",
                 "backoffs_per_mcycle", "is_secure"),
    )
    print_cache_stats(sweep_engine)
    by_key = {(r["mechanism"], r["nrh"]): r for r in rows}
    for nrh in BENCH_NRH_VALUES:
        # Chronus outperforms PRAC-4 at every evaluated threshold.
        assert by_key[("Chronus", nrh)]["normalized_ws"] >= by_key[("PRAC-4", nrh)]["normalized_ws"]
    # Chronus stays near-zero overhead at the modern threshold.
    assert by_key[("Chronus", 1024)]["performance_overhead"] < 0.05
