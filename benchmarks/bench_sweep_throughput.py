#!/usr/bin/env python3
"""Sweep-throughput benchmark: single-run speed and worker-pool scaling.

Two quantities, maintained in ``BENCH_sweep_throughput.json``:

* **single-run speed** -- the bench_hotpath *reference workload set* (all
  twelve mechanisms on one and two channels) timed end to end on the live
  simulator and compared against the committed PR 4 engine anchor (the
  ``reference.workloads`` wall-clock recorded in ``BENCH_hotpath.json``
  when the event-horizon engine landed).  This is the data-plane speedup
  trajectory: PR 5's array-backed counter stores, allocation-free request
  path and wake gating must keep it >= 1.4x over that anchor.
* **cold-sweep scaling** -- one declarative sweep executed twice from a
  cold cache: serially, then across the persistent work-stealing pool.
  Wall-clock for both, plus the warm re-run (which must be 100 % cached).

Machine-independent gating (CI): absolute wall-clock depends on the runner,
so the CI gate is the *same-run* relative speedup ``--min-parallel-speedup``
(like bench_hotpath's ``--relative-gate``), with the honest caveat that
parallel speedup is bounded by the physical core count -- the recorded
``cpu_count`` travels with every measurement.  On single-CPU machines,
where no pool speedup is physically possible, the gate measures the
in-process **batch engine** (``SweepEngine(batch=True)``) instead of
skipping: batching is the lever that still works with one core, and its
speedup is recorded and held to ``MIN_BATCH_SPEEDUP_1CPU``.

Usage::

    python benchmarks/bench_sweep_throughput.py            # full set + checks
    python benchmarks/bench_sweep_throughput.py --quick    # CI smoke subset
    python benchmarks/bench_sweep_throughput.py --update   # re-record the JSON
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import bench_hotpath  # noqa: E402  (sibling module: the single-run reference set)

from repro.experiments.cache import ResultCache  # noqa: E402
from repro.experiments.sweep import SweepEngine, SweepSpec  # noqa: E402

BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_sweep_throughput.json"
)

#: Worker count of the recorded scaling measurement.
DEFAULT_WORKERS = 8

#: Floor for the batch-mode speedup that replaces the parallel gate on
#: single-CPU machines.  Deliberately a backstop (batch must beat serial
#: with margin), not the calibrated batch gate -- that lives in
#: bench_batch_throughput.py, measured on the full quick figure sweep.
MIN_BATCH_SPEEDUP_1CPU = 1.05


def sweep_spec(quick: bool) -> SweepSpec:
    """The cold-sweep job set (a realistic mechanism-comparison sweep)."""
    if quick:
        return SweepSpec(
            mechanisms=("Chronus", "PRAC-4"),
            nrh_values=(1024,),
            mixes=(("429.mcf", "401.bzip2"), ("429.mcf", "462.libquantum")),
            accesses_per_core=400,
        )
    return SweepSpec(
        mechanisms=("Chronus", "PRAC-4", "Graphene", "PRFM"),
        nrh_values=(1024, 128),
        mixes=(
            ("429.mcf", "401.bzip2"),
            ("429.mcf", "462.libquantum"),
            ("401.bzip2", "462.libquantum"),
        ),
        accesses_per_core=800,
    )


def run_cold_sweep(
    spec: SweepSpec, workers: int, batch: bool = False
) -> Dict[str, object]:
    """Execute ``spec`` from a cold on-disk cache; return timing + report."""
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        engine = SweepEngine(cache=ResultCache(os.path.join(tmp, "cache")),
                             workers=workers, batch=batch)
        try:
            start = time.perf_counter()
            results = engine.run(spec)
            elapsed = time.perf_counter() - start
            cold_report = engine.last_run_report
            # Warm re-run: everything must come from the cache.
            engine.run(spec)
            warm_executed = engine.last_run_report.executed_jobs
        finally:
            engine.close()
    return {
        "jobs": len(results),
        "seconds": elapsed,
        "warm_executed": warm_executed,
        "shards": len(cold_report.shards),
    }


def measure_single_run(repeats: int = 3) -> Dict[str, object]:
    """Time the bench_hotpath reference set (the PR 4 anchor's workload).

    Per-workload minimum over ``repeats`` passes: the shared machines these
    numbers are recorded on jitter by tens of percent, and the minimum is
    the standard noise-floor estimate for a deterministic workload.
    """
    best: Dict[str, float] = {}
    for _ in range(repeats):
        seconds, _ = bench_hotpath.run_set(quick=False)
        for key, value in seconds.items():
            if key not in best or value < best[key]:
                best[key] = value
    return {
        "total_seconds": sum(best.values()),
        "workloads": best,
        "repeats": repeats,
    }


def pr4_anchor() -> Dict[str, object]:
    """The committed PR 4 engine wall-clock from BENCH_hotpath.json."""
    with open(bench_hotpath.BENCH_JSON) as handle:
        hotpath = json.load(handle)
    reference = hotpath.get("reference", {})
    workloads = reference.get("workloads", {})
    return {
        "source": "BENCH_hotpath.json reference (recorded at PR 4)",
        "total_seconds": sum(workloads.values()),
        "recorded_on": reference.get("recorded_on"),
        "recorded_at": reference.get("recorded_at"),
    }


def load_bench() -> Dict[str, object]:
    if not os.path.exists(BENCH_JSON):
        return {
            "description": (
                "Sweep-throughput trajectory: single-run speed vs the PR 4 "
                "engine anchor plus cold-sweep worker-pool scaling "
                "(see benchmarks/bench_sweep_throughput.py)"
            )
        }
    with open(BENCH_JSON) as handle:
        return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset: small cold sweep only (skips the single-run "
             "reference set)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-record BENCH_sweep_throughput.json and append to the trajectory",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="measure and print only; skip every gate",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS, metavar="N",
        help=f"worker count of the parallel measurement (default {DEFAULT_WORKERS})",
    )
    parser.add_argument(
        "--min-parallel-speedup", type=float, default=None, metavar="X",
        help="machine-independent gate: fail unless the parallel cold sweep "
             "is at least X times faster than the serial one measured in the "
             "same run (skipped with a note on single-CPU machines)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="single-run passes; the per-workload minimum is recorded "
             "(default 3)",
    )
    parser.add_argument(
        "--min-single-run-speedup", type=float, default=None, metavar="X",
        help="gate: fail unless the single-run reference set is at least X "
             "times faster than the committed PR 4 anchor (same-machine "
             "trajectories only; not meaningful in CI)",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    failures: List[str] = []
    bench = load_bench()

    single_run = None
    if not args.quick:
        anchor = pr4_anchor()
        print(
            f"single run: timing the bench_hotpath reference set "
            f"(PR 4 anchor: {anchor['total_seconds']:.2f}s)..."
        )
        single_run = measure_single_run(repeats=max(1, args.repeats))
        speedup = anchor["total_seconds"] / single_run["total_seconds"]
        single_run["speedup_vs_pr4_anchor"] = speedup
        print(
            f"single run: {single_run['total_seconds']:.2f}s "
            f"({speedup:.2f}x vs the PR 4 anchor)"
        )
        if args.min_single_run_speedup is not None and not args.no_check:
            if speedup < args.min_single_run_speedup:
                failures.append(
                    f"single-run speedup {speedup:.2f}x below the "
                    f"{args.min_single_run_speedup:.2f}x floor"
                )

    spec = sweep_spec(args.quick)
    label = "quick" if args.quick else "full"
    print(f"cold sweep ({label}): {len(spec.expand())} jobs, serial...")
    serial = run_cold_sweep(spec, workers=0)
    print(f"  serial:   {serial['seconds']:6.2f}s ({serial['jobs']} jobs)")
    print(f"cold sweep ({label}): {args.workers} workers...")
    parallel = run_cold_sweep(spec, workers=args.workers)
    parallel_speedup = serial["seconds"] / parallel["seconds"]
    print(
        f"  parallel: {parallel['seconds']:6.2f}s "
        f"({parallel_speedup:.2f}x, cpu_count={cpu_count})"
    )

    batch = None
    batch_speedup = None
    if cpu_count < 2:
        # Process parallelism can't help here, so measure the in-process
        # batch engine instead -- the lever that actually works on one CPU.
        # Min-of-two passes for both sides of the ratio: the gated quick
        # sweeps run in well under a second, where scheduler jitter alone
        # can swamp a single measurement.
        print(f"cold sweep ({label}): batch mode (single-CPU machine)...")
        batch = run_cold_sweep(spec, workers=0, batch=True)
        second = run_cold_sweep(spec, workers=0, batch=True)
        if second["seconds"] < batch["seconds"]:
            batch = second
        serial_best = min(
            serial["seconds"], run_cold_sweep(spec, workers=0)["seconds"]
        )
        batch_speedup = serial_best / batch["seconds"]
        print(f"  batch:    {batch['seconds']:6.2f}s ({batch_speedup:.2f}x)")

    if not args.no_check:
        if serial["warm_executed"] or parallel["warm_executed"]:
            failures.append(
                "warm re-run executed jobs: the cache did not serve the sweep"
            )
        if batch is not None and batch["warm_executed"]:
            failures.append(
                "warm batch re-run executed jobs: the cache did not serve "
                "the sweep"
            )
        if args.min_parallel_speedup is not None:
            if cpu_count < 2:
                # The pool gate is physically meaningless on one CPU, but
                # the batch engine has no such excuse: it must at least
                # beat serial.  The calibrated batch floor lives in
                # bench_batch_throughput.py (--min-batch-speedup); this is
                # the direction-of-travel backstop that replaces the old
                # unconditional skip.
                if batch_speedup < MIN_BATCH_SPEEDUP_1CPU:
                    failures.append(
                        f"single-CPU batch cold sweep only "
                        f"{batch_speedup:.2f}x faster than serial (floor "
                        f"{MIN_BATCH_SPEEDUP_1CPU:.2f}x; measured serial "
                        f"{serial_best:.2f}s vs batch {batch['seconds']:.2f}s "
                        f"over {serial['jobs']} jobs)"
                    )
                else:
                    print(
                        f"parallel gate: replaced by batch mode on this "
                        f"single-CPU machine -- {batch_speedup:.2f}x >= "
                        f"{MIN_BATCH_SPEEDUP_1CPU:.2f}x: OK"
                    )
            elif parallel_speedup < args.min_parallel_speedup:
                failures.append(
                    f"parallel cold sweep only {parallel_speedup:.2f}x faster "
                    f"than serial (floor {args.min_parallel_speedup:.2f}x)"
                )
            else:
                print(
                    f"parallel gate: {parallel_speedup:.2f}x >= "
                    f"{args.min_parallel_speedup:.2f}x: OK"
                )

    if args.update:
        bench["pr4_anchor"] = pr4_anchor()
        if single_run is not None:
            bench["single_run"] = {
                "total_seconds": round(single_run["total_seconds"], 3),
                "speedup_vs_pr4_anchor": round(
                    single_run["speedup_vs_pr4_anchor"], 3
                ),
                "recorded_on": platform.platform(),
                "python": platform.python_version(),
                "recorded_at": time.strftime("%Y-%m-%d"),
            }
        bench["cold_sweep"] = {
            "spec": "full" if not args.quick else "quick",
            "jobs": serial["jobs"],
            "serial_seconds": round(serial["seconds"], 3),
            "parallel_seconds": round(parallel["seconds"], 3),
            "workers": args.workers,
            "cpu_count": cpu_count,
            "speedup": round(parallel_speedup, 3),
            "batch_seconds": (
                round(batch["seconds"], 3) if batch is not None else None
            ),
            "batch_speedup": (
                round(batch_speedup, 3) if batch_speedup is not None else None
            ),
            "note": (
                "parallel speedup is bounded by cpu_count; on a 1-CPU "
                "machine the honest measurement is ~1.0x regardless of the "
                "worker count, and the in-process batch engine "
                "(batch_speedup) is the measurement that matters"
            ),
        }
        bench.setdefault("trajectory", []).append(
            {
                "date": time.strftime("%Y-%m-%d"),
                "single_run_seconds": (
                    round(single_run["total_seconds"], 3) if single_run else None
                ),
                "speedup_vs_pr4_anchor": (
                    round(single_run["speedup_vs_pr4_anchor"], 3)
                    if single_run else None
                ),
                "cold_sweep_speedup": round(parallel_speedup, 3),
                "batch_speedup": (
                    round(batch_speedup, 3) if batch_speedup is not None else None
                ),
                "cpu_count": cpu_count,
                "python": platform.python_version(),
            }
        )
        with open(BENCH_JSON, "w") as handle:
            json.dump(bench, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"re-recorded {BENCH_JSON}")
        from repro.artifacts.emit import emit_bench_artifact

        artifact = emit_bench_artifact(BENCH_JSON)
        print(f"re-recorded {artifact}")
        return 0

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
