"""Fig. 10: DRAM energy of all evaluated mechanisms."""

from repro.experiments import figures

from conftest import (
    BENCH_ACCESSES,
    BENCH_MIXES,
    BENCH_NRH_VALUES,
    print_cache_stats,
    print_figure,
    run_once,
)


def test_fig10_dram_energy(benchmark, sweep_engine):
    rows = run_once(
        benchmark,
        figures.fig10_data,
        nrh_values=BENCH_NRH_VALUES,
        mechanisms=("Chronus", "PRAC-4", "Graphene", "PRFM", "PARA"),
        num_mixes=BENCH_MIXES,
        accesses_per_core=BENCH_ACCESSES,
        engine=sweep_engine,
    )
    print_figure(
        "Fig. 10: DRAM energy normalized to no mitigation, four-core mixes",
        rows,
        columns=("mechanism", "nrh", "normalized_energy"),
    )
    print_cache_stats(sweep_engine)
    by_key = {(r["mechanism"], r["nrh"]): r["normalized_energy"] for r in rows}
    # Chronus costs some extra energy (counter-subarray update) but less than
    # PRAC, whose longer timings and frequent preventive refreshes dominate.
    assert 1.0 < by_key[("Chronus", 1024)] < by_key[("PRAC-4", 1024)] + 0.05
    assert by_key[("Chronus", 20)] < by_key[("PRAC-4", 20)]
    # Energy overheads grow as N_RH shrinks for the industry mechanisms.
    assert by_key[("PRFM", 20)] >= by_key[("PRFM", 1024)]
