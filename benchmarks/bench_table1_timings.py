"""Table 1: DRAM timing parameter changes with PRAC."""

from repro.experiments import figures

from conftest import print_figure, run_once


def test_table1_timing_parameters(benchmark):
    rows = run_once(benchmark, figures.table1_data)
    print_figure("Table 1: DRAM timing parameters (ns), DDR5-3200AN", rows)
    by_param = {row["parameter"]: row for row in rows}
    assert by_param["tRP"]["prac_ns"] > by_param["tRP"]["no_prac_ns"]
    assert by_param["tRC"]["prac_ns"] > by_param["tRC"]["no_prac_ns"]
    assert by_param["tRAS"]["prac_ns"] < by_param["tRAS"]["no_prac_ns"]
