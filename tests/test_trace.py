"""Tests for the trace container and its text serialisation."""

import pytest

from repro.cpu.trace import Trace, TraceEntry


def simple_trace():
    return Trace(
        "demo",
        [
            TraceEntry(gap_instructions=10, address=0x1000, is_write=False),
            TraceEntry(gap_instructions=0, address=0x2040, is_write=True),
            TraceEntry(gap_instructions=5, address=0x1000, is_write=False),
        ],
    )


class TestTrace:
    def test_len_and_iteration(self):
        trace = simple_trace()
        assert len(trace) == 3
        assert [entry.address for entry in trace] == [0x1000, 0x2040, 0x1000]
        assert trace[1].is_write

    def test_total_instructions(self):
        assert simple_trace().total_instructions == 10 + 1 + 0 + 1 + 5 + 1

    def test_memory_accesses_and_write_fraction(self):
        trace = simple_trace()
        assert trace.memory_accesses == 3
        assert trace.write_fraction == pytest.approx(1 / 3)

    def test_apki(self):
        trace = simple_trace()
        assert trace.accesses_per_kilo_instruction() == pytest.approx(
            1000 * 3 / trace.total_instructions
        )

    def test_truncated(self):
        trace = simple_trace().truncated(2)
        assert len(trace) == 2
        with pytest.raises(ValueError):
            simple_trace().truncated(0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace("empty", [])

    def test_save_and_load_roundtrip(self, tmp_path):
        trace = simple_trace()
        path = tmp_path / "demo.trace"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "demo"
        assert len(loaded) == len(trace)
        for original, reloaded in zip(trace, loaded):
            assert original == reloaded

    def test_load_with_custom_name_and_comments(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# comment\n5 0x40 R\n\n0 0x80 W\n")
        trace = Trace.load(path, name="renamed")
        assert trace.name == "renamed"
        assert len(trace) == 2
        assert trace[1].is_write
