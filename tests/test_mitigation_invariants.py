"""Cross-mitigation invariants, parametrized over every factory mechanism.

Three families of properties must hold for *every* mechanism
:func:`repro.core.factory.build_mechanism` can produce:

1. **Threshold**: hammering a single row must raise the mechanism's
   mitigation signal (back-off for on-die mechanisms, a pending preventive
   refresh or RFM request for controller mechanisms) after no more
   activations than its configured trigger point implies -- and that trigger
   point must not exceed the RowHammer threshold the mechanism was built for.
2. **Counters**: no internal activation counter may ever go negative, no
   matter how activations, preventive actions and resets interleave.
3. **Reset semantics**: the refresh-window reset (``on_refresh_window``)
   must clear the activation-tracking state of window-based mechanisms, and
   a full ``reset()`` must return any mechanism to a state that reproduces
   the exact same behaviour when the workload is replayed.
"""

from __future__ import annotations

import pytest

from repro.core.abacus import ABACuS
from repro.core.chronus import Chronus
from repro.core.factory import MECHANISM_NAMES, build_mechanism
from repro.core.graphene import Graphene
from repro.core.hydra import Hydra
from repro.core.mitigation import (
    ControllerMitigation,
    MitigationMechanism,
    OnDieMitigation,
)
from repro.core.para import PARA
from repro.core.prac import PRAC
from repro.core.prfm import PRFM

NUM_BANKS = 8
NRH_VALUES = (512, 64)

#: Mechanisms with at least one installed component (everything but "None").
ACTIVE_MECHANISMS = tuple(name for name in MECHANISM_NAMES if name != "None")

#: Mechanisms whose activation tracking is defined to clear at the refresh
#: window boundary (PRFM's per-bank counters and PARA's RNG are not
#: window-based state).
WINDOW_RESET_MECHANISMS = tuple(
    name for name in ACTIVE_MECHANISMS if name not in ("PRFM", "PARA")
)

CYCLES_PER_ACT = 50


def build(name: str, nrh: int):
    return build_mechanism(name, nrh=nrh, num_banks=NUM_BANKS, seed=0)


def trigger_bound(mechanism: MitigationMechanism, nrh: int) -> int:
    """Activations after which this component must have raised its signal."""
    if isinstance(mechanism, (PRAC, Chronus)):
        return mechanism.nbo
    if isinstance(mechanism, PRFM):
        return mechanism.rfm_threshold
    if isinstance(mechanism, Graphene):
        return mechanism.trigger_threshold
    if isinstance(mechanism, Hydra):
        return mechanism.row_threshold
    if isinstance(mechanism, ABACuS):
        return mechanism.trigger_threshold + 1
    if isinstance(mechanism, PARA):
        # Probabilistic: with the provisioned p, the chance of surviving
        # N_RH activations is the target failure probability (1e-15).
        return nrh
    raise AssertionError(f"no trigger bound defined for {type(mechanism).__name__}")


def signal_raised(mechanism: MitigationMechanism, bank: int) -> bool:
    """True once the mechanism requests any preventive action."""
    if isinstance(mechanism, OnDieMitigation):
        return mechanism.backoff_asserted()
    assert isinstance(mechanism, ControllerMitigation)
    return mechanism.pending_refresh(bank) is not None or mechanism.rfm_needed(bank)


def hammer(setup, bank: int, row: int, count: int, service: bool = False, start_cycle: int = 0) -> int:
    """Drive ``count`` activate/precharge pairs of one row into every component.

    With ``service=True`` the preventive actions are drained the way the
    memory controller would (RFMs for on-die mechanisms, queue pops and RFM
    acknowledgements for controller mechanisms).
    """
    cycle = start_cycle
    for _ in range(count):
        for mechanism in setup.mechanisms():
            mechanism.on_activate(bank, row, cycle)
            mechanism.on_precharge(bank, row, cycle)
        if service:
            service_all(setup, bank, cycle)
        cycle += CYCLES_PER_ACT
    return cycle


def service_all(setup, bank: int, cycle: int) -> None:
    for mechanism in setup.mechanisms():
        if isinstance(mechanism, OnDieMitigation):
            for _ in range(100):
                if not mechanism.wants_more_rfm():
                    break
                mechanism.on_rfm([bank], cycle)
            else:  # pragma: no cover - would indicate a livelock bug
                raise AssertionError(f"{mechanism.name} never released the back-off")
        else:
            assert isinstance(mechanism, ControllerMitigation)
            while mechanism.pop_refresh(bank) is not None:
                pass
            if mechanism.rfm_needed(bank):
                mechanism.acknowledge_rfm(bank, cycle)


def iter_counter_values(mechanism: MitigationMechanism):
    """Every internal activation-count value the mechanism currently holds."""
    yield from mechanism.stats.as_dict().values()
    if isinstance(mechanism, (PRAC, Chronus)):
        for bank in range(NUM_BANKS):
            for _, count in mechanism.counters.iter_bank(bank):
                yield count
            for entry in mechanism.att[bank].valid_entries():
                yield entry.count
    if isinstance(mechanism, PRFM):
        for bank in range(NUM_BANKS):
            yield mechanism.bank_counter(bank)
    if isinstance(mechanism, Graphene):
        for table in mechanism.tables:
            yield table.spillover
            for entry in table.entries.values():
                yield entry.count
    if isinstance(mechanism, Hydra):
        yield from mechanism.iter_count_values()
    if isinstance(mechanism, ABACuS):
        yield mechanism.spillover
        for entry in mechanism.sibling_entries().values():
            yield entry.count


@pytest.mark.parametrize("nrh", NRH_VALUES)
@pytest.mark.parametrize("name", ACTIVE_MECHANISMS)
class TestThresholdInvariant:
    def test_signal_raised_within_component_trigger_bound(self, name, nrh):
        setup = build(name, nrh)
        components = list(setup.mechanisms())
        assert components, f"{name} installed no mechanism"
        bound = max(trigger_bound(m, nrh) for m in components)
        hammer(setup, bank=0, row=7, count=bound)
        for mechanism in components:
            if trigger_bound(mechanism, nrh) <= bound:
                assert signal_raised(mechanism, bank=0), (
                    f"{mechanism.name} stayed silent after "
                    f"{trigger_bound(mechanism, nrh)} activations of one row"
                )

    def test_trigger_point_never_exceeds_nrh(self, name, nrh):
        """A mechanism may not let a row reach N_RH activations unmitigated."""
        setup = build(name, nrh)
        bound = min(trigger_bound(m, nrh) for m in setup.mechanisms())
        assert bound <= nrh

    def test_hammering_produces_mitigation_actions(self, name, nrh):
        setup = build(name, nrh)
        hammer(setup, bank=0, row=7, count=nrh, service=True)
        actions = sum(
            m.stats.preventive_refresh_rows + m.stats.rfm_commands + m.stats.backoffs
            for m in setup.mechanisms()
        )
        assert actions > 0, f"{name} never mitigated a row hammered {nrh} times"


@pytest.mark.parametrize("nrh", NRH_VALUES)
@pytest.mark.parametrize("name", ACTIVE_MECHANISMS)
class TestCounterInvariant:
    def test_counters_never_negative(self, name, nrh):
        setup = build(name, nrh)
        cycle = 0
        # Interleave hammering, servicing, window resets and more hammering
        # across two banks to exercise every decrement / reset path.
        for row in (3, 4, 5):
            cycle = hammer(setup, 0, row, nrh // 2 + 3, service=True, start_cycle=cycle)
            cycle = hammer(setup, 1, row, 5, service=True, start_cycle=cycle)
        for mechanism in setup.mechanisms():
            mechanism.on_periodic_refresh([0, 1], cycle)
            mechanism.on_refresh_window(cycle)
        cycle = hammer(setup, 0, 3, 7, service=True, start_cycle=cycle)
        for mechanism in setup.mechanisms():
            for value in iter_counter_values(mechanism):
                assert value >= 0, f"{mechanism.name} holds a negative counter"


def rearm_bound(mechanism: MitigationMechanism, nrh: int) -> int:
    """Activations needed to re-trigger after tracking state was cleared.

    PRAC-family mechanisms additionally enforce the delay period: after a
    served back-off, ``NDelay`` activations must pass before the signal may
    be re-asserted (the L3 weakness of the paper's Fig. 6).
    """
    if isinstance(mechanism, PRAC):
        return max(mechanism.nbo, mechanism.ndelay)
    return trigger_bound(mechanism, nrh)


@pytest.mark.parametrize("name", WINDOW_RESET_MECHANISMS)
class TestRefreshWindowReset:
    NRH = 64

    def _hammer_reset_and_settle(self, setup, nrh: int) -> int:
        """Trigger every component, finish the back-off protocol, reset."""
        components = list(setup.mechanisms())
        bound = max(trigger_bound(m, nrh) for m in components)
        cycle = hammer(setup, bank=0, row=7, count=bound)
        # An asserted back-off is protocol state, not tracking state: it must
        # be served by RFMs (it survives the window boundary by design), and
        # queued-but-unserved refreshes are still owed by the controller.
        service_all(setup, 0, cycle)
        for mechanism in components:
            mechanism.on_refresh_window(cycle)
        service_all(setup, 0, cycle)
        return cycle

    def test_window_reset_clears_tracking_state(self, name):
        setup = build(name, self.NRH)
        self._hammer_reset_and_settle(setup, self.NRH)
        for mechanism in setup.mechanisms():
            assert not signal_raised(mechanism, bank=0)
            assert_tracking_cleared(mechanism)

    def test_row_must_be_rehammered_from_scratch_after_reset(self, name):
        if name == "Hydra":
            # Hydra re-fetches RCT entries through the RCC after the reset,
            # which legitimately queues maintenance accesses before the row
            # threshold, so the generic "no early signal" check does not
            # apply -- but the re-arm sequence is still fully deterministic
            # and worth pinning.
            self._assert_hydra_rcc_rearm(build(name, self.NRH))
            return
        setup = build(name, self.NRH)
        cycle = self._hammer_reset_and_settle(setup, self.NRH)
        # The PRFM component of PRAC+PRFM counts per-bank activations across
        # window boundaries by design, so only window-reset components take
        # part in the re-arm check.
        window = [m for m in setup.mechanisms() if not isinstance(m, PRFM)]
        bound = min(rearm_bound(m, self.NRH) for m in window)
        hammer(setup, bank=0, row=7, count=bound - 1, start_cycle=cycle)
        assert not any(signal_raised(m, bank=0) for m in window), (
            f"{name} re-triggered before re-accumulating its threshold"
        )
        hammer(setup, bank=0, row=7, count=1, start_cycle=cycle)
        assert any(signal_raised(m, bank=0) for m in window)

    def _assert_hydra_rcc_rearm(self, setup) -> None:
        """Pin Hydra's documented post-reset re-arm sequence.

        The window reset clears the GCT, the RCT and the RCC.  Re-hammering
        one row must then proceed in three deterministic phases:

        1. The group counter re-accumulates from zero; until it reaches the
           group threshold, no work of any kind is queued.
        2. The first per-row tracking access misses the *cleared* RCC and is
           served as exactly one one-row RCT maintenance access (DRAM
           traffic, counted in ``rct_dram_accesses`` -- not a mitigation).
        3. The per-row count restarts at the group threshold, so the
           victim-size preventive refresh fires only once it reaches the
           row threshold -- never earlier.
        """
        (hydra,) = setup.mechanisms()
        assert isinstance(hydra, Hydra)
        cycle = self._hammer_reset_and_settle(setup, self.NRH)
        accesses_before = hydra.rct_dram_accesses

        # Phase 1: silent group re-promotion.
        cycle = hammer(
            setup, bank=0, row=7, count=hydra.group_threshold, start_cycle=cycle
        )
        assert not signal_raised(hydra, bank=0), (
            "Hydra queued work while its group counter was re-accumulating"
        )
        assert hydra.rct_dram_accesses == accesses_before

        # Phase 2: first per-row access misses the cleared RCC.
        cycle = hammer(setup, bank=0, row=7, count=1, start_cycle=cycle)
        assert hydra.rct_dram_accesses == accesses_before + 1
        maintenance = hydra.pop_refresh(0)
        assert maintenance is not None and maintenance.num_rows == 1, (
            "the RCC miss must queue a one-row RCT maintenance access"
        )
        assert hydra.pop_refresh(0) is None

        # Phase 3: no victim refresh until the row threshold is reached.
        remaining = hydra.row_threshold - hydra.group_threshold
        for _ in range(remaining - 2):
            cycle = hammer(setup, bank=0, row=7, count=1, start_cycle=cycle)
            early = hydra.pop_refresh(0)
            assert early is None, (
                "Hydra issued a refresh before the re-initialised per-row "
                "count reached the row threshold"
            )
        cycle = hammer(setup, bank=0, row=7, count=1, start_cycle=cycle)
        victim = hydra.pop_refresh(0)
        assert victim is not None
        assert victim.num_rows == hydra.victim_rows_per_aggressor
        # The row stayed resident in the RCC throughout phase 3: the single
        # maintenance access of phase 2 is the only extra DRAM traffic.
        assert hydra.rct_dram_accesses == accesses_before + 1


def assert_tracking_cleared(mechanism: MitigationMechanism) -> None:
    if isinstance(mechanism, (PRAC, Chronus)):
        assert mechanism.counters.get(0, 7) == 0
        assert mechanism.att[0].max_entry() is None
    if isinstance(mechanism, Chronus):
        assert mechanism.pending_hot_rows() == 0
    if isinstance(mechanism, Graphene):
        assert all(table.max_count() == 0 for table in mechanism.tables)
    if isinstance(mechanism, ABACuS):
        assert not mechanism.sibling_entries() and mechanism.spillover == 0
    if isinstance(mechanism, Hydra):
        assert not any(mechanism.iter_count_values())


@pytest.mark.parametrize("name", ACTIVE_MECHANISMS)
def test_full_reset_restores_identical_behaviour(name):
    """reset() must make a replayed workload behave byte-for-byte the same."""
    setup = build(name, 64)

    def drive() -> list:
        cycle = 0
        for bank, row, count in ((0, 3, 40), (1, 9, 25), (0, 3, 12)):
            cycle = hammer(setup, bank, row, count, service=True, start_cycle=cycle)
        return [m.stats.as_dict() for m in setup.mechanisms()]

    first = drive()
    assert any(any(stats.values()) for stats in first)
    for mechanism in setup.mechanisms():
        mechanism.reset()
    for mechanism in setup.mechanisms():
        assert not any(mechanism.stats.as_dict().values())
        assert not signal_raised(mechanism, bank=0)
    second = drive()
    assert first == second


@pytest.mark.parametrize("name", MECHANISM_NAMES)
def test_factory_setup_is_well_formed(name):
    setup = build(name, 1024)
    assert setup.name == name
    assert setup.act_energy_multiplier >= 1.0
    for mechanism in setup.mechanisms():
        assert mechanism.nrh > 0
        assert mechanism.victim_rows_per_aggressor == 2 * mechanism.blast_radius
