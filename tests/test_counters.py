"""Tests for per-row counters, the counter subarray and the ATT."""

import pytest
from hypothesis import given, strategies as st

from repro.core.counters import AggressorTrackingTable, CounterSubarray, PerRowCounters


class TestPerRowCounters:
    def test_increment_and_get(self):
        counters = PerRowCounters(4)
        assert counters.get(0, 10) == 0
        assert counters.increment(0, 10) == 1
        assert counters.increment(0, 10) == 2
        assert counters.get(0, 10) == 2

    def test_banks_are_independent(self):
        counters = PerRowCounters(4)
        counters.increment(0, 10)
        assert counters.get(1, 10) == 0

    def test_reset_row(self):
        counters = PerRowCounters(2)
        counters.increment(0, 5)
        counters.reset_row(0, 5)
        assert counters.get(0, 5) == 0

    def test_reset_bank_and_all(self):
        counters = PerRowCounters(2)
        counters.increment(0, 1)
        counters.increment(1, 2)
        counters.reset_bank(0)
        assert counters.get(0, 1) == 0
        assert counters.get(1, 2) == 1
        counters.reset_all()
        assert counters.get(1, 2) == 0

    def test_rows_at_or_above(self):
        counters = PerRowCounters(1)
        for _ in range(3):
            counters.increment(0, 7)
        counters.increment(0, 8)
        assert counters.rows_at_or_above(0, 2) == [7]
        assert set(counters.rows_at_or_above(0, 1)) == {7, 8}

    def test_max_row(self):
        counters = PerRowCounters(1)
        assert counters.max_row(0) is None
        counters.increment(0, 3)
        counters.increment(0, 4)
        counters.increment(0, 4)
        assert counters.max_row(0) == (4, 2)

    def test_nonzero_rows(self):
        counters = PerRowCounters(1)
        counters.increment(0, 1)
        counters.increment(0, 2)
        assert counters.nonzero_rows(0) == 2

    def test_invalid_bank_count(self):
        with pytest.raises(ValueError):
            PerRowCounters(0)


class TestCounterSubarray:
    def test_paper_reference_geometry(self):
        subarray = CounterSubarray()
        # 128K rows x 8 bits = 128 KB, which fits in 64 rows of 16 Kbit.
        assert subarray.counter_rows_needed == 64
        assert subarray.capacity_overhead == pytest.approx(0.0005, rel=0.05)

    def test_locate_maps_rows_to_distinct_slots(self):
        subarray = CounterSubarray()
        seen = set()
        for row in range(0, 4096, 17):
            location = subarray.locate(row)
            assert location not in seen
            seen.add(location)

    def test_locate_bounds(self):
        subarray = CounterSubarray()
        with pytest.raises(ValueError):
            subarray.locate(subarray.rows_per_bank)

    def test_counters_per_row(self):
        subarray = CounterSubarray()
        counter_row, offset = subarray.locate(0)
        assert (counter_row, offset) == (0, 0)
        per_row = subarray.row_size_bits // subarray.counter_width_bits
        assert subarray.locate(per_row) == (1, 0)


class TestAggressorTrackingTable:
    def test_insert_until_full(self):
        att = AggressorTrackingTable(2)
        att.update(1, 5)
        att.update(2, 3)
        assert len(att) == 2
        assert att.max_entry().row == 1

    def test_update_existing_row(self):
        att = AggressorTrackingTable(2)
        att.update(1, 5)
        att.update(1, 9)
        assert att.max_entry().count == 9
        assert len(att) == 1

    def test_replaces_lowest_when_exceeded(self):
        att = AggressorTrackingTable(2)
        att.update(1, 5)
        att.update(2, 3)
        att.update(3, 4)  # exceeds the lowest entry (row 2, count 3)
        rows = set(att.tracked_rows())
        assert rows == {1, 3}

    def test_does_not_replace_when_not_exceeding(self):
        att = AggressorTrackingTable(2)
        att.update(1, 5)
        att.update(2, 3)
        att.update(3, 2)
        assert set(att.tracked_rows()) == {1, 2}

    def test_invalidate_frees_slot(self):
        att = AggressorTrackingTable(2)
        att.update(1, 5)
        att.update(2, 3)
        att.invalidate(1)
        assert len(att) == 1
        att.update(3, 1)
        assert set(att.tracked_rows()) == {2, 3}

    def test_max_entry_none_when_empty(self):
        att = AggressorTrackingTable(4)
        assert att.max_entry() is None

    def test_valid_entries_sorted_descending(self):
        att = AggressorTrackingTable(3)
        att.update(1, 5)
        att.update(2, 9)
        att.update(3, 7)
        counts = [entry.count for entry in att.valid_entries()]
        assert counts == sorted(counts, reverse=True)

    def test_clear(self):
        att = AggressorTrackingTable(3)
        att.update(1, 1)
        att.clear()
        assert len(att) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            AggressorTrackingTable(0)


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 100)), min_size=1, max_size=200))
def test_att_tracks_at_most_capacity(updates):
    att = AggressorTrackingTable(4)
    for row, count in updates:
        att.update(row, count)
    assert len(att) <= 4


@given(st.lists(st.integers(0, 5), min_size=1, max_size=300))
def test_per_row_counters_match_reference_counts(rows):
    counters = PerRowCounters(1)
    reference = {}
    for row in rows:
        counters.increment(0, row)
        reference[row] = reference.get(row, 0) + 1
    for row, count in reference.items():
        assert counters.get(0, row) == count
    max_row, max_count = counters.max_row(0)
    assert max_count == max(reference.values())
