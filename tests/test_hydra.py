"""Tests for Hydra (hybrid GCT / RCC / RCT tracking)."""

import pytest

from repro.core.hydra import Hydra, RowCountCache


class TestRowCountCache:
    def test_miss_then_hit(self):
        rcc = RowCountCache(2)
        assert not rcc.access((0, 1))
        assert rcc.access((0, 1))
        assert rcc.hits == 1 and rcc.misses == 1

    def test_lru_eviction(self):
        rcc = RowCountCache(2)
        rcc.access((0, 1))
        rcc.access((0, 2))
        rcc.access((0, 1))  # touch 1 so 2 becomes LRU
        rcc.access((0, 3))  # evicts 2
        assert not rcc.access((0, 2))

    def test_capacity_respected(self):
        rcc = RowCountCache(4)
        for i in range(10):
            rcc.access((0, i))
        assert len(rcc) == 4

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RowCountCache(0)

    def test_clear(self):
        rcc = RowCountCache(2)
        rcc.access((0, 1))
        rcc.clear()
        assert len(rcc) == 0 and rcc.misses == 0


class TestHydra:
    def make(self, nrh=64, **kwargs):
        # Dict reference backend: these tests pin the update rules via the
        # internal GCT/RCT mappings; tests/test_counter_backends.py pins the
        # array backend's observable equivalence against it.
        defaults = dict(num_banks=2, group_size=4, rcc_entries=8, backend="dict")
        defaults.update(kwargs)
        return Hydra(nrh=nrh, **defaults)

    def test_thresholds_derived_from_nrh(self):
        hydra = self.make(nrh=64)
        assert hydra.group_threshold == 16
        assert hydra.row_threshold == 32

    def test_no_per_row_tracking_below_group_threshold(self):
        hydra = self.make()
        for cycle in range(hydra.group_threshold - 1):
            hydra.on_activate(0, cycle % 4, cycle)
        assert not hydra._tracked_groups
        assert hydra.total_pending_rows() == 0

    def test_group_promotion_initialises_rows(self):
        hydra = self.make()
        for cycle in range(hydra.group_threshold):
            hydra.on_activate(0, 0, cycle)
        assert (0, 0) in hydra._tracked_groups
        assert hydra._rct[(0, 1)] == hydra.group_threshold

    def test_rcc_miss_generates_dram_traffic(self):
        hydra = self.make()
        for cycle in range(hydra.group_threshold):
            hydra.on_activate(0, 0, cycle)
        before = hydra.rct_dram_accesses
        hydra.on_activate(0, 1, 100)  # first per-row access to row 1: RCC miss
        assert hydra.rct_dram_accesses == before + 1

    def test_row_threshold_triggers_victim_refresh(self):
        hydra = self.make(nrh=16)  # group threshold 4, row threshold 8
        for cycle in range(4):
            hydra.on_activate(0, 0, cycle)
        # Row 0 starts from the group threshold (4); four more activations
        # reach the row threshold (8).
        for cycle in range(4, 8):
            hydra.on_activate(0, 0, cycle)
        refreshes = []
        while True:
            refresh = hydra.pop_refresh(0)
            if refresh is None:
                break
            refreshes.append(refresh)
        assert any(r.num_rows == hydra.victim_rows_per_aggressor for r in refreshes)

    def test_counter_resets_after_refresh(self):
        hydra = self.make(nrh=16)
        for cycle in range(8):
            hydra.on_activate(0, 0, cycle)
        assert hydra._rct[(0, 0)] == 0

    def test_refresh_window_clears_state(self):
        hydra = self.make()
        for cycle in range(hydra.group_threshold):
            hydra.on_activate(0, 0, cycle)
        hydra.on_refresh_window(1000)
        assert not hydra._tracked_groups
        assert not hydra._gct
        assert not hydra._rct

    def test_storage_split_between_dram_and_sram(self):
        hydra = Hydra(nrh=1024, num_banks=64)
        bits = hydra.storage_overhead_bits(64, 131072)
        assert bits["dram_bits"] > 0
        assert bits["sram_bits"] > 0
        assert bits["dram_bits"] > bits["sram_bits"]

    def test_dram_storage_shrinks_with_nrh(self):
        big = Hydra(nrh=1024, num_banks=64).storage_overhead_bits(64, 131072)["dram_bits"]
        small = Hydra(nrh=20, num_banks=64).storage_overhead_bits(64, 131072)["dram_bits"]
        assert small < big

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Hydra(nrh=64, num_banks=0)
        with pytest.raises(ValueError):
            Hydra(nrh=64, num_banks=1, group_size=0)
