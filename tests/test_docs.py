"""Documentation health checks.

Mirrors the CI docs step locally: every relative Markdown link must resolve,
and the user-facing entry documents must exist and mention the subsystems
they promise to cover.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_links.py"


class TestMarkdownLinks:
    def test_all_relative_links_resolve(self):
        completed = subprocess.run(
            [sys.executable, str(CHECKER), str(REPO_ROOT)],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr

    def test_checker_detects_broken_links(self, tmp_path):
        (tmp_path / "doc.md").write_text("see [missing](nowhere.md)")
        completed = subprocess.run(
            [sys.executable, str(CHECKER), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert completed.returncode == 1
        assert "nowhere.md" in completed.stdout


class TestEntryDocuments:
    def test_readme_exists_and_covers_the_basics(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for needle in ("python -m repro", "pytest", "docs/ARCHITECTURE.md", "channels"):
            assert needle in readme, f"README.md is missing {needle!r}"

    def test_architecture_doc_covers_the_layers(self):
        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        for needle in (
            "ChannelRouter", "MemoryController", "DramDevice", "channel",
            "EXPERIMENTS.md", "ATTACKS.md", "SERVICE.md", "SweepEngine",
        ):
            assert needle in architecture, f"ARCHITECTURE.md is missing {needle!r}"

    def test_service_doc_covers_the_contracts(self):
        service = (REPO_ROOT / "docs" / "SERVICE.md").read_text(encoding="utf-8")
        for needle in (
            "python -m repro serve", "python -m repro client",
            "POST /jobs", "/ws/jobs/", "Retry-After", "429",
            "CancelToken", "round-robin", "cached_jobs",
            "bench_service_load.py",
        ):
            assert needle in service, f"SERVICE.md is missing {needle!r}"

    def test_readme_mentions_the_service(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/SERVICE.md" in readme
        assert "python -m repro serve" in readme

    def test_artifacts_doc_covers_the_contract(self):
        artifacts = (REPO_ROOT / "docs" / "ARTIFACTS.md").read_text(
            encoding="utf-8"
        )
        for needle in (
            "#!REPRO-ARTIFACT", "HMAC", "constant time",
            "python -m repro artifact verify", "canonical JSON",
            "ArtifactIndexError", "ArtifactHeaderError", "--auth-key",
            "tests/test_artifacts_security.py", "X-Auth-Token",
        ):
            assert needle in artifacts, f"ARTIFACTS.md is missing {needle!r}"

    def test_readme_mentions_artifacts(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/ARTIFACTS.md" in readme
        assert "artifact verify" in readme

    def test_linting_doc_covers_the_contracts(self):
        linting = (REPO_ROOT / "docs" / "LINTING.md").read_text(
            encoding="utf-8"
        )
        for needle in (
            "python -m repro lint", "tools/reprolint.py",
            "no-reflection", "hot-path-alloc", "determinism",
            "canonical-json", "cache-key-completeness",
            "event-source-registry", "bad-suppression",
            "reprolint: disable=", "--write-baseline",
            "tools/reprolint_baseline.json", "ruff",
        ):
            assert needle in linting, f"LINTING.md is missing {needle!r}"

    def test_readme_and_architecture_mention_linting(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/LINTING.md" in readme
        assert "python -m repro lint" in readme
        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        assert "LINTING.md" in architecture
        assert "event-source-registry" in architecture

    def test_service_doc_covers_authentication(self):
        service = (REPO_ROOT / "docs" / "SERVICE.md").read_text(encoding="utf-8")
        for needle in (
            "--auth-key", "X-Auth-Token", "401", "/jobs/{id}/artifact",
            "ARTIFACTS.md",
        ):
            assert needle in service, f"SERVICE.md is missing {needle!r}"

    def test_experiments_doc_mentions_artifact_emission(self):
        experiments = (REPO_ROOT / "docs" / "EXPERIMENTS.md").read_text(
            encoding="utf-8"
        )
        assert "--artifact" in experiments
        assert "ARTIFACTS.md" in experiments

    def test_architecture_doc_covers_bank_timing_plane(self):
        architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(
            encoding="utf-8"
        )
        for needle in (
            "Structure-of-arrays bank timing", "BankArrayTiming",
            "REPRO_BANK_BACKEND", "memoryview", "TimingViolation",
            "tests/test_bank_backends.py", "acquire_planes",
            "_demand_ready_cycle_vector",
        ):
            assert needle in architecture, f"ARCHITECTURE.md is missing {needle!r}"

    def test_experiments_doc_covers_bank_backend_and_readiness_scan(self):
        experiments = (REPO_ROOT / "docs" / "EXPERIMENTS.md").read_text(
            encoding="utf-8"
        )
        for needle in (
            "REPRO_BANK_BACKEND", "readiness_scan",
            "structure-of-arrays-bank-timing",
        ):
            assert needle in experiments, f"EXPERIMENTS.md is missing {needle!r}"

    def test_experiment_and_attack_docs_mention_channels_knob(self):
        experiments = (REPO_ROOT / "docs" / "EXPERIMENTS.md").read_text(
            encoding="utf-8"
        )
        attacks = (REPO_ROOT / "docs" / "ATTACKS.md").read_text(encoding="utf-8")
        assert "--channels" in experiments
        assert "--channel" in attacks
        assert "repro.workloads.attacker" in attacks  # deprecation shim note
