"""Tests for the periodic refresh scheduler."""

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import ddr5_3200an


@pytest.fixture
def scheduler():
    return RefreshScheduler(num_ranks=2, timing=ddr5_3200an())


class TestRefreshScheduler:
    def test_nothing_pending_initially(self, scheduler):
        scheduler.tick(0)
        assert not scheduler.refresh_needed(0)
        assert scheduler.ranks_needing_refresh() == []

    def test_pending_after_trefi(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(trefi)
        assert scheduler.pending_refreshes(0) == 1
        assert scheduler.pending_refreshes(1) == 1
        assert set(scheduler.ranks_needing_refresh()) == {0, 1}

    def test_multiple_intervals_accumulate(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(3 * trefi)
        assert scheduler.pending_refreshes(0) == 3

    def test_urgent_after_postpone_budget(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(3 * trefi)
        assert not scheduler.refresh_urgent(0)
        scheduler.tick(4 * trefi)
        assert scheduler.refresh_urgent(0)

    def test_issue_decrements_pending(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(2 * trefi)
        scheduler.refresh_issued(0)
        assert scheduler.pending_refreshes(0) == 1
        assert scheduler.total_issued() == 1

    def test_issue_without_pending_raises(self, scheduler):
        with pytest.raises(RuntimeError):
            scheduler.refresh_issued(0)

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            RefreshScheduler(num_ranks=0, timing=ddr5_3200an())

    def test_tick_is_idempotent_for_same_cycle(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(trefi)
        scheduler.tick(trefi)
        assert scheduler.pending_refreshes(0) == 1
