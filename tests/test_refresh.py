"""Tests for the periodic refresh scheduler."""

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import ddr5_3200an


@pytest.fixture
def scheduler():
    return RefreshScheduler(num_ranks=2, timing=ddr5_3200an())


class TestRefreshScheduler:
    def test_nothing_pending_initially(self, scheduler):
        scheduler.tick(0)
        assert not scheduler.refresh_needed(0)
        assert scheduler.ranks_needing_refresh() == ()

    def test_pending_after_trefi(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(trefi)
        assert scheduler.pending_refreshes(0) == 1
        assert scheduler.pending_refreshes(1) == 1
        assert set(scheduler.ranks_needing_refresh()) == {0, 1}

    def test_multiple_intervals_accumulate(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(3 * trefi)
        assert scheduler.pending_refreshes(0) == 3

    def test_urgent_after_postpone_budget(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(3 * trefi)
        assert not scheduler.refresh_urgent(0)
        scheduler.tick(4 * trefi)
        assert scheduler.refresh_urgent(0)

    def test_issue_decrements_pending(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(2 * trefi)
        scheduler.refresh_issued(0)
        assert scheduler.pending_refreshes(0) == 1
        assert scheduler.total_issued() == 1

    def test_issue_without_pending_raises(self, scheduler):
        with pytest.raises(RuntimeError):
            scheduler.refresh_issued(0)

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            RefreshScheduler(num_ranks=0, timing=ddr5_3200an())

    def test_tick_is_idempotent_for_same_cycle(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(trefi)
        scheduler.tick(trefi)
        assert scheduler.pending_refreshes(0) == 1


class TestLazyAccrual:
    """The hint-driven accrual pinned against the eager implementation."""

    def test_next_due_cycle_starts_at_trefi(self, scheduler):
        assert scheduler.next_due_cycle() == scheduler.timing.tREFI

    def test_next_due_cycle_advances_past_tick(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(trefi)
        assert scheduler.next_due_cycle() == 2 * trefi
        scheduler.tick(5 * trefi + 17)
        assert scheduler.next_due_cycle() == 6 * trefi

    def test_skipping_ticks_accrues_identically(self):
        """One big tick accrues exactly what per-cycle ticking accrues."""
        timing = ddr5_3200an()
        eager = RefreshScheduler(num_ranks=2, timing=timing)
        lazy = RefreshScheduler(num_ranks=2, timing=timing)
        horizon = 4 * timing.tREFI + 123
        for cycle in range(0, horizon, 97):
            eager.tick(cycle)
        lazy.tick(horizon - 1)
        eager.tick(horizon - 1)
        for rank in range(2):
            assert eager.pending_refreshes(rank) == lazy.pending_refreshes(rank)
        assert eager.next_due_cycle() == lazy.next_due_cycle()

    def test_ranks_needing_refresh_tuple_is_cached(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(trefi)
        first = scheduler.ranks_needing_refresh()
        assert first == (0, 1)
        # No accrual/issue between calls: the same tuple object is returned
        # (the hot path calls this every tick).
        assert scheduler.ranks_needing_refresh() is first

    def test_cache_invalidated_on_issue_and_accrual(self, scheduler):
        trefi = scheduler.timing.tREFI
        scheduler.tick(trefi)
        assert scheduler.ranks_needing_refresh() == (0, 1)
        scheduler.refresh_issued(0)
        assert scheduler.ranks_needing_refresh() == (1,)
        scheduler.refresh_issued(1)
        assert scheduler.ranks_needing_refresh() == ()
        scheduler.tick(2 * trefi)
        assert scheduler.ranks_needing_refresh() == (0, 1)
