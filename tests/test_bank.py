"""Tests for the per-bank state machine and timing enforcement."""

import pytest

from repro.dram.bank import Bank, BankState, TimingViolation
from repro.dram.timing import ddr5_3200an


@pytest.fixture
def bank():
    return Bank(0, ddr5_3200an())


@pytest.fixture
def prac_bank():
    return Bank(0, ddr5_3200an(prac=True))


class TestActivate:
    def test_initially_idle(self, bank):
        assert bank.state is BankState.IDLE
        assert bank.open_row is None
        assert bank.can_activate(0)

    def test_activate_opens_row(self, bank):
        bank.activate(row=42, cycle=0)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 42
        assert bank.is_open(42)
        assert not bank.is_open(43)

    def test_activate_when_open_rejected(self, bank):
        bank.activate(10, 0)
        assert not bank.can_activate(1000)
        with pytest.raises(TimingViolation):
            bank.activate(11, 1000)

    def test_activate_counts(self, bank):
        bank.activate(1, 0)
        bank.precharge(bank.timing.tRAS)
        bank.activate(2, bank.timing.tRAS + bank.timing.tRP)
        assert bank.stats.activations == 2

    def test_trc_between_activations(self, bank):
        t = bank.timing
        bank.activate(1, 0)
        bank.precharge(t.tRAS)
        # The next ACT must respect both tRAS+tRP and tRC.
        earliest = max(t.tRC, t.tRAS + t.tRP)
        assert not bank.can_activate(earliest - 1)
        assert bank.can_activate(earliest)


class TestPrecharge:
    def test_precharge_before_tras_rejected(self, bank):
        bank.activate(1, 0)
        assert not bank.can_precharge(bank.timing.tRAS - 1)
        with pytest.raises(TimingViolation):
            bank.precharge(bank.timing.tRAS - 1)

    def test_precharge_returns_closed_row(self, bank):
        bank.activate(7, 0)
        assert bank.precharge(bank.timing.tRAS) == 7
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_precharge_idle_rejected(self, bank):
        with pytest.raises(TimingViolation):
            bank.precharge(100)

    def test_act_after_precharge_waits_trp(self, bank):
        t = bank.timing
        bank.activate(1, 0)
        bank.precharge(t.tRAS)
        assert not bank.can_activate(t.tRAS + t.tRP - 1)
        assert bank.can_activate(max(t.tRAS + t.tRP, t.tRC))


class TestReadWrite:
    def test_read_before_trcd_rejected(self, bank):
        bank.activate(1, 0)
        assert not bank.can_read(bank.timing.tRCD - 1)
        with pytest.raises(TimingViolation):
            bank.read(bank.timing.tRCD - 1)

    def test_read_returns_data_ready_cycle(self, bank):
        t = bank.timing
        bank.activate(1, 0)
        ready = bank.read(t.tRCD)
        assert ready == t.tRCD + t.tCL + t.tBL

    def test_read_delays_precharge_by_trtp(self, bank):
        t = bank.timing
        bank.activate(1, 0)
        read_cycle = t.tRAS  # read late so tRTP dominates
        bank.read(read_cycle)
        assert not bank.can_precharge(read_cycle + t.tRTP - 1)
        assert bank.can_precharge(read_cycle + t.tRTP)

    def test_write_delays_precharge_by_twr(self, bank):
        t = bank.timing
        bank.activate(1, 0)
        done = bank.write(t.tRCD)
        assert done == t.tRCD + t.tCWL + t.tBL
        assert not bank.can_precharge(done + t.tWR - 1)
        assert bank.can_precharge(max(done + t.tWR, t.tRAS))

    def test_column_to_column_delay(self, bank):
        t = bank.timing
        bank.activate(1, 0)
        bank.read(t.tRCD)
        assert not bank.can_read(t.tRCD + t.tCCD - 1)
        assert bank.can_read(t.tRCD + t.tCCD)

    def test_read_idle_rejected(self, bank):
        with pytest.raises(TimingViolation):
            bank.read(100)

    def test_counts(self, bank):
        t = bank.timing
        bank.activate(1, 0)
        bank.read(t.tRCD)
        bank.write(t.tRCD + t.tCCD)
        assert bank.stats.reads == 1
        assert bank.stats.writes == 1


class TestPracTimingsChangeBehaviour:
    def test_prac_allows_earlier_precharge(self, bank, prac_bank):
        """With PRAC, tRAS shrinks so an idle row closes sooner."""
        bank.activate(1, 0)
        prac_bank.activate(1, 0)
        assert prac_bank.timing.tRAS < bank.timing.tRAS
        assert prac_bank.can_precharge(prac_bank.timing.tRAS)
        assert not bank.can_precharge(prac_bank.timing.tRAS)

    def test_prac_delays_reactivation(self, bank, prac_bank):
        """With PRAC, tRP grows so a row conflict costs more."""
        for b in (bank, prac_bank):
            b.activate(1, 0)
            b.precharge(b.timing.tRAS)
        base_ready = bank.ready_cycle_for_activate()
        prac_ready = prac_bank.ready_cycle_for_activate()
        assert prac_ready > base_ready


class TestBlockAndVictimRefresh:
    def test_block_requires_idle(self, bank):
        bank.activate(1, 0)
        with pytest.raises(TimingViolation):
            bank.block(10, 100)

    def test_block_delays_activation(self, bank):
        bank.block(0, 500)
        assert not bank.can_activate(499)
        assert bank.can_activate(500)

    def test_victim_refresh_blocks_for_rows_times_trc(self, bank):
        t = bank.timing
        done = bank.victim_refresh(0, rows=4)
        assert done == 4 * t.tRC
        assert not bank.can_activate(done - 1)
        assert bank.can_activate(done)
        assert bank.stats.victim_refreshes == 4

    def test_victim_refresh_requires_idle(self, bank):
        bank.activate(1, 0)
        with pytest.raises(TimingViolation):
            bank.victim_refresh(10)


class TestStatsMerge:
    def test_merge(self):
        from repro.dram.bank import BankStats

        a = BankStats(activations=1, precharges=2, reads=3, writes=4, victim_refreshes=5)
        b = BankStats(activations=10, precharges=20, reads=30, writes=40, victim_refreshes=50)
        a.merge(b)
        assert (a.activations, a.precharges, a.reads, a.writes, a.victim_refreshes) == (
            11, 22, 33, 44, 55,
        )
