"""Smoke tests for the cProfile entry point (tools/profile_run.py)."""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOLS = os.path.join(REPO_ROOT, "tools")


sys.path.insert(0, TOOLS)
from profile_run import resolve_mechanism  # noqa: E402


class TestMechanismResolution:
    def test_case_insensitive_and_aliases(self):
        assert resolve_mechanism("prac") == "PRAC-4"
        assert resolve_mechanism("chronus") == "Chronus"
        assert resolve_mechanism("GRAPHENE") == "Graphene"
        assert resolve_mechanism("prac+prfm") == "PRAC+PRFM"

    def test_unknown_mechanism_raises(self):
        with pytest.raises(ValueError):
            resolve_mechanism("not-a-mechanism")


def test_cli_prints_top_hotspots():
    """`python -m tools.profile_run` runs a sim and prints a pstats table."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + REPO_ROOT
    result = subprocess.run(
        [
            sys.executable, "-m", "tools.profile_run",
            "--mechanism", "prac", "--channels", "2",
            "--accesses", "120", "--top", "5",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert "profiling PRAC-4" in result.stdout
    assert "cumulative" in result.stdout  # the pstats sort header
    assert "simulated" in result.stdout


def test_cli_json_summary():
    """`--json` emits a machine-readable top-N summary and nothing else."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + REPO_ROOT
    result = subprocess.run(
        [
            sys.executable, "-m", "tools.profile_run",
            "--mechanism", "none", "--accesses", "120",
            "--json", "--sort", "tottime", "--top", "7",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    summary = json.loads(result.stdout)  # pure JSON: no banner, no table
    assert summary["mechanism"] == "None"
    assert summary["sort"] == "tottime"
    assert summary["cycles"] > 0 and summary["reads_served"] > 0
    top = summary["top"]
    assert 0 < len(top) <= 7
    for row in top:
        assert set(row) == {
            "function", "ncalls", "primitive_calls", "tottime", "cumtime"
        }
    # Honours the sort key: rows arrive in descending self-time order.
    tottimes = [row["tottime"] for row in top]
    assert tottimes == sorted(tottimes, reverse=True)


def test_cli_rejects_unknown_mechanism():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + REPO_ROOT
    result = subprocess.run(
        [sys.executable, "-m", "tools.profile_run", "--mechanism", "bogus"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert result.returncode == 2
    assert "unknown mechanism" in result.stderr