"""Tests for the attack-pattern registry and AttackSpec compilation."""

import importlib

import pytest

from repro.attacks.patterns import (
    ATTACK_PATTERNS,
    AttackSpec,
    default_search_specs,
    pattern_by_name,
    pattern_names,
    wave_attack_addresses,
    wave_attack_trace,
)
from repro.controller.address_mapping import mop_mapping
from repro.dram.organization import PAPER_ORGANIZATION


MAPPING = mop_mapping(PAPER_ORGANIZATION)


def decoded_banks_and_rows(trace):
    decoded = [MAPPING.decode(entry.address) for entry in trace]
    banks = {address.flat_bank(PAPER_ORGANIZATION) for address in decoded}
    rows = {address.row for address in decoded}
    return banks, rows


class TestRegistry:
    def test_expected_patterns_registered(self):
        assert set(pattern_names()) == {
            "single_sided",
            "double_sided",
            "many_sided",
            "wave",
            "rfm_dodge",
            "refresh_sync",
            "perf_attack",
        }

    def test_unknown_pattern_raises(self):
        with pytest.raises(ValueError, match="unknown attack pattern"):
            pattern_by_name("rowpress")

    def test_every_pattern_compiles_with_defaults(self):
        for name in pattern_names():
            trace = AttackSpec(pattern=name).compile()
            assert trace.memory_accesses > 0
            assert all(not entry.is_write for entry in trace)

    def test_every_search_variant_compiles(self):
        for spec in default_search_specs():
            assert spec.compile().memory_accesses > 0

    def test_default_search_specs_cover_all_patterns(self):
        specs = default_search_specs()
        assert {spec.pattern for spec in specs} == set(pattern_names())
        variants = sum(len(p.search_variants) for p in ATTACK_PATTERNS.values())
        assert len(specs) == len(pattern_names()) + variants


class TestAttackSpec:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            AttackSpec.create("wave", {"warp_factor": 9})

    def test_params_normalised_sorted(self):
        spec = AttackSpec(pattern="wave", params=(("rounds", 2), ("num_rows", 4)))
        assert spec.params == (("num_rows", 4), ("rounds", 2))

    def test_specs_with_same_resolution_are_equal_and_hashable(self):
        first = AttackSpec.create("wave", {"rounds": 2, "num_rows": 4})
        second = AttackSpec(pattern="wave", params=(("rounds", 2), ("num_rows", 4)))
        assert first == second
        assert hash(first) == hash(second)

    def test_resolved_params_fill_defaults(self):
        spec = AttackSpec.create("wave", {"rounds": 3})
        resolved = spec.resolved_params
        assert resolved["rounds"] == 3
        assert resolved["num_rows"] == pattern_by_name("wave").default_params["num_rows"]

    def test_payload_records_full_resolution(self):
        payload = AttackSpec.create("wave", {"rounds": 3}).as_payload()
        assert payload["pattern"] == "wave"
        assert set(payload["params"]) == set(pattern_by_name("wave").default_params)

    def test_label(self):
        assert AttackSpec(pattern="wave").label == "wave"
        assert AttackSpec.create("wave", {"rounds": 3}).label == "wave(rounds=3)"

    def test_compile_deterministic(self):
        first = AttackSpec(pattern="perf_attack", seed=7).compile()
        second = AttackSpec(pattern="perf_attack", seed=7).compile()
        assert [e.address for e in first] == [e.address for e in second]

    def test_perf_attack_seed_changes_rows(self):
        first = AttackSpec(pattern="perf_attack", seed=1).compile()
        second = AttackSpec(pattern="perf_attack", seed=2).compile()
        assert [e.address for e in first] != [e.address for e in second]


class TestPatternShapes:
    def test_single_sided_two_rows_one_bank(self):
        trace = AttackSpec.create(
            "single_sided", {"hammer_count": 10, "bank_index": 3}
        ).compile()
        banks, rows = decoded_banks_and_rows(trace)
        assert banks == {3}
        assert len(rows) == 2

    def test_double_sided_straddles_victim(self):
        trace = AttackSpec.create(
            "double_sided", {"pair_rounds": 5, "victim_row": 40}
        ).compile()
        _, rows = decoded_banks_and_rows(trace)
        assert rows == {39, 41}

    def test_many_sided_row_count(self):
        trace = AttackSpec.create(
            "many_sided", {"num_sides": 6, "rounds": 4}
        ).compile()
        _, rows = decoded_banks_and_rows(trace)
        assert len(rows) == 6
        assert trace.memory_accesses == 24

    def test_rfm_dodge_spreads_over_banks(self):
        trace = AttackSpec.create(
            "rfm_dodge", {"num_banks": 5, "rows_per_bank": 2, "rounds": 3}
        ).compile()
        banks, _ = decoded_banks_and_rows(trace)
        assert len(banks) == 5

    def test_refresh_sync_has_gaps_between_bursts(self):
        trace = AttackSpec.create(
            "refresh_sync",
            {"burst_pairs": 4, "num_bursts": 3, "gap_instructions": 999},
        ).compile()
        gaps = [entry.gap_instructions for entry in trace if entry.gap_instructions]
        assert gaps == [999, 999]

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            AttackSpec.create(
                "single_sided", {"row": PAPER_ORGANIZATION.rows}
            ).compile()


class TestWaveWrapAround:
    """The wave row set must fit in the bank (no silent modulo reuse)."""

    def test_addresses_raise_when_row_set_wraps(self):
        too_many = PAPER_ORGANIZATION.rows // 4 + 1
        with pytest.raises(ValueError, match="wrap"):
            wave_attack_addresses(too_many, row_stride=4)

    def test_addresses_raise_when_first_row_pushes_past_end(self):
        with pytest.raises(ValueError, match="does not fit"):
            wave_attack_addresses(16, row_stride=4, first_row=PAPER_ORGANIZATION.rows - 32)

    def test_largest_fitting_row_set_is_accepted_and_distinct(self):
        num_rows = PAPER_ORGANIZATION.rows // 4
        addresses = wave_attack_addresses(num_rows, row_stride=4)
        assert len(set(addresses)) == num_rows

    def test_trace_raises_when_row_set_wraps(self):
        with pytest.raises(ValueError, match="does not fit"):
            wave_attack_trace(num_rows=PAPER_ORGANIZATION.rows, rounds=1)

    def test_wave_spec_inherits_validation(self):
        with pytest.raises(ValueError, match="does not fit"):
            AttackSpec.create("wave", {"num_rows": PAPER_ORGANIZATION.rows}).compile()


class TestDeprecationShim:
    def test_old_import_path_still_works(self):
        import sys

        sys.modules.pop("repro.workloads.attacker", None)
        with pytest.warns(DeprecationWarning, match="repro.attacks"):
            from repro.workloads import attacker

        assert attacker.wave_attack_trace is wave_attack_trace
        assert attacker.wave_attack_addresses is wave_attack_addresses

    def test_shim_emits_deprecation_warning(self):
        from repro.workloads import attacker

        with pytest.warns(DeprecationWarning, match="repro.attacks"):
            importlib.reload(attacker)

    def test_shim_warning_is_promoted_to_error_under_pytest(self):
        """pytest.ini turns the shim's DeprecationWarning into an error, so
        no test (or fixture) can silently depend on the deprecated path."""
        import sys

        sys.modules.pop("repro.workloads.attacker", None)
        with pytest.raises(DeprecationWarning, match="repro.attacks"):
            import repro.workloads.attacker  # noqa: F401

    def test_workloads_package_reexports_without_warning(self):
        import warnings

        import repro.workloads as workloads

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(workloads)
        assert workloads.wave_attack_trace is wave_attack_trace
