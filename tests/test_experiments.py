"""Tests for the experiment runner and figure data generators."""

import pytest

from repro.experiments import figures
from repro.experiments.runner import ExperimentRunner, default_mixes


ACCESSES = 250


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(accesses_per_core=ACCESSES, seed=0)


class TestRunner:
    def test_alone_ipc_cached(self, runner):
        first = runner.alone_ipc("429.mcf")
        second = runner.alone_ipc("429.mcf")
        assert first == second
        assert first > 0

    def test_baseline_cached(self, runner):
        apps = ("429.mcf", "401.bzip2")
        first = runner.baseline_result(apps)
        second = runner.baseline_result(apps)
        assert first is second

    def test_normalized_ws_close_to_one_for_baseline_like_run(self, runner):
        apps = ("429.mcf", "401.bzip2")
        result = runner.run_mix(apps, "Chronus", 1024)
        value = runner.normalized_ws(apps, result)
        assert 0.9 <= value <= 1.05

    def test_compare_produces_one_row_per_point(self, runner):
        mixes = [("429.mcf", "401.bzip2")]
        comparisons = runner.compare(["Chronus", "PRAC-4"], [1024, 20], mixes)
        assert len(comparisons) == 4
        keyed = {(c.mechanism, c.nrh): c for c in comparisons}
        assert keyed[("PRAC-4", 20)].mean_normalized_ws <= keyed[("Chronus", 20)].mean_normalized_ws
        for comparison in comparisons:
            assert 0.0 < comparison.mean_normalized_ws <= 1.2
            assert comparison.mean_normalized_energy > 0.0

    def test_default_mixes_spread_across_types(self):
        mixes = default_mixes(6)
        assert len(mixes) == 6
        assert len({mix.mix_type for mix in mixes}) == 6
        assert len(default_mixes(3, mix_types=["HHHH"])) == 3


class TestAnalyticalFigures:
    def test_table1(self):
        rows = figures.table1_data()
        assert {row["parameter"] for row in rows} == {"tRAS", "tRP", "tRC", "tRTP", "tWR"}

    def test_fig3a(self):
        rows = figures.fig3a_data(rfm_thresholds=(2, 32), row_set_sizes=(2048, 65536))
        assert len(rows) == 4
        assert all(row["max_acts"] >= 1 for row in rows)

    def test_fig3b(self):
        rows = figures.fig3b_data(backoff_thresholds=(1, 8), nrefs=(1, 4),
                                  row_set_sizes=(2048,))
        assert len(rows) == 4
        by_key = {(r["nbo"], r["nref"]): r["max_acts"] for r in rows}
        assert by_key[(8, 4)] >= by_key[(1, 4)]

    def test_fig11_and_fig13(self):
        fig11 = figures.fig11_data(nrh_values=(1024, 20))
        assert {row["mechanism"] for row in fig11} == set(figures.FIG11_MECHANISMS)
        fig13 = figures.fig13_data(nrh_values=(1024, 20))
        assert {row["mechanism"] for row in fig13} == {"Chronus", "ABACuS"}

    def test_sec11_theory(self):
        rows = figures.sec11_theory_data(nrh_values=(20,))
        by_mechanism = {row["mechanism"]: row for row in rows}
        assert by_mechanism["PRAC-4"]["max_bandwidth_consumption"] > \
            by_mechanism["Chronus"]["max_bandwidth_consumption"]

    def test_appendix_a(self):
        data = figures.appendix_a_data()
        assert data["gate_count"] == 21
        assert data["transistor_count"] == 96
        assert data["functional_mismatches"] == 0
        assert data["fits_within_trc"]

    def test_format_rows(self):
        text = figures.format_rows([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        assert "a" in text and "2.500" in text
        assert figures.format_rows([]) == "(no rows)"


class TestSimulationFigures:
    def test_fig8_data_small(self):
        rows = figures.fig8_data(
            nrh_values=(1024,),
            mechanisms=("Chronus", "PRAC-4"),
            num_mixes=1,
            accesses_per_core=ACCESSES,
        )
        assert len(rows) == 2
        by_mechanism = {row["mechanism"]: row for row in rows}
        assert by_mechanism["Chronus"]["normalized_ws"] >= by_mechanism["PRAC-4"]["normalized_ws"]

    def test_fig9_data_small(self):
        rows = figures.fig9_data(
            nrh=64,
            mechanisms=("Chronus",),
            mixes_per_type=1,
            accesses_per_core=ACCESSES,
        )
        assert len(rows) == len(figures.MIX_TYPES)
        assert all(0.0 < row["normalized_ws"] <= 1.2 for row in rows)
