"""Tests for the memory controller (end-to-end command sequencing)."""

import pytest

from repro.controller.address_mapping import mop_mapping
from repro.controller.controller import MemoryController
from repro.controller.request import MemoryRequest, RequestType
from repro.core.graphene import Graphene
from repro.core.mitigation import PreventiveRefresh
from repro.core.prac import PRAC
from repro.core.prfm import PRFM
from repro.dram.device import DramDevice
from repro.dram.organization import DramOrganization
from repro.dram.timing import ddr5_3200an


ORG = DramOrganization(ranks=1, bankgroups=2, banks_per_group=2, rows=512, columns=32)


def make_controller(mechanism=None, on_die=None, timing=None):
    device = DramDevice(ORG, timing or ddr5_3200an(), mitigation=on_die)
    controller = MemoryController(device, mop_mapping(ORG), mechanism=mechanism)
    return controller, device


def read_request(address, core=0, cycle=0):
    return MemoryRequest(address=address, request_type=RequestType.READ,
                         core_id=core, arrival_cycle=cycle)


def run_until_complete(controller, max_cycles=100_000):
    """Tick the controller until all queued demand requests complete."""
    completed = []
    cycle = 0
    while controller.pending_requests() and cycle < max_cycles:
        issued, hint = controller.tick(cycle)
        completed.extend(controller.drain_completed())
        cycle = cycle + 1 if issued else max(cycle + 1, min(hint, cycle + 10_000))
    return completed, cycle


class TestDemandServicing:
    def test_single_read_completes(self):
        controller, device = make_controller()
        request = read_request(0x1000)
        assert controller.enqueue(request)
        completed, _ = run_until_complete(controller)
        assert request in completed
        assert request.completion_cycle is not None
        assert controller.stats.reads_served == 1
        assert device.command_counts["ACT"] == 1
        assert device.command_counts["RD"] == 1

    def test_row_hit_faster_than_row_conflict(self):
        t = ddr5_3200an()
        # Two reads to the same row: the second is a row hit.
        controller, _ = make_controller()
        a = read_request(0x0)
        b = read_request(0x40)  # next cache line, same row under MOP
        controller.enqueue(a)
        controller.enqueue(b)
        run_until_complete(controller)
        assert controller.stats.row_hits >= 1
        assert b.completion_cycle - a.completion_cycle < t.tRC

    def test_conflicting_reads_both_complete(self):
        controller, _ = make_controller()
        mapping = controller.mapping
        # Same bank, different rows.
        from repro.dram.organization import DramAddress

        first = read_request(mapping.encode(DramAddress(0, 0, 0, 0, 10, 0)))
        second = read_request(mapping.encode(DramAddress(0, 0, 0, 0, 11, 0)))
        controller.enqueue(first)
        controller.enqueue(second)
        completed, _ = run_until_complete(controller)
        assert len(completed) == 2
        assert controller.stats.row_conflicts >= 1

    def test_write_completes_and_counts(self):
        controller, device = make_controller()
        write = MemoryRequest(address=0x2000, request_type=RequestType.WRITE,
                              core_id=0, arrival_cycle=0)
        controller.enqueue(write)
        completed, _ = run_until_complete(controller)
        assert write in completed
        assert device.command_counts["WR"] == 1
        assert controller.stats.writes_served == 1

    def test_queue_capacity_enforced(self):
        controller, _ = make_controller()
        controller.read_queue_size = 2
        assert controller.enqueue(read_request(0x0))
        assert controller.enqueue(read_request(0x1000))
        assert not controller.enqueue(read_request(0x2000))
        assert not controller.can_accept(RequestType.READ)

    def test_decoded_coordinates_attached(self):
        controller, _ = make_controller()
        request = read_request(0x12340)
        controller.enqueue(request)
        assert request.dram is not None
        assert 0 <= request.bank_id < ORG.total_banks


class TestRefreshHandling:
    def test_urgent_refresh_eventually_issued(self):
        controller, device = make_controller()
        timing = device.timing
        cycle = 0
        horizon = timing.tREFI * 6
        while cycle < horizon:
            issued, hint = controller.tick(cycle)
            cycle = cycle + 1 if issued else max(cycle + 1, min(hint, cycle + timing.tREFI))
        assert controller.stats.refreshes >= 1
        assert device.command_counts["REF"] >= 1

    def test_idle_rank_refreshes_opportunistically(self):
        controller, device = make_controller()
        timing = device.timing
        controller.refresh.tick(timing.tREFI + 1)
        issued, _ = controller.tick(timing.tREFI + 1)
        assert issued
        assert device.command_counts["REF"] == 1


class TestPrfmIntegration:
    def test_rfm_issued_after_threshold_activations(self):
        prfm = PRFM(nrh=1024, num_banks=ORG.total_banks, rfm_threshold=2)
        controller, device = make_controller(mechanism=prfm)
        from repro.dram.organization import DramAddress

        mapping = controller.mapping
        for row in range(4):
            controller.enqueue(read_request(mapping.encode(DramAddress(0, 0, 0, 0, row, 0))))
        run_until_complete(controller)
        assert device.command_counts["RFM"] >= 1
        assert controller.stats.rfms >= 1


class TestPreventiveRefreshIntegration:
    def test_queued_refresh_serviced_as_vrr(self):
        graphene = Graphene(nrh=64, num_banks=ORG.total_banks, table_entries=8)
        controller, device = make_controller(mechanism=graphene)
        graphene.queue_refresh(PreventiveRefresh(bank_id=1, aggressor_row=5, num_rows=4))
        cycle = 0
        while graphene.total_pending_rows() and cycle < 10_000:
            issued, hint = controller.tick(cycle)
            cycle = cycle + 1 if issued else max(cycle + 1, min(hint, cycle + 1000))
        assert device.command_counts["VRR"] == 4
        assert controller.stats.preventive_refresh_rows == 4


class TestBackoffIntegration:
    def test_prac_backoff_triggers_rfm_recovery(self):
        prac = PRAC(nrh=1024, num_banks=ORG.total_banks, nbo=1, nref=2)
        timing = ddr5_3200an(prac=True)
        controller, device = make_controller(on_die=prac, timing=timing)
        # Two conflicting reads force a precharge, which increments the PRAC
        # counter of the first row and (with NBO = 1) asserts the back-off.
        from repro.dram.organization import DramAddress

        mapping = controller.mapping
        controller.enqueue(read_request(mapping.encode(DramAddress(0, 0, 0, 0, 10, 0))))
        controller.enqueue(read_request(mapping.encode(DramAddress(0, 0, 0, 0, 11, 0))))
        cycle = 0
        while (controller.pending_requests() or device.backoff_asserted()
               or controller._in_recovery or controller._rfm_due_cycle is not None):
            issued, hint = controller.tick(cycle)
            controller.drain_completed()
            cycle = cycle + 1 if issued else max(cycle + 1, min(hint, cycle + 1000))
            if cycle > 50_000:
                pytest.fail("back-off recovery did not finish")
        assert controller.stats.backoffs_observed == 1
        assert controller.stats.rfms == prac.nref
        assert device.command_counts["RFM"] == prac.nref
        assert not device.backoff_asserted()

    def test_backoff_blocks_demand_after_window(self):
        prac = PRAC(nrh=1024, num_banks=ORG.total_banks, nbo=1, nref=1)
        timing = ddr5_3200an(prac=True)
        controller, device = make_controller(on_die=prac, timing=timing)
        controller._rfm_due_cycle = 100
        assert not controller._backoff_blocks_traffic(50)
        assert controller._backoff_blocks_traffic(100)
        controller._rfm_due_cycle = None
        controller._in_recovery = True
        assert controller._backoff_blocks_traffic(0)
