"""Tests for PARA (probabilistic adjacent-row activation)."""

import pytest

from repro.core.para import PARA, para_refresh_probability


class TestProbabilityDerivation:
    def test_probability_increases_as_nrh_decreases(self):
        assert para_refresh_probability(20) > para_refresh_probability(1024)

    def test_probability_bounded(self):
        for nrh in (1, 20, 1024, 100_000):
            p = para_refresh_probability(nrh)
            assert 0.0 < p <= 1.0

    def test_target_failure_respected(self):
        nrh = 512
        p = para_refresh_probability(nrh, target_failure=1e-15)
        assert (1.0 - p) ** nrh <= 1e-15 * 1.01

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            para_refresh_probability(0)
        with pytest.raises(ValueError):
            para_refresh_probability(100, target_failure=2.0)


class TestPara:
    def test_stateless_storage(self):
        para = PARA(nrh=1024, num_banks=4)
        assert para.storage_overhead_bits(64, 131072) == {}

    def test_deterministic_with_seed(self):
        first = PARA(nrh=64, num_banks=1, seed=7)
        second = PARA(nrh=64, num_banks=1, seed=7)
        for cycle in range(200):
            first.on_activate(0, cycle, cycle)
            second.on_activate(0, cycle, cycle)
        assert first.total_pending_rows() == second.total_pending_rows()

    def test_refresh_rate_tracks_probability(self):
        para = PARA(nrh=1024, num_banks=1, probability=0.25, seed=3)
        activations = 4000
        for cycle in range(activations):
            para.on_activate(0, cycle, cycle)
        pending = para.total_pending_rows()
        assert 0.18 * activations < pending < 0.32 * activations

    def test_refreshes_single_neighbour(self):
        para = PARA(nrh=8, num_banks=1, probability=1.0)
        para.on_activate(0, 100, 0)
        refresh = para.pending_refresh(0)
        assert refresh is not None
        assert refresh.num_rows == 1
        assert refresh.aggressor_row == 100

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PARA(nrh=64, num_banks=1, probability=0.0)
        with pytest.raises(ValueError):
            PARA(nrh=64, num_banks=1, probability=1.5)

    def test_lower_nrh_queues_more_refreshes(self):
        low = PARA(nrh=32, num_banks=1, seed=1)
        high = PARA(nrh=2048, num_banks=1, seed=1)
        for cycle in range(2000):
            low.on_activate(0, cycle, cycle)
            high.on_activate(0, cycle, cycle)
        assert low.total_pending_rows() > high.total_pending_rows()
