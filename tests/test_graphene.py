"""Tests for Graphene (Misra-Gries tracking)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graphene import (
    Graphene,
    MisraGriesTable,
    graphene_table_entries,
    graphene_trigger_threshold,
)


class TestMisraGriesTable:
    def test_tracked_rows_count_exactly(self):
        table = MisraGriesTable(4)
        for _ in range(5):
            table.observe(1)
        assert table.entries[1].count == 5

    def test_spillover_increments_on_miss_when_full(self):
        table = MisraGriesTable(2)
        table.observe(1)
        table.observe(2)
        table.observe(3)
        assert table.spillover == 1

    def test_swap_replaces_minimum_entry(self):
        table = MisraGriesTable(2)
        for _ in range(5):
            table.observe(1)
        table.observe(2)
        # Row 3 arrives repeatedly; once the spillover catches the minimum
        # entry's count it takes its slot.
        for _ in range(3):
            table.observe(3)
        assert 1 in table.entries  # the heavy hitter is never evicted
        assert table.max_count() >= 5

    def test_reset(self):
        table = MisraGriesTable(2)
        table.observe(1)
        table.reset()
        assert not table.entries
        assert table.spillover == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MisraGriesTable(0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=1, max_size=400))
def test_misra_gries_undercount_bound(accesses):
    """Misra-Gries guarantee: estimate >= true count - spillover."""
    table = MisraGriesTable(4)
    true_counts = {}
    for row in accesses:
        table.observe(row)
        true_counts[row] = true_counts.get(row, 0) + 1
    for row, entry in table.entries.items():
        assert entry.count >= true_counts[row] - table.spillover
        assert entry.count <= true_counts[row] + table.spillover + 1


class TestGrapheneConfiguration:
    def test_threshold_is_half_nrh(self):
        assert graphene_trigger_threshold(1024) == 512
        assert graphene_trigger_threshold(20) == 10

    def test_table_grows_as_nrh_shrinks(self):
        window = 100_000
        assert graphene_table_entries(20, window) > graphene_table_entries(1024, window)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Graphene(nrh=1024, num_banks=0)


class TestGrapheneBehaviour:
    def test_refresh_queued_when_threshold_crossed(self):
        graphene = Graphene(nrh=8, num_banks=2, table_entries=8)
        threshold = graphene.trigger_threshold
        for cycle in range(threshold - 1):
            graphene.on_activate(0, 5, cycle)
        assert graphene.pending_refresh(0) is None
        graphene.on_activate(0, 5, threshold)
        refresh = graphene.pending_refresh(0)
        assert refresh is not None
        assert refresh.aggressor_row == 5
        assert refresh.num_rows == graphene.victim_rows_per_aggressor

    def test_refresh_triggers_again_after_another_threshold(self):
        graphene = Graphene(nrh=8, num_banks=1, table_entries=8)
        threshold = graphene.trigger_threshold
        for cycle in range(2 * threshold):
            graphene.on_activate(0, 5, cycle)
        assert graphene.total_pending_rows() == 2 * graphene.victim_rows_per_aggressor

    def test_banks_tracked_independently(self):
        graphene = Graphene(nrh=8, num_banks=2, table_entries=8)
        threshold = graphene.trigger_threshold
        for cycle in range(threshold):
            graphene.on_activate(1, 7, cycle)
        assert graphene.pending_refresh(0) is None
        assert graphene.pending_refresh(1) is not None

    def test_refresh_window_resets_tables(self):
        graphene = Graphene(nrh=8, num_banks=1, table_entries=4)
        graphene.on_activate(0, 1, 0)
        graphene.on_refresh_window(100)
        assert graphene.tables[0].entries == {}

    def test_storage_grows_as_nrh_shrinks(self):
        big = Graphene(nrh=20, num_banks=64).storage_overhead_bits(64, 131072)["cam_bits"]
        small = Graphene(nrh=1024, num_banks=64).storage_overhead_bits(64, 131072)["cam_bits"]
        assert big > 10 * small
