"""The committed tree is lint-clean: reprolint (and ruff, when present)
report nothing beyond the committed baseline.

This is the test-suite mirror of the CI lint gate: a change that
introduces a new finding fails here *locally*, before CI, with the same
exit-code contract.  Ruff is a CI-installed extra (the hermetic test
container does not ship it), so the ruff check skips when the binary is
absent rather than failing.
"""

from __future__ import annotations

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import manifest  # noqa: E402
from repro.lint.baseline import load_baseline, partition  # noqa: E402
from repro.lint.cli import main as lint_main  # noqa: E402
from repro.lint.framework import parse_project, run_rules  # noqa: E402
from repro.lint.rules import default_rules  # noqa: E402


class TestRepoIsLintClean:
    def test_no_new_findings_against_committed_baseline(self):
        project, parse_errors = parse_project(
            REPO_ROOT, manifest.DEFAULT_SCAN_PATHS
        )
        assert project.files, "default scan paths found no files"
        result = run_rules(project, default_rules(), parse_errors)
        baseline = load_baseline(REPO_ROOT / manifest.DEFAULT_BASELINE)
        split = partition(result.findings, baseline)
        assert split.new == [], "\n".join(f.render() for f in split.new)

    def test_no_stale_baseline_entries(self):
        """Fixed findings must be pruned from the baseline, not hoarded."""
        project, parse_errors = parse_project(
            REPO_ROOT, manifest.DEFAULT_SCAN_PATHS
        )
        result = run_rules(project, default_rules(), parse_errors)
        baseline = load_baseline(REPO_ROOT / manifest.DEFAULT_BASELINE)
        split = partition(result.findings, baseline)
        assert split.stale == [], [
            f"{e.rule} in {e.path}" for e in split.stale
        ]

    def test_cli_exit_code_is_zero(self, capsys):
        assert lint_main(["--root", str(REPO_ROOT)]) == 0
        capsys.readouterr()

    def test_json_report_is_well_formed(self, capsys):
        assert lint_main(
            ["--root", str(REPO_ROOT), "--format", "json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["summary"]["new"] == 0
        assert sorted(report["rules"]) == sorted(
            rule.name for rule in default_rules()
        )

    def test_every_baseline_entry_has_a_real_reason(self):
        # load_baseline already rejects placeholders; pin the stronger
        # property that reasons are substantive, not one-word stubs.
        baseline = load_baseline(REPO_ROOT / manifest.DEFAULT_BASELINE)
        for entry in baseline:
            assert len(entry.reason.split()) >= 5, (
                f"baseline entry {entry.rule} in {entry.path} needs a "
                f"written justification, not a stub: {entry.reason!r}"
            )


class TestRuff:
    """Ruff is pinned in pyproject and runs in CI; skip when not installed."""

    def test_ruff_check_is_clean(self):
        ruff = shutil.which("ruff")
        if ruff is None:
            pytest.skip("ruff is not installed (CI installs the lint extra)")
        completed = subprocess.run(
            [ruff, "check", "."],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
