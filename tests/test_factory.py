"""Tests for the mechanism factory."""

import pytest

from repro.core.chronus import Chronus, ChronusPB
from repro.core.factory import MECHANISM_NAMES, PRAC_PRFM_RFM_THRESHOLD, build_mechanism
from repro.core.graphene import Graphene
from repro.core.hydra import Hydra
from repro.core.para import PARA
from repro.core.prac import PRAC
from repro.core.prfm import PRFM


class TestBuildMechanism:
    @pytest.mark.parametrize("name", MECHANISM_NAMES)
    def test_every_name_builds(self, name):
        setup = build_mechanism(name, nrh=128, num_banks=8)
        assert setup.name == name
        assert isinstance(setup.act_energy_multiplier, float)

    def test_none_has_no_components(self):
        setup = build_mechanism("None", nrh=128, num_banks=8)
        assert setup.on_die is None and setup.controller is None
        assert not setup.use_prac_timings
        assert list(setup.mechanisms()) == []

    def test_prac_variants(self):
        for name, nref in (("PRAC-1", 1), ("PRAC-2", 2), ("PRAC-4", 4)):
            setup = build_mechanism(name, nrh=1024, num_banks=8)
            assert isinstance(setup.on_die, PRAC)
            assert setup.on_die.nref == nref
            assert setup.use_prac_timings

    def test_prac_prfm_composite(self):
        setup = build_mechanism("PRAC+PRFM", nrh=1024, num_banks=8)
        assert isinstance(setup.on_die, PRAC)
        assert isinstance(setup.controller, PRFM)
        assert setup.controller.rfm_threshold == PRAC_PRFM_RFM_THRESHOLD
        assert setup.use_prac_timings
        assert len(list(setup.mechanisms())) == 2

    def test_chronus_keeps_baseline_timings(self):
        setup = build_mechanism("Chronus", nrh=1024, num_banks=8)
        assert isinstance(setup.on_die, Chronus)
        assert not setup.use_prac_timings
        assert setup.act_energy_multiplier > 1.0

    def test_chronus_pb(self):
        setup = build_mechanism("Chronus-PB", nrh=1024, num_banks=8)
        assert isinstance(setup.on_die, ChronusPB)
        assert not setup.use_prac_timings

    def test_controller_side_mechanisms(self):
        for name, cls in (("Graphene", Graphene), ("Hydra", Hydra), ("PARA", PARA), ("PRFM", PRFM)):
            setup = build_mechanism(name, nrh=256, num_banks=8)
            assert isinstance(setup.controller, cls)
            assert setup.on_die is None
            assert not setup.use_prac_timings

    def test_insecure_configurations_flagged(self):
        setup = build_mechanism("PRAC-1", nrh=4, num_banks=8, allow_insecure=True)
        assert not setup.is_secure

    def test_insecure_raises_when_not_allowed(self):
        with pytest.raises(ValueError):
            build_mechanism("PRAC-1", nrh=4, num_banks=8, allow_insecure=False)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            build_mechanism("TRR", nrh=128, num_banks=8)

    def test_chronus_secure_at_all_evaluated_thresholds(self):
        for nrh in (1024, 512, 256, 128, 64, 32, 20):
            setup = build_mechanism("Chronus", nrh=nrh, num_banks=8)
            assert setup.is_secure
