"""Tests for the storage-overhead models (Fig. 11 / Fig. 13)."""

import pytest

from repro.analysis.storage import (
    DEFAULT_NRH_VALUES,
    FIG11_MECHANISMS,
    FIG13_MECHANISMS,
    storage_overhead_bytes,
    storage_overhead_table,
)


class TestStorageOverheads:
    def test_chronus_equals_prac_dram_storage(self):
        """Fig. 11: Chronus and PRAC store the same per-row counters in DRAM."""
        for nrh in (1024, 64, 20):
            chronus = storage_overhead_bytes("Chronus", nrh)
            prac = storage_overhead_bytes("PRAC-4", nrh)
            assert chronus.dram_bytes == prac.dram_bytes
            assert chronus.cpu_bytes == prac.cpu_bytes == 0

    def test_prfm_is_smallest_and_in_cpu(self):
        for nrh in (1024, 20):
            prfm = storage_overhead_bytes("PRFM", nrh)
            others = [storage_overhead_bytes(m, nrh) for m in ("Chronus", "Graphene", "Hydra")]
            assert all(prfm.total_bytes < other.total_bytes for other in others)
            assert prfm.dram_bytes == 0

    def test_prfm_matches_paper_annotations(self):
        """Fig. 11 annotates PRFM at 88 B (N_RH = 1K) down to 48 B (N_RH = 20)."""
        assert storage_overhead_bytes("PRFM", 1024).total_bytes == 88
        assert storage_overhead_bytes("PRFM", 20).total_bytes == 48

    def test_chronus_storage_shrinks_by_about_half_from_1k_to_20(self):
        """The paper reports a 45.5% reduction (11-bit to 6-bit counters)."""
        at_1k = storage_overhead_bytes("Chronus", 1024).dram_bytes
        at_20 = storage_overhead_bytes("Chronus", 20).dram_bytes
        reduction = 1.0 - at_20 / at_1k
        assert reduction == pytest.approx(0.455, abs=0.02)

    def test_graphene_storage_explodes_at_low_nrh(self):
        """The paper reports a ~50x growth from N_RH = 1K to 20."""
        growth = (
            storage_overhead_bytes("Graphene", 20).cpu_bytes
            / storage_overhead_bytes("Graphene", 1024).cpu_bytes
        )
        assert 30 < growth < 80

    def test_abacus_smaller_than_graphene(self):
        """Fig. 13: ABACuS needs far less CPU storage than Graphene."""
        for nrh in (1024, 20):
            abacus = storage_overhead_bytes("ABACuS", nrh)
            graphene = storage_overhead_bytes("Graphene", nrh)
            assert abacus.cpu_bytes * 5 < graphene.cpu_bytes

    def test_abacus_grows_as_nrh_shrinks(self):
        assert (
            storage_overhead_bytes("ABACuS", 20).cpu_bytes
            > storage_overhead_bytes("ABACuS", 1024).cpu_bytes * 10
        )

    def test_hydra_splits_between_dram_and_cpu(self):
        hydra = storage_overhead_bytes("Hydra", 128)
        assert hydra.dram_bytes > 0
        assert hydra.cpu_bytes > 0

    def test_table_covers_all_requested_points(self):
        table = storage_overhead_table(FIG11_MECHANISMS, DEFAULT_NRH_VALUES)
        assert len(table) == len(FIG11_MECHANISMS) * len(DEFAULT_NRH_VALUES)
        fig13 = storage_overhead_table(FIG13_MECHANISMS, (1024, 20))
        assert {entry.mechanism for entry in fig13} == set(FIG13_MECHANISMS)

    def test_total_mib_property(self):
        entry = storage_overhead_bytes("Chronus", 1024)
        assert entry.total_mib == pytest.approx(entry.total_bytes / (1024 * 1024))
