"""Tests for the DRAM organization model."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.organization import (
    PAPER_ORGANIZATION,
    STORAGE_STUDY_ORGANIZATION,
    DramAddress,
    DramOrganization,
)


class TestPaperOrganization:
    def test_total_banks_is_64(self):
        assert PAPER_ORGANIZATION.total_banks == 64

    def test_banks_per_rank(self):
        assert PAPER_ORGANIZATION.banks_per_rank == 32

    def test_rows_per_bank(self):
        assert PAPER_ORGANIZATION.rows == 65536

    def test_capacity_positive(self):
        assert PAPER_ORGANIZATION.capacity_bytes > 0

    def test_storage_study_uses_128k_rows(self):
        assert STORAGE_STUDY_ORGANIZATION.rows == 131072
        assert STORAGE_STUDY_ORGANIZATION.total_banks == 64


class TestFlatBankIndex:
    def test_zero(self):
        assert PAPER_ORGANIZATION.flat_bank_index(0, 0, 0) == 0

    def test_max(self):
        org = PAPER_ORGANIZATION
        assert org.flat_bank_index(1, 7, 3) == org.total_banks - 1

    def test_roundtrip_all(self):
        org = PAPER_ORGANIZATION
        for flat in range(org.total_banks):
            rank, bankgroup, bank = org.unflatten_bank_index(flat)
            assert org.flat_bank_index(rank, bankgroup, bank) == flat

    def test_out_of_range_rank(self):
        with pytest.raises(ValueError):
            PAPER_ORGANIZATION.flat_bank_index(2, 0, 0)

    def test_out_of_range_flat(self):
        with pytest.raises(ValueError):
            PAPER_ORGANIZATION.unflatten_bank_index(64)


class TestAddressValidation:
    def test_valid_address(self):
        addr = DramAddress(channel=0, rank=1, bankgroup=7, bank=3, row=1000, column=5)
        PAPER_ORGANIZATION.validate_address(addr)

    def test_invalid_row(self):
        addr = DramAddress(channel=0, rank=0, bankgroup=0, bank=0, row=70000, column=0)
        with pytest.raises(ValueError):
            PAPER_ORGANIZATION.validate_address(addr)

    def test_invalid_column(self):
        addr = DramAddress(channel=0, rank=0, bankgroup=0, bank=0, row=0, column=1000)
        with pytest.raises(ValueError):
            PAPER_ORGANIZATION.validate_address(addr)

    def test_flat_bank_of_address(self):
        addr = DramAddress(channel=0, rank=1, bankgroup=0, bank=0, row=0, column=0)
        assert addr.flat_bank(PAPER_ORGANIZATION) == 32


@given(
    rank=st.integers(min_value=0, max_value=1),
    bankgroup=st.integers(min_value=0, max_value=7),
    bank=st.integers(min_value=0, max_value=3),
)
def test_flat_bank_index_bijective(rank, bankgroup, bank):
    org = PAPER_ORGANIZATION
    flat = org.flat_bank_index(rank, bankgroup, bank)
    assert 0 <= flat < org.total_banks
    assert org.unflatten_bank_index(flat) == (rank, bankgroup, bank)


@given(
    ranks=st.integers(min_value=1, max_value=4),
    bankgroups=st.integers(min_value=1, max_value=8),
    banks=st.integers(min_value=1, max_value=4),
)
def test_total_banks_consistent(ranks, bankgroups, banks):
    org = DramOrganization(ranks=ranks, bankgroups=bankgroups, banks_per_group=banks)
    assert org.total_banks == ranks * bankgroups * banks
    assert org.total_rows == org.total_banks * org.rows
