"""Simulation service: protocol, admission, streaming and edge cases.

The integration tests run a real :class:`SimulationService` on an ephemeral
port (event loop on a background thread) and talk to it through the real
blocking :class:`ServiceClient` -- sockets, HTTP parsing, WebSocket framing
and the executor thread are all exercised exactly as in production.

Controllable timing (submit-while-full, cancel mid-run, disconnect
mid-stream) uses a :class:`BlockingEngine` -- a real ``SweepEngine`` whose
``run_jobs`` parks on an event until the test releases it, honouring the
cancellation token the way the real engine does between jobs.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.experiments.sweep import (
    RunReport,
    SweepCancelled,
    SweepEngine,
)
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import (
    ClientCapExceeded,
    FairQueue,
    JobRecord,
    QueueFull,
    RateLimited,
    TokenBucket,
)
from repro.service.server import SimulationService
from repro.service.specs import SpecError, parse_submission

TINY_SWEEP = {
    "mechanisms": ["Chronus"],
    "nrh": [64],
    "num_mixes": 1,
    "accesses": 200,
}


# --------------------------------------------------------------------------- #
# Protocol layer (sans-I/O, no sockets)
# --------------------------------------------------------------------------- #

class TestWebSocketCodec:
    def test_accept_key_matches_rfc6455_example(self):
        # The worked example from RFC 6455 §1.3.
        key = "dGhlIHNhbXBsZSBub25jZQ=="
        assert protocol.websocket_accept_key(key) == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    @pytest.mark.parametrize("mask", [False, True])
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536])
    def test_frame_roundtrip_across_length_encodings(self, mask, size):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        frame = protocol.encode_frame(payload, protocol.OP_BINARY, mask=mask)
        decoded = protocol.decode_frame(frame)
        assert decoded is not None
        opcode, out, consumed = decoded
        assert (opcode, out, consumed) == (protocol.OP_BINARY, payload, len(frame))

    def test_partial_frame_returns_none(self):
        frame = protocol.encode_frame(b"hello world", protocol.OP_TEXT)
        for cut in range(len(frame)):
            assert protocol.decode_frame(frame[:cut]) is None

    def test_two_frames_in_one_buffer_decode_sequentially(self):
        first = protocol.encode_frame(b"one", protocol.OP_TEXT)
        second = protocol.encode_frame(b"two", protocol.OP_TEXT)
        opcode, payload, consumed = protocol.decode_frame(first + second)
        assert payload == b"one"
        opcode, payload, _ = protocol.decode_frame((first + second)[consumed:])
        assert payload == b"two"

    def test_fragmented_frames_are_rejected(self):
        unfinished = bytes([0x01, 0x03]) + b"abc"  # FIN=0, text
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(unfinished)

    def test_masked_frame_differs_on_the_wire_but_roundtrips(self):
        masked = protocol.encode_frame(b"secret", mask=True)
        assert b"secret" not in masked
        _, payload, _ = protocol.decode_frame(masked)
        assert payload == b"secret"


# --------------------------------------------------------------------------- #
# Submission validation
# --------------------------------------------------------------------------- #

class TestParseSubmission:
    def submission(self, **overrides):
        body = {"kind": "sweep", "client": "alice", "spec": dict(TINY_SWEEP)}
        body.update(overrides)
        return body

    def test_valid_sweep_expands_jobs_and_echoes_canonical_spec(self):
        submission = parse_submission(self.submission())
        assert submission.kind == "sweep"
        assert submission.client == "alice"
        assert len(submission.jobs) > 0
        spec = submission.payload["spec"]
        assert spec["mechanisms"] == ["Chronus"]
        assert spec["accesses"] == 200
        # Defaults are resolved into the echo.
        assert spec["include_alone"] is True

    def test_valid_attack_search(self):
        submission = parse_submission({
            "kind": "attack_search", "client": "red",
            "spec": {"mechanism": "Chronus", "nrh": [8, 4], "pattern": "single_sided"},
        })
        assert submission.kind == "attack_search"
        assert len(submission.jobs) == 2
        assert [job.config.nrh for job in submission.jobs] == [4, 8]
        assert all(job.attack is not None for job in submission.jobs)

    @pytest.mark.parametrize("body", [
        "just a string",
        ["a", "list"],
        {"kind": "sweep", "spec": TINY_SWEEP, "surprise": 1},
        {"kind": "teapot", "spec": TINY_SWEEP},
        {"kind": "sweep"},
        {"kind": "sweep", "spec": "not a dict"},
        {"kind": "sweep", "priority": "high", "spec": TINY_SWEEP},
        {"kind": "sweep", "priority": 99, "spec": TINY_SWEEP},
        {"kind": "sweep", "client": "../../etc", "spec": TINY_SWEEP},
    ])
    def test_malformed_top_level_is_rejected(self, body):
        with pytest.raises(SpecError):
            parse_submission(body)

    @pytest.mark.parametrize("mutation", [
        {"mechanisms": ["NotAMechanism"]},
        {"mechanisms": []},
        {"mechanisms": "Chronus"},
        {"nrh": [0]},
        {"nrh": [True]},
        {"accesses": -5},
        {"accesses": True},
        {"accesses": 10**9},
        {"num_mixes": 0},
        {"mix_types": ["imaginary"]},
        {"channels": 9},
        {"include_alone": 1},
        {"__class__": "exploit"},
        {"base_config": {"nrh": 1}},   # no field injection past the whitelist
        {"workload_name": "x"},
    ])
    def test_malformed_sweep_spec_is_rejected(self, mutation):
        spec = dict(TINY_SWEEP)
        spec.update(mutation)
        with pytest.raises(SpecError):
            parse_submission({"kind": "sweep", "spec": spec})

    @pytest.mark.parametrize("mutation", [
        {"mechanism": "Nope"},
        {"pattern": "not_a_pattern"},
        {"params": {"num_aggressors": "many"}},
        {"params": {"not_a_param": 3}},
        {"channel": 1},                 # out of range for channels=1
        {"attack": {"pattern": "wave"}},
    ])
    def test_malformed_attack_spec_is_rejected(self, mutation):
        spec = {"mechanism": "Chronus", "nrh": [8], "pattern": "single_sided"}
        spec.update(mutation)
        with pytest.raises(SpecError):
            parse_submission({"kind": "attack_search", "spec": spec})

    def test_explicit_mixes_are_accepted(self):
        spec = dict(TINY_SWEEP)
        del spec["num_mixes"]
        spec["mixes"] = [["blender", "gcc"]]
        submission = parse_submission({"kind": "sweep", "spec": spec})
        assert any(job.config.num_cores == 2 for job in submission.jobs)

    def test_oversized_expansion_is_rejected(self):
        spec = {
            "mechanisms": list(dict.fromkeys(["Chronus", "PRAC-4", "Graphene",
                                              "Hydra", "PARA", "PRFM", "ABACuS"])),
            "nrh": list(range(100, 164)),
            "num_mixes": 8,
            "accesses": 100,
        }
        with pytest.raises(SpecError, match="split it"):
            parse_submission({"kind": "sweep", "spec": spec})


# --------------------------------------------------------------------------- #
# Admission queue
# --------------------------------------------------------------------------- #

def make_record(client="c", priority=0, job_id=None):
    submission = parse_submission(
        {"kind": "sweep", "client": client, "priority": priority,
         "spec": dict(TINY_SWEEP)}
    )
    return JobRecord(
        id=job_id or f"{client}-{time.monotonic_ns()}",
        client=client, kind=submission.kind, payload=submission.payload,
        jobs=submission.jobs, priority=priority,
    )


class TestFairQueue:
    def test_round_robin_across_clients(self):
        queue = FairQueue(max_depth=10, per_client_active=10)
        a1, a2 = make_record("alice"), make_record("alice")
        b1 = make_record("bob")
        for record in (a1, a2, b1):
            queue.submit(record)
        # Alice submitted first, but after serving her once the rotation
        # moves on to Bob before her second job.
        assert queue.next_job() is a1
        assert queue.next_job() is b1
        assert queue.next_job() is a2
        assert queue.next_job() is None

    def test_priority_beats_rotation(self):
        queue = FairQueue(max_depth=10, per_client_active=10)
        batch = make_record("alice", priority=5)
        urgent = make_record("bob", priority=0)
        queue.submit(batch)
        queue.submit(urgent)
        assert queue.next_job() is urgent
        assert queue.next_job() is batch

    def test_queue_full_raises_with_retry_hint(self):
        queue = FairQueue(max_depth=1, per_client_active=10)
        queue.submit(make_record("alice"))
        with pytest.raises(QueueFull) as excinfo:
            queue.submit(make_record("bob"))
        assert excinfo.value.retry_after > 0

    def test_per_client_cap_counts_running_jobs(self):
        queue = FairQueue(max_depth=10, per_client_active=1)
        first = make_record("alice")
        queue.submit(first)
        assert queue.next_job() is first  # running now
        with pytest.raises(ClientCapExceeded):
            queue.submit(make_record("alice"))
        queue.submit(make_record("bob"))  # other clients are unaffected
        queue.release(first)
        queue.submit(make_record("alice"))  # slot freed

    def test_rate_limit_with_exact_retry_after(self):
        queue = FairQueue(max_depth=100, per_client_active=100, rate=0.5, burst=1)
        queue.submit(make_record("alice"))
        with pytest.raises(RateLimited) as excinfo:
            queue.submit(make_record("alice"))
        assert 0 < excinfo.value.retry_after <= 2.0

    def test_remove_only_finds_queued_jobs(self):
        queue = FairQueue()
        record = make_record("alice")
        queue.submit(record)
        assert queue.remove(record.id) is record
        assert queue.remove(record.id) is None

    def test_token_bucket_refills(self):
        bucket = TokenBucket(rate=1000.0, burst=1)
        assert bucket.try_consume() is None
        wait = bucket.try_consume()
        assert wait is not None
        time.sleep(wait + 0.005)
        assert bucket.try_consume() is None


# --------------------------------------------------------------------------- #
# Integration harness
# --------------------------------------------------------------------------- #

class BlockingEngine(SweepEngine):
    """A real engine that parks until released (cancellation-aware)."""

    def __init__(self):
        super().__init__(workers=0)
        self.release = threading.Event()

    def run_jobs(self, jobs, batch=None, progress=None, cancel=None):
        while not self.release.wait(0.005):
            if cancel is not None and cancel.cancelled:
                raise SweepCancelled(RunReport())
        return super().run_jobs(jobs, batch=batch, progress=progress, cancel=cancel)


class ServiceHarness:
    """One live service on an ephemeral port, loop on a daemon thread."""

    def __init__(self, engine=None, auth_key=None, **queue_options):
        self.engine = engine if engine is not None else SweepEngine(workers=0)
        self.auth_key = auth_key
        self.service = SimulationService(
            engine=self.engine, queue=FairQueue(**queue_options),
            auth_key=auth_key,
        )
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.service.start(port=0))
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert started.wait(10), "service did not start"

    def client(self, client_id="tester", auth_key=None):
        return ServiceClient(
            port=self.service.port, client_id=client_id, timeout=30,
            auth_key=auth_key,
        )

    def close(self):
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def harness():
    instance = ServiceHarness()
    yield instance
    instance.close()


@pytest.fixture
def blocking_harness():
    engine = BlockingEngine()
    instance = ServiceHarness(engine=engine, max_depth=1, per_client_active=10)
    yield instance, engine
    engine.release.set()
    instance.close()


def wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {message}")


# --------------------------------------------------------------------------- #
# HTTP surface
# --------------------------------------------------------------------------- #

class TestHttpSurface:
    def test_health_and_stats(self, harness):
        client = harness.client()
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == 1
        stats = client.stats()
        assert stats["queue"]["depth"] == 0
        assert "cache" in stats["engine"]

    def test_unknown_route_is_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client()._request("GET", "/not/a/route")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client()._request("GET", "/jobs")
        assert excinfo.value.status == 405

    def test_unknown_job_is_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client().status("doesnotexist")
        assert excinfo.value.status == 404

    def test_non_json_body_is_400(self, harness):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", harness.service.port, timeout=10
        )
        try:
            connection.request("POST", "/jobs", body=b"{not json",
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["reason"] == "bad_json"
        finally:
            connection.close()

    def test_malformed_spec_is_400_with_reason(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client().submit({"mechanisms": ["NotReal"], "nrh": [8]})
        assert excinfo.value.status == 400
        assert excinfo.value.reason == "bad_spec"

    def test_injection_style_fields_are_rejected(self, harness):
        spec = dict(TINY_SWEEP)
        spec["__init__"] = {"evil": True}
        with pytest.raises(ServiceError) as excinfo:
            harness.client().submit(spec)
        assert excinfo.value.status == 400

    def test_websocket_route_without_upgrade_is_426(self, harness):
        client = harness.client()
        response = client.submit(dict(TINY_SWEEP))
        client.wait(str(response["job"]), timeout=60)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", f"/ws/jobs/{response['job']}")
        assert excinfo.value.status == 426


# --------------------------------------------------------------------------- #
# Jobs end to end
# --------------------------------------------------------------------------- #

class TestJobLifecycle:
    def test_sweep_job_streams_progress_and_finishes(self, harness):
        client = harness.client("alice")
        response = client.submit(dict(TINY_SWEEP))
        assert response["state"] == "queued"
        events = list(client.watch(str(response["job"]), timeout=60))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "state"                      # queued
        assert "plan" in kinds
        assert "job" in kinds                           # per-job progress
        assert "report" in kinds
        final = events[-1]
        assert (final["event"], final["state"]) == ("state", "done")
        report = final["result"]["report"]
        assert report["executed_jobs"] == report["total_jobs"] > 0
        assert report["engine"] == "serial"
        assert all(summary["workload"] for summary in final["result"]["results"])
        # Sequence numbers are gapless: the replay missed nothing.
        assert [event["seq"] for event in events] == list(range(len(events)))

    def test_duplicate_submission_is_served_from_cache(self, harness):
        client = harness.client("alice")
        first = client.submit(dict(TINY_SWEEP))
        client.wait(str(first["job"]), timeout=60)
        executed_before = harness.engine.executed_jobs
        second = client.submit(dict(TINY_SWEEP))
        assert second["cached_jobs"] == second["num_jobs"]  # visible at admission
        final = client.wait(str(second["job"]), timeout=60)
        report = final["result"]["report"]
        assert report["engine"] == "cached"
        assert report["cached_jobs"] == report["total_jobs"]
        assert report["executed_jobs"] == 0
        assert report["cache_hit_rate"] == 1.0
        assert harness.engine.executed_jobs == executed_before

    def test_attack_search_job_kind(self, harness):
        client = harness.client("red")
        response = client.submit(
            {"mechanism": "Chronus", "nrh": [64], "pattern": "single_sided"},
            kind="attack_search",
        )
        final = client.wait(str(response["job"]), timeout=120)
        assert final["state"] == "done"
        assert final["result"]["results"][0]["nrh"] == 64

    def test_status_snapshot_and_full_event_log(self, harness):
        client = harness.client()
        response = client.submit(dict(TINY_SWEEP))
        client.wait(str(response["job"]), timeout=60)
        snapshot = client.status(str(response["job"]))
        assert snapshot["state"] == "done"
        assert "event_log" not in snapshot
        full = client.status(str(response["job"]), full=True)
        assert len(full["event_log"]) == full["events"] > 0

    def test_late_subscriber_replays_the_full_history(self, harness):
        client = harness.client()
        response = client.submit(dict(TINY_SWEEP))
        client.wait(str(response["job"]), timeout=60)
        # Job already finished; a fresh watch still sees everything.
        events = list(client.watch(str(response["job"]), timeout=30))
        assert events[0]["state"] == "queued"
        assert events[-1]["state"] == "done"


# --------------------------------------------------------------------------- #
# Back-pressure, caps and cancellation
# --------------------------------------------------------------------------- #

class TestBackpressure:
    def test_submit_while_full_gets_429_with_retry_after(self, blocking_harness):
        harness, engine = blocking_harness  # queue depth 1
        client = harness.client("alice")
        running = client.submit(dict(TINY_SWEEP))
        wait_for(
            lambda: harness.service.jobs[running["job"]].state == "running",
            message="first job running",
        )
        queued = client.submit(dict(TINY_SWEEP))   # fills the bounded queue
        with pytest.raises(ServiceError) as excinfo:
            client.submit(dict(TINY_SWEEP))
        assert excinfo.value.status == 429
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.retry_after >= 1
        engine.release.set()
        assert client.wait(str(running["job"]), timeout=60)["state"] == "done"
        assert client.wait(str(queued["job"]), timeout=60)["state"] == "done"

    def test_per_client_cap_is_per_client(self):
        harness = ServiceHarness(
            engine=BlockingEngine(), max_depth=10, per_client_active=1
        )
        try:
            alice, bob = harness.client("alice"), harness.client("bob")
            first = alice.submit(dict(TINY_SWEEP))
            with pytest.raises(ServiceError) as excinfo:
                alice.submit(dict(TINY_SWEEP))
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "client_cap"
            bob.submit(dict(TINY_SWEEP))  # bob is not capped by alice's job
            harness.engine.release.set()
            alice.wait(str(first["job"]), timeout=60)
        finally:
            harness.engine.release.set()
            harness.close()

    def test_rate_limited_submission_gets_429(self):
        harness = ServiceHarness(rate=0.001, burst=1)
        try:
            client = harness.client("chatty")
            client.submit(dict(TINY_SWEEP))
            with pytest.raises(ServiceError) as excinfo:
                client.submit(dict(TINY_SWEEP))
            assert excinfo.value.status == 429
            assert excinfo.value.reason == "rate_limited"
        finally:
            harness.close()


class TestCancellation:
    def test_cancel_queued_job(self, blocking_harness):
        harness, engine = blocking_harness
        client = harness.client("alice")
        running = client.submit(dict(TINY_SWEEP))
        wait_for(
            lambda: harness.service.jobs[running["job"]].state == "running",
            message="first job running",
        )
        queued = client.submit(dict(TINY_SWEEP))
        cancelled = client.cancel(str(queued["job"]))
        assert cancelled["state"] == "cancelled"
        engine.release.set()
        assert client.wait(str(running["job"]), timeout=60)["state"] == "done"
        # The cancelled job never ran.
        assert harness.service.jobs[queued["job"]].started_at is None

    def test_cancel_running_job_mid_run(self, blocking_harness):
        harness, engine = blocking_harness
        client = harness.client("alice")
        response = client.submit(dict(TINY_SWEEP))
        wait_for(
            lambda: harness.service.jobs[response["job"]].state == "running",
            message="job running",
        )
        client.cancel(str(response["job"]))  # engine blocked: cancel mid-run
        final = client.wait(str(response["job"]), timeout=60)
        assert final["state"] == "cancelled"

    def test_cancel_is_idempotent_after_completion(self, harness):
        client = harness.client()
        response = client.submit(dict(TINY_SWEEP))
        client.wait(str(response["job"]), timeout=60)
        assert client.cancel(str(response["job"]))["state"] == "done"


class TestDisconnect:
    def test_client_disconnect_mid_stream_cleans_subscription(self, blocking_harness):
        harness, engine = blocking_harness
        client = harness.client("alice")
        response = client.submit(dict(TINY_SWEEP))
        job_id = str(response["job"])
        watcher = client.watch(job_id, timeout=30)
        assert next(watcher)["state"] == "queued"
        wait_for(
            lambda: harness.service.manager.subscriber_count(job_id) == 1,
            message="subscription registered",
        )
        watcher.close()  # abrupt client exit mid-stream
        wait_for(
            lambda: harness.service.manager.subscriber_count(job_id) == 0,
            message="subscription cleaned up",
        )
        # The job is unaffected by the lost subscriber.
        engine.release.set()
        assert client.wait(job_id, timeout=60)["state"] == "done"


# --------------------------------------------------------------------------- #
# The acceptance scenario: two concurrent clients, overlap computed once
# --------------------------------------------------------------------------- #

class TestConcurrentClients:
    def test_overlapping_sweeps_computed_once_with_live_progress(self, harness):
        spec = {"mechanisms": ["Chronus"], "nrh": [32], "num_mixes": 1,
                "accesses": 150}
        unique_jobs = len(parse_submission({"kind": "sweep", "spec": spec}).jobs)
        outcomes = {}

        def run_client(name):
            client = harness.client(name)
            response = client.submit(dict(spec))
            events = list(client.watch(str(response["job"]), timeout=120))
            outcomes[name] = events

        threads = [
            threading.Thread(target=run_client, args=(name,))
            for name in ("alice", "bob")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()

        finals = {name: events[-1] for name, events in outcomes.items()}
        for name, final in finals.items():
            assert final["state"] == "done", f"{name} did not finish"
            assert final["result"]["results"], f"{name} got no results"
        # Both watched live progress (more than just the terminal state).
        for events in outcomes.values():
            assert {"plan", "report"} <= {event["event"] for event in events}
        # The overlap was computed exactly once; the second job's streamed
        # report shows the cache serving it.
        assert harness.engine.executed_jobs == unique_jobs
        reports = sorted(
            (final["result"]["report"] for final in finals.values()),
            key=lambda report: report["executed_jobs"],
        )
        assert reports[0]["executed_jobs"] == 0
        assert reports[0]["cache_hit_rate"] == 1.0
        assert reports[1]["executed_jobs"] == unique_jobs
        # Both clients received identical result summaries.
        summaries = [
            sorted(final["result"]["results"], key=lambda row: row["key"])
            for final in finals.values()
        ]
        assert summaries[0] == summaries[1]

    def test_cancelling_one_client_does_not_disturb_the_other(self, harness):
        alice, bob = harness.client("alice"), harness.client("bob")
        big = dict(TINY_SWEEP, accesses=5000, nrh=[64, 128])
        small = dict(TINY_SWEEP, accesses=120, nrh=[16])
        first = alice.submit(big)
        second = bob.submit(small)
        alice.cancel(str(first["job"]))
        final_bob = bob.wait(str(second["job"]), timeout=120)
        assert final_bob["state"] == "done"
        final_alice = alice.status(str(first["job"]))
        assert final_alice["state"] in ("cancelled", "done")


# --------------------------------------------------------------------------- #
# Authentication + signed artifacts
# --------------------------------------------------------------------------- #

@pytest.fixture
def auth_harness():
    from repro.artifacts import generate_key

    key = generate_key()
    instance = ServiceHarness(auth_key=key)
    yield instance, key
    instance.close()


class TestAuthentication:
    """Every route except /healthz requires X-Auth-Token = HMAC(key, client)
    -- enforced over real sockets, HTTP and WebSocket alike."""

    def test_healthz_stays_open_without_a_token(self, auth_harness):
        harness, _key = auth_harness
        health = harness.client().health()  # no auth_key on this client
        assert health["status"] == "ok"

    def test_request_without_token_is_401(self, auth_harness):
        harness, _key = auth_harness
        with pytest.raises(ServiceError) as excinfo:
            harness.client().stats()
        assert excinfo.value.status == 401
        assert excinfo.value.reason == "unauthorized"

    def test_submit_without_token_is_401(self, auth_harness):
        harness, _key = auth_harness
        with pytest.raises(ServiceError) as excinfo:
            harness.client().submit(dict(TINY_SWEEP))
        assert excinfo.value.status == 401

    def test_token_from_wrong_key_is_401(self, auth_harness):
        from repro.artifacts import generate_key

        harness, _key = auth_harness
        with pytest.raises(ServiceError) as excinfo:
            harness.client(auth_key=generate_key()).stats()
        assert excinfo.value.status == 401

    def test_token_for_other_client_is_401(self, auth_harness):
        from repro.artifacts.integrity import auth_token

        harness, key = auth_harness
        client = harness.client("mallory")
        # A valid token, but minted for a different client id.
        client._auth_token = auth_token(key, "alice")
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.status == 401

    def test_authenticated_job_runs_end_to_end(self, auth_harness):
        harness, key = auth_harness
        client = harness.client(auth_key=key)
        response = client.submit(dict(TINY_SWEEP))
        final = client.wait(str(response["job"]), timeout=120)
        assert final["state"] == "done"

    def test_websocket_watch_without_token_is_401(self, auth_harness):
        harness, key = auth_harness
        job = harness.client(auth_key=key).submit(dict(TINY_SWEEP))
        with pytest.raises(ServiceError) as excinfo:
            list(harness.client().watch(str(job["job"]), timeout=10))
        assert excinfo.value.status == 401

    def test_body_client_cannot_spoof_the_authenticated_identity(
        self, auth_harness
    ):
        harness, key = auth_harness
        alice = harness.client("alice", auth_key=key)
        response = alice._request("POST", "/jobs", body={
            "kind": "sweep",
            "client": "bob",  # spoof attempt: bill bob's quota
            "spec": dict(TINY_SWEEP),
        })
        status = alice.status(str(response["job"]))
        assert status["client"] == "alice"


class TestArtifactEndpoint:
    def test_done_job_serves_a_signed_verifiable_artifact(self, auth_harness):
        from repro.artifacts import ArtifactReader

        harness, key = auth_harness
        client = harness.client(auth_key=key)
        response = client.submit(dict(TINY_SWEEP))
        job_id = str(response["job"])
        client.wait(job_id, timeout=120)
        blob = client.artifact(job_id)
        reader = ArtifactReader(blob, key=key)  # full verify incl. HMAC
        assert reader.signed and reader.signature_verified
        assert reader.meta["job_id"] == job_id
        assert reader.meta["client"] == "tester"
        jobs = reader.records_of_kind("job")
        assert jobs, "artifact carries no job records"
        for record in jobs:
            assert record.payload["result"]["cycles"] > 0
        assert reader.records_of_kind("report")

    def test_artifact_without_auth_key_is_unsigned(self, harness):
        from repro.artifacts import ArtifactReader

        client = harness.client()
        response = client.submit(dict(TINY_SWEEP))
        job_id = str(response["job"])
        client.wait(job_id, timeout=120)
        reader = ArtifactReader(client.artifact(job_id))
        assert reader.signed is False
        assert reader.record_count > 0

    def test_unfinished_job_artifact_is_409(self, blocking_harness):
        harness, engine = blocking_harness
        client = harness.client()
        response = client.submit(dict(TINY_SWEEP))
        with pytest.raises(ServiceError) as excinfo:
            client.artifact(str(response["job"]))
        assert excinfo.value.status == 409
        assert excinfo.value.reason == "not_done"
        engine.release.set()

    def test_artifact_without_token_is_401(self, auth_harness):
        harness, key = auth_harness
        client = harness.client(auth_key=key)
        response = client.submit(dict(TINY_SWEEP))
        job_id = str(response["job"])
        client.wait(job_id, timeout=120)
        with pytest.raises(ServiceError) as excinfo:
            harness.client().artifact(job_id)
        assert excinfo.value.status == 401
