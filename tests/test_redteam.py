"""Tests for the red-team search engine and the attack_search_job kind."""

import pytest

from repro.attacks.patterns import AttackSpec
from repro.attacks.redteam import (
    RedTeamEngine,
    analytical_min_secure_nrh,
)
from repro.analysis.security import (
    minimum_secure_nrh_chronus,
    minimum_secure_nrh_prac,
)
from repro.core.factory import MECHANISM_NAMES
from repro.experiments.cache import ResultCache
from repro.experiments.sweep import (
    SweepEngine,
    attack_search_job,
    execute_job,
    mechanism_job,
)
from repro.system.config import paper_system_config


#: Small, fast attack specs used throughout this module.
FAST_SPECS = (
    AttackSpec.create("single_sided", {"hammer_count": 250}),
    AttackSpec.create("rfm_dodge", {"rounds": 30}),
)


class TestAttackSearchJob:
    def test_job_shape(self):
        job = attack_search_job(
            paper_system_config(), "Chronus", 16, FAST_SPECS[0]
        )
        assert job.config.num_cores == 1
        assert job.config.attacker_cores == (0,)
        assert job.config.mechanism == "Chronus"
        assert job.config.nrh == 16
        assert job.attack == FAST_SPECS[0]

    def test_payload_includes_attack_spec(self):
        job = attack_search_job(paper_system_config(), "Chronus", 16, FAST_SPECS[0])
        payload = job.cache_payload()
        assert payload["attack"]["pattern"] == "single_sided"
        assert payload["attack"]["params"]["hammer_count"] == 250

    def test_non_attack_jobs_keep_their_cache_keys(self):
        """Adding the attack field must not invalidate existing caches."""
        job = mechanism_job(paper_system_config(), ("429.mcf",), "Chronus", 1024, 100)
        assert "attack" not in job.cache_payload()

    def test_different_specs_get_different_keys(self):
        base = paper_system_config()
        keys = {
            attack_search_job(base, "Chronus", 16, spec).key for spec in FAST_SPECS
        }
        assert len(keys) == len(FAST_SPECS)

    def test_attack_and_attack_accesses_exclusive(self):
        config = paper_system_config().with_overrides(
            num_cores=1, attacker_cores=(0,)
        )
        from repro.experiments.sweep import SimJob

        with pytest.raises(ValueError, match="mutually exclusive"):
            SimJob(
                config=config,
                applications=(),
                accesses_per_core=1,
                attack_accesses=100,
                attack=FAST_SPECS[0],
            )

    def test_execute_attaches_oracle_stats(self):
        job = attack_search_job(paper_system_config(), "None", 4, FAST_SPECS[0])
        result = execute_job(job)
        assert "oracle_escaped" in result.mitigation_stats
        assert result.mitigation_stats["oracle_max_disturbance"] > 0

    def test_execution_deterministic(self):
        job = attack_search_job(paper_system_config(), "PARA", 8, FAST_SPECS[0])
        first = execute_job(job)
        second = execute_job(job)
        assert first.mitigation_stats == second.mitigation_stats
        assert first.cycles == second.cycles


class TestAnalyticalBounds:
    def test_prac_bounds_monotone_in_nref(self):
        assert analytical_min_secure_nrh("PRAC-1") >= analytical_min_secure_nrh(
            "PRAC-2"
        ) >= analytical_min_secure_nrh("PRAC-4")

    def test_known_values(self):
        assert analytical_min_secure_nrh("PRAC-4") == minimum_secure_nrh_prac(4)
        assert analytical_min_secure_nrh("Chronus") == minimum_secure_nrh_chronus()
        # Anormal = 3 with the default parameters -> Chronus needs N_RH >= 5.
        assert analytical_min_secure_nrh("Chronus") == 5

    def test_unmodelled_mechanisms_return_none(self):
        for mechanism in ("None", "Graphene", "Hydra", "PARA", "ABACuS"):
            assert analytical_min_secure_nrh(mechanism) is None


class TestRedTeamSearch:
    def test_every_factory_mechanism_is_probeable(self):
        """nrh=1 is the degenerate floor: everything must report an escape."""
        redteam = RedTeamEngine()
        for mechanism in MECHANISM_NAMES:
            report = redteam.search(
                mechanism, [1], specs=FAST_SPECS[:1], refine=False
            )
            assert report.empirical_min_escaping_nrh == 1, mechanism

    def test_chronus_boundary_matches_analysis(self):
        redteam = RedTeamEngine()
        report = redteam.search("Chronus", [1, 2, 4, 8], specs=FAST_SPECS)
        # Below Anormal + 2 Chronus cannot be configured at all.
        assert report.empirical_max_escaping_nrh == 4
        assert report.empirical_min_secure_nrh == 5
        assert report.analytical_min_secure == 5
        assert report.disagreement is None

    def test_unconfigurable_points_do_not_simulate(self):
        redteam = RedTeamEngine()
        report = redteam.search("Chronus", [1, 2], specs=FAST_SPECS, refine=False)
        assert redteam.engine.executed_jobs == 0
        assert all(not probe.configured for probe in report.probes)

    def test_refinement_narrows_to_consecutive_thresholds(self):
        redteam = RedTeamEngine()
        report = redteam.search("Chronus", [1, 8], specs=FAST_SPECS, refine=True)
        assert report.refined
        assert (
            report.empirical_min_secure_nrh
            == report.empirical_max_escaping_nrh + 1
        )

    def test_search_is_deterministic(self):
        first = RedTeamEngine().search("PRFM", [1, 4], specs=FAST_SPECS)
        second = RedTeamEngine().search("PRFM", [1, 4], specs=FAST_SPECS)
        assert [
            (p.nrh, p.spec, p.escaped, p.max_disturbance) for p in first.probes
        ] == [(p.nrh, p.spec, p.escaped, p.max_disturbance) for p in second.probes]

    def test_second_search_served_from_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = RedTeamEngine(engine=SweepEngine(cache=ResultCache(cache_dir)))
        first.search("PRFM", [2, 4], specs=FAST_SPECS)
        assert first.engine.executed_jobs > 0

        second = RedTeamEngine(engine=SweepEngine(cache=ResultCache(cache_dir)))
        report = second.search("PRFM", [2, 4], specs=FAST_SPECS)
        assert second.engine.executed_jobs == 0
        assert second.engine.cache.hit_rate() == 1.0
        assert report.probes  # results still assembled from cached entries

    def test_parallel_equals_serial(self):
        serial = RedTeamEngine(engine=SweepEngine(workers=0))
        parallel = RedTeamEngine(engine=SweepEngine(workers=2))
        spec = FAST_SPECS[0]
        serial_report = serial.search("None", [2, 4], specs=[spec], refine=False)
        parallel_report = parallel.search("None", [2, 4], specs=[spec], refine=False)
        assert [
            (p.nrh, p.escaped, p.max_disturbance) for p in serial_report.probes
        ] == [(p.nrh, p.escaped, p.max_disturbance) for p in parallel_report.probes]

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            RedTeamEngine().search("RowPressGuard", [1])

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            RedTeamEngine().search("Chronus", [0, 4])
