"""Tests for the ``python -m repro attack`` CLI group."""


from repro.cli import main


class TestAttackList:
    def test_lists_every_pattern(self, capsys):
        assert main(["attack", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("single_sided", "wave", "rfm_dodge", "perf_attack"):
            assert name in out
        assert "7 registered attack patterns" in out


class TestAttackTrace:
    def test_prints_trace_summary(self, capsys):
        assert main(
            ["attack", "trace", "--pattern", "wave",
             "--set", "num_rows=8", "--set", "rounds=2"]
        ) == 0
        out = capsys.readouterr().out
        assert "wave(num_rows=8,rounds=2)" in out
        assert "32 accesses" in out  # 8 rows x 2 rounds x 2 (conflict interleave)

    def test_saves_trace_to_file(self, capsys, tmp_path):
        path = tmp_path / "attack.trace"
        assert main(
            ["attack", "trace", "--pattern", "many_sided",
             "--set", "rounds=2", "--out", str(path)]
        ) == 0
        assert "saved 16 accesses" in capsys.readouterr().out
        assert path.exists()

    def test_bad_override_reports_error(self, capsys):
        assert main(
            ["attack", "trace", "--pattern", "wave", "--set", "warp=9"]
        ) == 2
        assert "unknown parameter" in capsys.readouterr().err


class TestAttackSearch:
    def test_dry_run_lists_probes_without_simulating(self, capsys):
        assert main(
            ["attack", "search", "--mechanism", "Chronus", "--dry-run",
             "--no-cache", "--patterns", "single_sided", "--nrh", "8", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "dry run:" in out
        assert "to simulate" in out
        assert "single_sided vs Chronus@8" in out

    def test_dry_run_skips_unconfigurable_points(self, capsys):
        assert main(
            ["attack", "search", "--mechanism", "Chronus", "--dry-run",
             "--no-cache", "--patterns", "single_sided", "--nrh", "1", "2"]
        ) == 0
        assert "0 to simulate" in capsys.readouterr().out

    def test_search_reports_empirical_and_analytical_boundary(self, capsys):
        assert main(
            ["attack", "search", "--mechanism", "Chronus", "--no-cache",
             "--patterns", "single_sided", "--nrh", "1", "2", "4", "--no-refine"]
        ) == 0
        out = capsys.readouterr().out
        assert "empirical: min escaping N_RH = 1" in out
        assert "analytical: min secure N_RH = 5" in out
        assert "agreement: yes" in out

    def test_search_simulates_configured_points(self, capsys):
        assert main(
            ["attack", "search", "--mechanism", "None", "--no-cache",
             "--patterns", "single_sided", "--nrh", "2", "--no-refine"]
        ) == 0
        out = capsys.readouterr().out
        assert "escaped" in out
        assert "0 probes simulated" not in out


class TestAttackCompare:
    def test_compare_unconfigurable_grid_is_instant(self, capsys):
        assert main(
            ["attack", "compare", "--mechanisms", "Chronus", "--no-cache",
             "--patterns", "single_sided", "--nrh", "1", "2", "--no-refine"]
        ) == 0
        out = capsys.readouterr().out
        assert "Chronus" in out
        assert "0 probes simulated" in out
        assert "analytical_min_secure" in out
