"""Golden regression tests: pinned values for metrics and security analysis.

The sweep-engine refactor (and any future one) must be behaviour-preserving:
these tests pin the exact outputs of `repro.system.metrics` and
`repro.analysis.security` -- both on hand-checkable inputs and on tiny fixed
simulated traces -- so a change that silently shifts any evaluated number
fails loudly here.

The simulation goldens were recorded from the seed implementation (serial,
in-process).  If a deliberate simulator change invalidates them, re-record
the constants and bump `repro.experiments.cache.CACHE_SCHEMA_VERSION` so
stale on-disk cache entries are invalidated too.
"""

import pytest

from repro.analysis.security import (
    DEFAULT_PARAMETERS,
    att_required_entries,
    chronus_max_activations,
    chronus_secure_backoff_threshold,
    minimum_secure_nrh_prac,
    prac_max_activations,
    prac_security_sweep,
    prfm_max_activations,
    prfm_security_sweep,
    secure_prac_backoff_threshold,
    secure_prfm_threshold,
)
from repro.experiments.sweep import SweepEngine, alone_job, baseline_job, mechanism_job
from repro.system.config import paper_system_config
from repro.system.metrics import (
    geometric_mean,
    harmonic_speedup,
    max_slowdown,
    normalized_weighted_speedup,
    standard_error,
    weighted_speedup,
)


class TestMetricGoldens:
    """Hand-checkable inputs with exact expected values."""

    def test_weighted_speedup(self):
        # 2/4 + 3/6 = 1.0 exactly.
        assert weighted_speedup([2.0, 3.0], [4.0, 6.0]) == pytest.approx(1.0)
        # 1/2 + 3/4 = 1.25 exactly.
        assert weighted_speedup([1.0, 3.0], [2.0, 4.0]) == pytest.approx(1.25)

    def test_normalized_weighted_speedup(self):
        # mechanism WS = 1/2 + 1/2 = 1.0; baseline WS = 1 + 1 = 2.0.
        value = normalized_weighted_speedup([1.0, 2.0], [2.0, 4.0], [2.0, 4.0])
        assert value == pytest.approx(0.5)

    def test_max_slowdown(self):
        # Worst core: 1 - 1/4 = 0.75.
        assert max_slowdown([3.0, 1.0], [4.0, 4.0]) == pytest.approx(0.75)
        assert max_slowdown([4.0, 4.0], [4.0, 4.0]) == pytest.approx(0.0)

    def test_harmonic_speedup(self):
        # Per-core speedups 1/2 and 1/2 -> harmonic mean 0.5.
        assert harmonic_speedup([1.0, 2.0], [2.0, 4.0]) == pytest.approx(0.5)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_standard_error(self):
        # Values 1, 2, 3: sample stddev = 1, SE = 1/sqrt(3).
        assert standard_error([1.0, 2.0, 3.0]) == pytest.approx(0.5773502691896258)
        assert standard_error([5.0]) == 0.0


class TestSecurityGoldens:
    """Pinned outputs of the §5 / §8 closed-form analysis."""

    def test_normal_traffic_activations(self):
        assert DEFAULT_PARAMETERS.normal_traffic_activations == 3
        assert DEFAULT_PARAMETERS.normal_traffic_activations_chronus == 3

    def test_prfm_max_activations(self):
        assert prfm_max_activations(32, 2048) == 259
        assert prfm_max_activations(2, 65536) == 18

    def test_prac_max_activations(self):
        assert prac_max_activations(128, 4, 2048) == 140
        assert prac_max_activations(1, 4, 2048) == 13
        assert prac_max_activations(1, 1, 65536) == 10

    def test_chronus_max_activations(self):
        assert chronus_max_activations(60) == 63

    def test_secure_thresholds(self):
        assert chronus_secure_backoff_threshold(1024) == 256
        assert chronus_secure_backoff_threshold(64) == 60
        assert chronus_secure_backoff_threshold(20) == 16
        assert secure_prfm_threshold(1024) == 80
        assert secure_prfm_threshold(64) == 4
        assert secure_prac_backoff_threshold(1024, 4) == 256
        assert secure_prac_backoff_threshold(128, 4) == 64

    def test_att_sizing_and_minimum_secure_nrh(self):
        assert att_required_entries(DEFAULT_PARAMETERS, prac_timings=True) == 4
        assert att_required_entries(DEFAULT_PARAMETERS, prac_timings=False) == 4
        assert minimum_secure_nrh_prac(4) == 18
        assert minimum_secure_nrh_prac(1) == 47

    def test_security_sweeps(self):
        assert prfm_security_sweep((2, 32), (2048,)) == {2: {2048: 13}, 32: {2048: 259}}
        assert prac_security_sweep((1, 8), (4,), (2048,)) == {1: {4: 13}, 8: {4: 20}}


class TestSimulationGoldens:
    """Pinned end-to-end numbers for a tiny fixed two-core trace.

    429.mcf + 401.bzip2, 400 accesses per core, seed 0, paper config;
    mechanism run: PRAC-4 at N_RH = 64.

    Re-recorded for the event-horizon engine (PR 4): the hot-path rebuild
    deliberately fixed fidelity bugs -- time skips no longer jump past tREFI
    boundaries or tRRD/tFAW releases, the FR-FCFS reordering cap resets when
    a row closes, failed dispatches no longer mutate the LLC, and finished
    cores replay deterministically -- so the pinned numbers shifted once.
    The values are identical between the event-driven and strict-tick paths
    (tests/test_event_horizon.py proves byte-equality).
    """

    APPS = ("429.mcf", "401.bzip2")
    ACCESSES = 400
    REL = 1e-9

    @pytest.fixture(scope="class")
    def results(self):
        base = paper_system_config()
        engine = SweepEngine()
        return {
            "baseline": engine.run_job(baseline_job(base, self.APPS, self.ACCESSES)),
            "mech": engine.run_job(
                mechanism_job(base, self.APPS, "PRAC-4", 64, self.ACCESSES)
            ),
            "alone": [
                engine.run_job(alone_job(base, app, self.ACCESSES)).core_ipcs[0]
                for app in self.APPS
            ],
        }

    def test_baseline_run(self, results):
        baseline = results["baseline"]
        assert baseline.cycles == 13530
        assert baseline.core_ipcs == pytest.approx(
            [0.4906093977202241, 1.3256185548868475], rel=self.REL
        )
        assert baseline.energy_nj == pytest.approx(22479.6, rel=self.REL)

    def test_mechanism_run(self, results):
        mech = results["mech"]
        assert mech.cycles == 18063
        assert mech.core_ipcs == pytest.approx(
            [0.37912934150557914, 0.9929479625543403], rel=self.REL
        )
        assert mech.energy_nj == pytest.approx(25064.8504, rel=self.REL)

    def test_alone_ipcs(self, results):
        assert results["alone"] == pytest.approx(
            [0.5310965810272329, 1.5716394479720706], rel=self.REL
        )

    def test_derived_metrics(self, results):
        mech, baseline = results["mech"], results["baseline"]
        alone = results["alone"]
        assert weighted_speedup(mech.core_ipcs, alone) == pytest.approx(
            1.345652579618498, rel=self.REL
        )
        assert normalized_weighted_speedup(
            mech.core_ipcs, alone, baseline.core_ipcs
        ) == pytest.approx(0.7614477379284745, rel=self.REL)
        assert max_slowdown(mech.core_ipcs, baseline.core_ipcs) == pytest.approx(
            0.2509549908653047, rel=self.REL
        )
        assert harmonic_speedup(mech.core_ipcs, alone) == pytest.approx(
            0.6703235946020838, rel=self.REL
        )
