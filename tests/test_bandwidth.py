"""Tests for the §11 / Appendix D bandwidth-attack analysis."""

import pytest

from repro.analysis.bandwidth import (
    bandwidth_attack_table,
    chronus_max_bandwidth_consumption,
    dram_bandwidth_consumption,
    prac_max_bandwidth_consumption,
)


class TestDbcFormula:
    def test_expression3_values(self):
        # PRAC at N_RH = 20 in the paper: NBO=1, NRef=4, tRFM=350, tRC=52.
        paper_value = dram_bandwidth_consumption(nref=4, nbo=1, trfm_ns=350, trc_ns=52)
        assert paper_value == pytest.approx(0.964, abs=0.01)
        # Chronus: NBO=16, one RFM per back-off, tRC=47.
        chronus_value = dram_bandwidth_consumption(nref=1, nbo=16, trfm_ns=350, trc_ns=47)
        assert chronus_value == pytest.approx(0.318, abs=0.01)

    def test_monotonic_in_nbo(self):
        assert dram_bandwidth_consumption(4, 1, 350, 52) > dram_bandwidth_consumption(4, 16, 350, 52)

    def test_monotonic_in_nref(self):
        assert dram_bandwidth_consumption(4, 4, 350, 52) > dram_bandwidth_consumption(1, 4, 350, 52)

    def test_bounded_between_zero_and_one(self):
        for nref in (1, 2, 4):
            for nbo in (1, 16, 256):
                assert 0.0 < dram_bandwidth_consumption(nref, nbo, 350, 47) < 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            dram_bandwidth_consumption(0, 1, 350, 47)
        with pytest.raises(ValueError):
            dram_bandwidth_consumption(1, 1, 0, 47)


class TestMechanismBounds:
    def test_prac_much_worse_than_chronus_at_nrh_20(self):
        """The paper reports 94% (PRAC) vs 32% (Chronus)."""
        prac = prac_max_bandwidth_consumption(20)
        chronus = chronus_max_bandwidth_consumption(20)
        assert prac > 0.8
        assert 0.25 < chronus < 0.4
        assert prac > 2 * chronus

    def test_chronus_bound_improves_with_higher_nrh(self):
        assert chronus_max_bandwidth_consumption(128) < chronus_max_bandwidth_consumption(20)

    def test_table_contains_both_mechanisms(self):
        table = bandwidth_attack_table((128, 20))
        mechanisms = {(row.mechanism, row.nrh) for row in table}
        assert ("PRAC-4", 20) in mechanisms
        assert ("Chronus", 128) in mechanisms
        for row in table:
            assert 0.0 < row.consumption < 1.0
