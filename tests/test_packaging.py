"""Packaging metadata sanity checks.

``setup.py`` has always claimed "the pyproject.toml metadata is
authoritative" -- these tests make that claim true and keep it true: the
file must exist, parse, agree with the package's ``__version__``, declare
the NumPy dependency the batch engine imports, and expose a console entry
point that actually resolves.
"""

import sys
import tomllib
from pathlib import Path

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent
PYPROJECT = REPO_ROOT / "pyproject.toml"


def load_pyproject():
    with PYPROJECT.open("rb") as handle:
        return tomllib.load(handle)


class TestPyprojectMetadata:
    def test_pyproject_exists_as_setup_py_claims(self):
        setup_py = (REPO_ROOT / "setup.py").read_text()
        assert "pyproject.toml" in setup_py, (
            "setup.py no longer documents its relationship to pyproject.toml"
        )
        assert PYPROJECT.is_file(), (
            "setup.py declares pyproject.toml authoritative, but the file "
            "does not exist"
        )

    def test_version_matches_package(self):
        project = load_pyproject()["project"]
        assert project["version"] == repro.__version__

    def test_numpy_dependency_declared(self):
        project = load_pyproject()["project"]
        dependencies = project["dependencies"]
        assert any(
            dep.partition(">")[0].partition("=")[0].strip() == "numpy"
            for dep in dependencies
        ), f"numpy missing from dependencies: {dependencies}"

    def test_requires_python_matches_running_interpreter(self):
        # The suite runs on the interpreter CI provisions; the floor must
        # not exclude it.
        project = load_pyproject()["project"]
        floor = project["requires-python"].removeprefix(">=")
        major, minor = (int(part) for part in floor.split("."))
        assert sys.version_info[:2] >= (major, minor)

    def test_console_script_resolves(self):
        project = load_pyproject()["project"]
        target = project["scripts"]["repro"]
        module_name, _, attribute = target.partition(":")
        module = __import__(module_name, fromlist=[attribute])
        assert callable(getattr(module, attribute))

    def test_src_layout_discovery(self):
        tool = load_pyproject()["tool"]["setuptools"]
        assert tool["packages"]["find"]["where"] == ["src"]
