"""Result-artifact round-trip properties: write -> read is byte-stable,
index seeks land on the right record, append-then-reopen resumes gaplessly,
and concurrent writer *processes* lose no records.

The adversarial half of the contract (tampering, truncation, injection)
lives in ``tests/test_artifacts_security.py``.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings, strategies as st

from repro import __version__
from repro.artifacts import (
    ArtifactError,
    ArtifactReader,
    ArtifactSignatureError,
    ArtifactStore,
    ArtifactWriter,
    diff_artifacts,
    generate_key,
    load_key_file,
    provenance,
    verify_artifact,
    write_artifact_bytes,
    write_key_file,
)
from repro.artifacts.emit import emit_run_artifact
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    config_payload,
)
from repro.experiments.sweep import SweepEngine, SweepSpec


# --------------------------------------------------------------------------- #
# Hypothesis strategies: arbitrary JSON-ish record streams
# --------------------------------------------------------------------------- #

# Text deliberately includes newlines, carriage returns and the section
# markers themselves -- all must round-trip safely *inside* payload values.
nasty_text = st.one_of(
    st.text(alphabet="abc #@!\\\"{}[]:,\n\r\té☃", max_size=20),
    st.sampled_from(["#@record", "#@index", "#!END", "#!REPRO-ARTIFACT"]),
)

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 53), max_value=1 << 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    nasty_text,
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(nasty_text, children, max_size=4),
    ),
    max_leaves=12,
)

payloads = st.dictionaries(nasty_text, json_values, max_size=6)
kinds = st.sampled_from(["job", "probe", "report", "bench", "note"])
record_streams = st.lists(st.tuples(kinds, payloads), max_size=12)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(records=record_streams, meta=payloads)
    def test_write_read_rewrite_is_byte_stable(self, tmp_path_factory, records, meta):
        tmp_path = tmp_path_factory.mktemp("artifact")
        first = str(tmp_path / "first.artifact")
        with ArtifactWriter(first, meta=meta) as writer:
            for kind, payload in records:
                writer.append(kind, payload)
        reader = ArtifactReader(first)
        assert reader.meta == meta
        assert [(r.kind, r.payload) for r in reader.records()] == records
        # Re-writing the parsed content reproduces the file byte for byte.
        second = str(tmp_path / "second.artifact")
        with ArtifactWriter(second, meta=reader.meta) as writer:
            for record in reader.records():
                writer.append(record.kind, record.payload)
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()

    @settings(max_examples=40, deadline=None)
    @given(records=record_streams)
    def test_index_seeks_land_on_the_right_record(self, tmp_path_factory, records):
        tmp_path = tmp_path_factory.mktemp("artifact")
        path = str(tmp_path / "indexed.artifact")
        with ArtifactWriter(path, meta={}) as writer:
            for kind, payload in records:
                writer.append(kind, payload)
        reader = ArtifactReader(path)
        # record_at re-reads from disk through the index offset -- it must
        # agree with the sequential scan for every seq, in any order.
        for seq in reversed(range(len(records))):
            record = reader.record_at(seq)
            assert record.seq == seq
            assert (record.kind, record.payload) == records[seq]

    @settings(max_examples=40, deadline=None)
    @given(
        first_half=record_streams, second_half=record_streams, meta=payloads
    )
    def test_append_then_reopen_resumes_gaplessly(
        self, tmp_path_factory, first_half, second_half, meta
    ):
        tmp_path = tmp_path_factory.mktemp("artifact")
        resumed = str(tmp_path / "resumed.artifact")
        with ArtifactWriter(resumed, meta=meta) as writer:
            for kind, payload in first_half:
                writer.append(kind, payload)
        writer = ArtifactWriter.resume(resumed)
        for kind, payload in second_half:
            writer.append(kind, payload)
        writer.close()
        reader = ArtifactReader(resumed)
        everything = first_half + second_half
        assert [r.seq for r in reader.records()] == list(range(len(everything)))
        assert [(r.kind, r.payload) for r in reader.records()] == everything
        # The resumed file is byte-identical to a single-session write.
        single = str(tmp_path / "single.artifact")
        with ArtifactWriter(single, meta=meta) as writer:
            for kind, payload in everything:
                writer.append(kind, payload)
        with open(resumed, "rb") as a, open(single, "rb") as b:
            assert a.read() == b.read()

    def test_in_memory_bytes_equal_on_disk_bytes(self, tmp_path):
        records = [("job", {"key": "k", "x": 1}), ("note", {"t": "#@record"})]
        path = str(tmp_path / "disk.artifact")
        with ArtifactWriter(path, meta={"m": 1}) as writer:
            for kind, payload in records:
                writer.append(kind, payload)
        blob = write_artifact_bytes({"m": 1}, records)
        with open(path, "rb") as handle:
            assert handle.read() == blob

    def test_marker_text_inside_values_is_escaped_not_executed(self, tmp_path):
        path = str(tmp_path / "markers.artifact")
        evil = "\n#@record {\"kind\":\"job\",\"length\":1,\"seq\":9,\"sha256\":\"x\"}\n"
        with ArtifactWriter(path, meta={}) as writer:
            writer.append("job", {"key": "k", "note": evil})
        reader = ArtifactReader(path)
        assert reader.record_count == 1
        assert reader.record_at(0).payload["note"] == evil


class TestSigning:
    def test_signed_round_trip_and_summary(self, tmp_path):
        path = str(tmp_path / "signed.artifact")
        key = generate_key()
        with ArtifactWriter(path, meta=provenance(), key=key) as writer:
            writer.append("job", {"key": "k"})
        summary = verify_artifact(path, key=key)
        assert summary["signed"] is True
        assert summary["signature_verified"] is True
        assert summary["repro_version"] == __version__
        assert summary["cache_schema_version"] == CACHE_SCHEMA_VERSION

    def test_wrong_key_is_rejected(self, tmp_path):
        path = str(tmp_path / "signed.artifact")
        with ArtifactWriter(path, meta={}, key=generate_key()) as writer:
            writer.append("job", {"key": "k"})
        with pytest.raises(ArtifactSignatureError):
            ArtifactReader(path, key=generate_key())

    def test_unsigned_artifact_with_key_is_rejected(self, tmp_path):
        path = str(tmp_path / "plain.artifact")
        with ArtifactWriter(path, meta={}) as writer:
            writer.append("job", {"key": "k"})
        with pytest.raises(ArtifactSignatureError):
            ArtifactReader(path, key=generate_key())

    def test_resume_of_signed_artifact_requires_the_key(self, tmp_path):
        path = str(tmp_path / "signed.artifact")
        key = generate_key()
        with ArtifactWriter(path, meta={}, key=key) as writer:
            writer.append("job", {"key": "a"})
        with pytest.raises(ArtifactSignatureError):
            ArtifactWriter.resume(path)  # no silent signature downgrade
        writer = ArtifactWriter.resume(path, key=key)
        writer.append("job", {"key": "b"})
        writer.close()
        assert ArtifactReader(path, key=key).record_count == 2

    def test_key_file_round_trip_and_permissions(self, tmp_path):
        path = str(tmp_path / "hmac.key")
        key = write_key_file(path)
        assert load_key_file(path) == key
        assert os.stat(path).st_mode & 0o777 == 0o600


# --------------------------------------------------------------------------- #
# Multi-process store stress (mirrors the ResultCache no-lost-entries suite)
# --------------------------------------------------------------------------- #

def _store_write_batch(args):
    """Worker entry point: append one batch of records to a shared store."""
    directory, writer_id, per_writer = args
    store = ArtifactStore(directory)
    store.append_records(
        "job",
        [{"key": f"key-{writer_id}-{i}", "tag": writer_id * per_writer + i}
         for i in range(per_writer)],
        name="stress",
    )
    return per_writer


class TestStoreConcurrency:
    def test_parallel_writer_processes_lose_no_records(self, tmp_path):
        """Two (and more) writer processes on one artifact directory keep
        every record: members are exclusively created, never shared."""
        directory = str(tmp_path / "store")
        writers = 4
        per_writer = 25
        batches = [(directory, w, per_writer) for w in range(writers)]
        with ProcessPoolExecutor(max_workers=writers) as pool:
            assert sum(pool.map(_store_write_batch, batches)) == writers * per_writer
        store = ArtifactStore(directory)
        assert len(store.paths()) == writers
        records = store.records()  # verifies every member while reading
        assert len(records) == writers * per_writer
        seen = {record.payload["key"] for _, record in records}
        assert seen == {
            f"key-{w}-{i}" for w in range(writers) for i in range(per_writer)
        }

    def test_store_members_verify_independently(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), key=generate_key())
        first = store.append_records("job", [{"key": "a"}])
        second = store.append_records("job", [{"key": "b"}])
        assert first != second
        for path in store.paths():
            assert verify_artifact(path, key=store.key)["records"] == 1


# --------------------------------------------------------------------------- #
# Diff + emit integration (a real tiny sweep)
# --------------------------------------------------------------------------- #

TINY_SPEC = SweepSpec(
    mechanisms=("Chronus",),
    nrh_values=(1024,),
    mixes=(("429.mcf",),),
    accesses_per_core=150,
)


class TestEmitAndDiff:
    def _emit(self, tmp_path, name, cache_dir):
        engine = SweepEngine(cache=ResultCache(cache_dir), workers=0)
        jobs = TINY_SPEC.expand()
        results = engine.run_jobs(jobs)
        path = str(tmp_path / name)
        emit_run_artifact(
            path, jobs, results, report=engine.last_run_report,
            base_config=TINY_SPEC.resolved_base_config(),
        )
        return path

    def test_identical_sweeps_diff_clean(self, tmp_path):
        first = self._emit(tmp_path, "first.artifact", str(tmp_path / "c1"))
        second = self._emit(tmp_path, "second.artifact", str(tmp_path / "c2"))
        outcome = diff_artifacts(ArtifactReader(first), ArtifactReader(second))
        assert outcome.is_empty
        assert outcome.compared == len(TINY_SPEC.expand())
        # The volatile timing report was skipped, not compared.
        assert outcome.skipped_kinds.get("report", 0) > 0

    def test_run_artifact_carries_full_provenance(self, tmp_path):
        path = self._emit(tmp_path, "run.artifact", str(tmp_path / "cache"))
        reader = ArtifactReader(path)
        assert reader.meta["repro_version"] == __version__
        assert reader.meta["cache_schema_version"] == CACHE_SCHEMA_VERSION
        expected_config = json.loads(
            json.dumps(config_payload(TINY_SPEC.resolved_base_config()))
        )  # JSON round-trip: tuples come back as lists
        assert reader.meta["config"] == expected_config
        jobs = reader.records_of_kind("job")
        assert len(jobs) == len(TINY_SPEC.expand())
        mechanisms = set()
        for record in jobs:
            assert record.payload["key"]
            mechanisms.add(record.payload["job"]["config"]["mechanism"])
            assert record.payload["result"]["cycles"] > 0
        assert "Chronus" in mechanisms  # the sweep point itself is in there

    def test_changed_result_shows_up_field_by_field(self, tmp_path):
        path = self._emit(tmp_path, "base.artifact", str(tmp_path / "cache"))
        reader = ArtifactReader(path)
        mutated = str(tmp_path / "mutated.artifact")
        with ArtifactWriter(mutated, meta=reader.meta) as writer:
            for record in reader.records():
                payload = json.loads(json.dumps(record.payload))
                if record.kind == "job":
                    payload["result"]["cycles"] += 7
                writer.append(record.kind, payload)
        outcome = diff_artifacts(ArtifactReader(path), ArtifactReader(mutated))
        assert not outcome.is_empty
        changes = list(outcome.changed.values())[0]
        assert any(change.path == "result.cycles" for change in changes)

    def test_diff_reports_added_and_removed_records(self, tmp_path):
        left = str(tmp_path / "left.artifact")
        right = str(tmp_path / "right.artifact")
        with ArtifactWriter(left, meta={}) as writer:
            writer.append("job", {"key": "shared"})
            writer.append("job", {"key": "only-left"})
        with ArtifactWriter(right, meta={}) as writer:
            writer.append("job", {"key": "shared"})
            writer.append("job", {"key": "only-right"})
        outcome = diff_artifacts(ArtifactReader(left), ArtifactReader(right))
        assert outcome.removed == ["job:only-left"]
        assert outcome.added == ["job:only-right"]
        assert outcome.compared == 1


class TestWriterValidation:
    def test_bad_kind_is_rejected_before_writing(self, tmp_path):
        path = str(tmp_path / "bad.artifact")
        with pytest.raises(ArtifactError):
            with ArtifactWriter(path, meta={}) as writer:
                writer.append("Not A Kind!", {"key": "k"})
        # The failed session removed its half-written file.
        assert not os.path.exists(path)

    def test_non_dict_payload_is_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            with ArtifactWriter(str(tmp_path / "x.artifact"), meta={}) as writer:
                writer.append("job", [1, 2, 3])

    def test_nan_payload_is_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            with ArtifactWriter(str(tmp_path / "x.artifact"), meta={}) as writer:
                writer.append("job", {"x": float("nan")})

    def test_closed_writer_refuses_appends(self, tmp_path):
        path = str(tmp_path / "closed.artifact")
        writer = ArtifactWriter(path, meta={})
        writer.close()
        with pytest.raises(ArtifactError):
            writer.append("job", {"key": "k"})


class TestCommittedBenchArtifacts:
    """The committed ``benchmarks/BENCH_*.artifact`` files must verify and
    wrap exactly the committed JSON trajectories, and regeneration must be
    byte-stable (no timestamps in the artifact layer)."""

    def _bench_dir(self):
        import pathlib

        import repro

        return pathlib.Path(repro.__file__).resolve().parents[2] / "benchmarks"

    def test_every_bench_json_has_a_verifiable_artifact(self, tmp_path):
        from repro.artifacts.emit import emit_bench_artifact

        bench_jsons = sorted(self._bench_dir().glob("BENCH_*.json"))
        assert bench_jsons, "no committed bench trajectories found"
        for bench_json in bench_jsons:
            artifact = bench_json.with_suffix(".artifact")
            assert artifact.exists(), f"missing committed {artifact.name}"
            reader = ArtifactReader(str(artifact))
            record = reader.records_of_kind("bench")[0]
            with open(bench_json, "r", encoding="utf-8") as handle:
                assert record.payload["bench"] == json.load(handle)
            regenerated = emit_bench_artifact(
                bench_json, artifact_path=str(tmp_path / artifact.name)
            )
            with open(regenerated, "rb") as new, open(artifact, "rb") as old:
                assert new.read() == old.read(), f"{artifact.name} is stale"
