"""Tests for PRFM (periodic refresh management)."""

import pytest

from repro.core.prfm import PRFM


class TestConfiguration:
    def test_default_threshold_secure(self):
        prfm = PRFM(nrh=1024, num_banks=4)
        assert prfm.is_secure
        assert prfm.rfm_threshold >= 2

    def test_threshold_shrinks_with_nrh(self):
        assert PRFM(nrh=64, num_banks=4).rfm_threshold < PRFM(nrh=1024, num_banks=4).rfm_threshold

    def test_explicit_threshold(self):
        assert PRFM(nrh=1024, num_banks=4, rfm_threshold=75).rfm_threshold == 75

    def test_insecure_fallback(self):
        prfm = PRFM(nrh=4, num_banks=4, allow_insecure=True)
        assert not prfm.is_secure
        assert prfm.rfm_threshold == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PRFM(nrh=1024, num_banks=0)
        with pytest.raises(ValueError):
            PRFM(nrh=1024, num_banks=4, rfm_threshold=0)

    def test_does_not_require_prac_timings(self):
        assert PRFM.requires_prac_timings is False


class TestRfmRequests:
    def test_rfm_needed_after_threshold_activations(self):
        prfm = PRFM(nrh=1024, num_banks=2, rfm_threshold=3)
        for cycle in range(2):
            prfm.on_activate(0, cycle, cycle)
        assert not prfm.rfm_needed(0)
        prfm.on_activate(0, 99, 2)
        assert prfm.rfm_needed(0)
        assert not prfm.rfm_needed(1)

    def test_acknowledge_resets_counter(self):
        prfm = PRFM(nrh=1024, num_banks=1, rfm_threshold=2)
        prfm.on_activate(0, 1, 0)
        prfm.on_activate(0, 2, 1)
        assert prfm.rfm_needed(0)
        prfm.acknowledge_rfm(0, 10)
        assert not prfm.rfm_needed(0)
        assert prfm.bank_counter(0) == 0
        assert prfm.stats.rfm_commands == 1
        assert prfm.stats.preventive_refresh_rows == prfm.victim_rows_per_aggressor

    def test_counters_per_bank_independent(self):
        prfm = PRFM(nrh=1024, num_banks=2, rfm_threshold=5)
        prfm.on_activate(0, 1, 0)
        prfm.on_activate(1, 1, 0)
        assert prfm.bank_counter(0) == 1
        assert prfm.bank_counter(1) == 1

    def test_reset(self):
        prfm = PRFM(nrh=1024, num_banks=1, rfm_threshold=1)
        prfm.on_activate(0, 1, 0)
        prfm.reset()
        assert not prfm.rfm_needed(0)
        assert prfm.bank_counter(0) == 0


class TestStorage:
    def test_one_counter_per_bank(self):
        prfm = PRFM(nrh=1024, num_banks=64)
        bits = prfm.storage_overhead_bits(num_banks=64, rows_per_bank=131072)
        assert bits["sram_bits"] == 64 * 11
        assert "dram_bits" not in bits

    def test_smaller_counters_at_lower_nrh(self):
        big = PRFM(nrh=1024, num_banks=64).storage_overhead_bits(64, 131072)["sram_bits"]
        small = PRFM(nrh=32, num_banks=64, rfm_threshold=3).storage_overhead_bits(64, 131072)["sram_bits"]
        assert small < big
