"""Tests for the shared last-level cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import Cache


class TestBasicBehaviour:
    def test_geometry(self):
        cache = Cache(size_bytes=8 * 1024 * 1024, associativity=8, line_size=64)
        assert cache.num_sets == 16384

    def test_miss_then_hit(self):
        cache = Cache(size_bytes=4096, associativity=2, line_size=64)
        assert not cache.access(0x100, is_write=False).hit
        assert cache.access(0x100, is_write=False).hit
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = Cache(size_bytes=4096, associativity=2, line_size=64)
        cache.access(0x100, is_write=False)
        assert cache.access(0x13F, is_write=False).hit

    def test_lru_eviction(self):
        cache = Cache(size_bytes=2 * 64, associativity=2, line_size=64)  # one set
        cache.access(0 * 64, False)
        cache.access(1 * 64, False)
        cache.access(0 * 64, False)     # touch line 0 so line 1 is LRU
        cache.access(2 * 64, False)     # evicts line 1
        assert cache.contains(0 * 64)
        assert not cache.contains(1 * 64)

    def test_dirty_eviction_produces_writeback(self):
        cache = Cache(size_bytes=2 * 64, associativity=2, line_size=64)
        cache.access(0 * 64, is_write=True)
        cache.access(1 * 64, is_write=False)
        result = cache.access(2 * 64, is_write=False)  # evicts dirty line 0
        assert result.writeback_address == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache(size_bytes=2 * 64, associativity=2, line_size=64)
        cache.access(0 * 64, is_write=False)
        cache.access(1 * 64, is_write=False)
        result = cache.access(2 * 64, is_write=False)
        assert result.writeback_address is None

    def test_write_hit_marks_dirty(self):
        cache = Cache(size_bytes=2 * 64, associativity=2, line_size=64)
        cache.access(0 * 64, is_write=False)
        cache.access(0 * 64, is_write=True)
        cache.access(1 * 64, is_write=False)
        result = cache.access(2 * 64, is_write=False)
        assert result.writeback_address == 0

    def test_reset(self):
        cache = Cache(size_bytes=4096, associativity=2, line_size=64)
        cache.access(0x100, False)
        cache.reset()
        assert cache.occupancy() == 0
        assert cache.stats.accesses == 0

    def test_miss_rate(self):
        cache = Cache(size_bytes=4096, associativity=2, line_size=64)
        assert cache.stats.miss_rate == 0.0
        cache.access(0, False)
        cache.access(0, False)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=0)
        with pytest.raises(ValueError):
            Cache(size_bytes=1000, associativity=3, line_size=64)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
def test_occupancy_bounded_by_capacity(addresses):
    cache = Cache(size_bytes=8 * 64 * 4, associativity=4, line_size=64)
    total_lines = cache.num_sets * cache.associativity
    for address in addresses:
        cache.access(address, is_write=bool(address % 2))
    assert cache.occupancy() <= total_lines
    assert cache.stats.accesses == len(addresses)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200))
def test_contains_after_access(addresses):
    cache = Cache(size_bytes=64 * 1024, associativity=8, line_size=64)
    for address in addresses:
        cache.access(address, False)
        assert cache.contains(address)
