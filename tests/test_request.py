"""Tests for memory request records."""

from repro.controller.request import MemoryRequest, RequestType


class TestMemoryRequest:
    def test_read_write_flags(self):
        read = MemoryRequest(address=64, request_type=RequestType.READ, core_id=0, arrival_cycle=0)
        write = MemoryRequest(address=64, request_type=RequestType.WRITE, core_id=0, arrival_cycle=0)
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_request_ids_monotonic(self):
        a = MemoryRequest(address=0, request_type=RequestType.READ, core_id=0, arrival_cycle=0)
        b = MemoryRequest(address=0, request_type=RequestType.READ, core_id=0, arrival_cycle=0)
        assert b.request_id > a.request_id

    def test_latency_none_until_complete(self):
        request = MemoryRequest(address=0, request_type=RequestType.READ, core_id=0, arrival_cycle=10)
        assert not request.is_complete
        assert request.latency() is None
        request.completion_cycle = 60
        assert request.is_complete
        assert request.latency() == 50

    def test_repr_mentions_kind(self):
        request = MemoryRequest(address=0, request_type=RequestType.WRITE, core_id=2, arrival_cycle=0)
        assert "WR" in repr(request)
