"""End-to-end system simulation tests.

These tests run small but complete simulations (cores + LLC + controller +
DRAM + mitigation) and assert the qualitative behaviours the paper's
evaluation rests on.
"""

import pytest

from repro.core.factory import MECHANISM_NAMES
from repro.system.config import appendix_e_system_config, paper_system_config
from repro.attacks.patterns import performance_attack_trace
from repro.system.simulator import SystemSimulator, simulate
from repro.workloads.mixes import build_mix_traces


ACCESSES = 300


@pytest.fixture(scope="module")
def mix_traces():
    return build_mix_traces(
        ["549.fotonik3d", "429.mcf"], accesses_per_core=ACCESSES, seed=1
    )


@pytest.fixture(scope="module")
def baseline_result(mix_traces):
    config = paper_system_config(mechanism="None", nrh=1024).with_overrides(num_cores=2)
    return simulate(config, mix_traces)


def run(mechanism, nrh, traces, **overrides):
    config = paper_system_config(mechanism=mechanism, nrh=nrh).with_overrides(
        num_cores=len(traces), **overrides
    )
    return simulate(config, traces)


class TestBasicSimulation:
    def test_baseline_completes_and_reports(self, baseline_result):
        result = baseline_result
        assert result.cycles > 0
        assert len(result.core_ipcs) == 2
        assert all(ipc > 0 for ipc in result.core_ipcs)
        assert result.command_counts["ACT"] > 0
        assert result.command_counts["RD"] > 0
        assert result.energy_nj > 0
        assert result.is_secure

    def test_trace_count_must_match_cores(self, mix_traces):
        config = paper_system_config()
        with pytest.raises(ValueError):
            SystemSimulator(config, mix_traces)  # 2 traces for a 4-core config

    def test_simulation_is_deterministic(self, mix_traces, baseline_result):
        config = paper_system_config(mechanism="None", nrh=1024).with_overrides(num_cores=2)
        repeat = simulate(config, mix_traces)
        assert repeat.cycles == baseline_result.cycles
        assert repeat.core_ipcs == baseline_result.core_ipcs
        assert repeat.command_counts == baseline_result.command_counts

    @pytest.mark.parametrize("mechanism", MECHANISM_NAMES)
    def test_every_mechanism_runs_to_completion(self, mechanism, mix_traces):
        result = run(mechanism, 128, mix_traces)
        assert result.cycles > 0
        assert all(ipc > 0 for ipc in result.core_ipcs)


class TestPaperOrderings:
    def test_chronus_matches_baseline_at_modern_threshold(self, mix_traces, baseline_result):
        """Chronus keeps the baseline timings, so at N_RH = 1K it is near zero
        overhead (paper: <0.1%)."""
        chronus = run("Chronus", 1024, mix_traces)
        assert chronus.cycles <= baseline_result.cycles * 1.02

    def test_prac_slower_than_baseline_even_without_backoffs(self, mix_traces, baseline_result):
        """PRAC's inflated tRP/tRC cost performance even at N_RH = 1K."""
        prac = run("PRAC-4", 1024, mix_traces)
        assert prac.cycles > baseline_result.cycles

    def test_chronus_outperforms_prac_at_low_threshold(self, mix_traces):
        chronus = run("Chronus", 20, mix_traces)
        prac = run("PRAC-4", 20, mix_traces)
        assert chronus.cycles < prac.cycles

    def test_prac_overhead_grows_as_nrh_drops(self, mix_traces):
        at_1k = run("PRAC-4", 1024, mix_traces)
        at_20 = run("PRAC-4", 20, mix_traces)
        assert at_20.cycles >= at_1k.cycles

    def test_prfm_expensive_at_low_threshold(self, mix_traces, baseline_result):
        prfm = run("PRFM", 20, mix_traces)
        assert prfm.cycles > baseline_result.cycles * 1.2
        assert prfm.controller_stats["rfms"] > 0

    def test_chronus_energy_above_baseline_but_below_prac(self, mix_traces, baseline_result):
        chronus = run("Chronus", 1024, mix_traces)
        prac = run("PRAC-4", 1024, mix_traces)
        assert chronus.energy_nj > baseline_result.energy_nj
        assert chronus.energy_nj < prac.energy_nj

    def test_para_issues_preventive_refreshes(self, mix_traces):
        para = run("PARA", 32, mix_traces)
        assert para.command_counts.get("VRR", 0) > 0

    def test_insecure_flag_propagates(self, mix_traces):
        result = run("PRAC-1", 8, mix_traces)
        assert not result.is_secure


class TestPerformanceAttack:
    def test_attacker_degrades_prac_more_than_chronus(self):
        benign = build_mix_traces(["437.leslie3d"], accesses_per_core=ACCESSES, seed=2)
        attack = performance_attack_trace(num_accesses=4 * ACCESSES, seed=0)
        results = {}
        for mechanism in ("Chronus", "PRAC-4"):
            config = paper_system_config(mechanism=mechanism, nrh=20).with_overrides(
                num_cores=2, attacker_cores=(0,)
            )
            attacked = simulate(config, [attack] + benign)
            solo_config = paper_system_config(mechanism=mechanism, nrh=20).with_overrides(
                num_cores=1
            )
            solo = simulate(solo_config, benign)
            results[mechanism] = attacked.core_ipcs[1] / solo.core_ipcs[0]
        assert results["Chronus"] > results["PRAC-4"]

    def test_attack_triggers_backoffs_under_prac(self):
        attack = performance_attack_trace(num_accesses=2000, seed=0)
        config = paper_system_config(mechanism="PRAC-4", nrh=20).with_overrides(
            num_cores=1, attacker_cores=(0,)
        )
        result = simulate(config, [attack])
        assert result.mitigation_stats.get("backoffs", 0) > 0
        assert result.controller_stats["rfms"] > 0


class TestAppendixEConfiguration:
    def test_large_llc_reduces_prac_overhead(self):
        """Appendix E: with a much larger LLC the workloads become cache
        resident and PRAC's overhead shrinks."""
        traces = build_mix_traces(["523.xalancbmk", "531.deepsjeng"],
                                  accesses_per_core=ACCESSES, seed=3)
        small_base = run("None", 1024, traces)
        small_prac = run("PRAC-4", 1024, traces)
        big_base = run("None", 1024, traces, llc_size_bytes=36 * 1024 * 1024)
        big_prac = run("PRAC-4", 1024, traces, llc_size_bytes=36 * 1024 * 1024)
        small_overhead = small_prac.cycles / small_base.cycles
        big_overhead = big_prac.cycles / big_base.cycles
        assert big_overhead <= small_overhead + 0.02

    def test_appendix_config_has_eight_cores(self):
        config = appendix_e_system_config(mechanism="PRAC-4", nrh=1024)
        assert config.num_cores == 8
