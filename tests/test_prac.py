"""Tests for PRAC-N (back-off protocol, ATT refreshes, delay period)."""

import pytest

from repro.core.prac import PRAC, counter_width_bits


def make_prac(nrh=1024, nbo=4, nref=4, num_banks=4, **kwargs):
    return PRAC(nrh=nrh, num_banks=num_banks, nref=nref, nbo=nbo, **kwargs)


class TestConfiguration:
    def test_default_secure_nbo_at_1k(self):
        prac = PRAC(nrh=1024, num_banks=4, nref=4)
        assert prac.is_secure
        assert 1 <= prac.nbo < 1024

    def test_lower_nrh_means_lower_nbo(self):
        high = PRAC(nrh=1024, num_banks=4, nref=4)
        low = PRAC(nrh=64, num_banks=4, nref=4)
        assert low.nbo < high.nbo

    def test_insecure_fallback(self):
        prac = PRAC(nrh=2, num_banks=4, nref=1, allow_insecure=True)
        assert not prac.is_secure
        assert prac.nbo == 1

    def test_insecure_raises_without_fallback(self):
        with pytest.raises(ValueError):
            PRAC(nrh=2, num_banks=4, nref=1, allow_insecure=False)

    def test_requires_prac_timings(self):
        assert PRAC.requires_prac_timings is True

    def test_name_includes_nref(self):
        assert make_prac(nref=2).name == "PRAC-2"

    def test_ndelay_defaults_to_nref(self):
        assert make_prac(nref=4).ndelay == 4
        assert make_prac(nref=4, ndelay=2).ndelay == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            PRAC(nrh=0, num_banks=4)
        with pytest.raises(ValueError):
            PRAC(nrh=64, num_banks=0)
        with pytest.raises(ValueError):
            PRAC(nrh=64, num_banks=4, nref=0)


class TestCounting:
    def test_counter_increments_on_precharge(self):
        prac = make_prac()
        prac.on_activate(0, 10, 0)
        assert prac.counters.get(0, 10) == 0
        prac.on_precharge(0, 10, 50)
        assert prac.counters.get(0, 10) == 1

    def test_att_tracks_precharged_rows(self):
        prac = make_prac()
        for cycle, row in enumerate((5, 6, 5)):
            prac.on_precharge(0, row, cycle)
        entry = prac.att[0].max_entry()
        assert entry.row == 5
        assert entry.count == 2


class TestBackoffProtocol:
    def test_backoff_asserted_at_threshold(self):
        prac = make_prac(nbo=3)
        for i in range(2):
            prac.on_precharge(0, 42, i)
        assert not prac.backoff_asserted()
        prac.on_precharge(0, 42, 2)
        assert prac.backoff_asserted()
        assert prac.stats.backoffs == 1

    def test_backoff_not_reasserted_while_pending(self):
        prac = make_prac(nbo=1)
        prac.on_precharge(0, 1, 0)
        prac.on_precharge(0, 2, 1)
        assert prac.stats.backoffs == 1

    def test_recovery_needs_nref_rfms(self):
        prac = make_prac(nbo=1, nref=2)
        prac.on_precharge(0, 1, 0)
        assert prac.wants_more_rfm()
        prac.on_rfm([0, 1, 2, 3], 10)
        assert prac.wants_more_rfm()
        prac.on_rfm([0, 1, 2, 3], 20)
        assert not prac.wants_more_rfm()
        assert not prac.backoff_asserted()
        assert prac.stats.rfm_commands == 2

    def test_rfm_refreshes_att_max_and_resets_counter(self):
        prac = make_prac(nbo=2)
        prac.on_precharge(0, 7, 0)
        prac.on_precharge(0, 7, 1)
        assert prac.backoff_asserted()
        refreshed = prac.on_rfm([0], 10)
        assert refreshed == prac.victim_rows_per_aggressor
        assert prac.counters.get(0, 7) == 0
        assert prac.att[0].max_entry() is None

    def test_rfm_covers_multiple_banks(self):
        prac = make_prac(nbo=1)
        prac.on_precharge(0, 1, 0)
        prac.on_precharge(1, 2, 1)
        refreshed = prac.on_rfm([0, 1, 2, 3], 5)
        # Banks 0 and 1 have tracked aggressors; banks 2 and 3 are empty.
        assert refreshed == 2 * prac.victim_rows_per_aggressor

    def test_delay_period_blocks_reassertion(self):
        prac = make_prac(nbo=1, nref=1, ndelay=3)
        prac.on_precharge(0, 1, 0)
        prac.on_rfm([0], 5)
        assert not prac.backoff_asserted()
        # A row above the threshold exists, but the delay period holds.
        prac.on_precharge(0, 2, 6)
        assert not prac.backoff_asserted()
        assert prac.activations_until_next_backoff() == 3
        prac.on_activate(0, 3, 7)
        prac.on_activate(0, 3, 8)
        assert not prac.backoff_asserted()
        prac.on_activate(0, 3, 9)
        # Delay expired and a tracked row is at/above the threshold.
        assert prac.backoff_asserted()
        assert prac.stats.backoffs == 2

    def test_no_reassert_when_nothing_hot(self):
        prac = make_prac(nbo=10, nref=1, ndelay=1)
        prac._delay_acts_remaining = 1
        prac.on_activate(0, 3, 0)
        assert not prac.backoff_asserted()


class TestBorrowedRefresh:
    def test_every_other_ref_refreshes_att_max(self):
        prac = make_prac(nbo=100)
        prac.on_precharge(0, 9, 0)
        prac.on_periodic_refresh([0, 1], 100)
        assert prac.stats.borrowed_refreshes == prac.victim_rows_per_aggressor
        assert prac.counters.get(0, 9) == 0
        # Second REF of the pair does nothing.
        prac.on_precharge(0, 11, 200)
        prac.on_periodic_refresh([0, 1], 300)
        assert prac.counters.get(0, 11) == 1

    def test_disabled_borrowed_refresh(self):
        prac = make_prac(nbo=100, borrowed_refresh=False)
        prac.on_precharge(0, 9, 0)
        prac.on_periodic_refresh([0, 1], 100)
        assert prac.stats.borrowed_refreshes == 0
        assert prac.counters.get(0, 9) == 1


class TestHousekeeping:
    def test_refresh_window_resets_counters(self):
        prac = make_prac(nbo=100)
        prac.on_precharge(0, 1, 0)
        prac.on_refresh_window(1000)
        assert prac.counters.get(0, 1) == 0
        assert prac.att[0].max_entry() is None

    def test_reset(self):
        prac = make_prac(nbo=1)
        prac.on_precharge(0, 1, 0)
        prac.reset()
        assert not prac.backoff_asserted()
        assert prac.stats.backoffs == 0
        assert prac.counters.get(0, 1) == 0

    def test_storage_overhead_scales_with_rows(self):
        prac = make_prac(nrh=1024)
        bits = prac.storage_overhead_bits(num_banks=64, rows_per_bank=131072)
        assert bits["dram_bits"] == 64 * 131072 * counter_width_bits(1024)

    def test_counter_width_bits(self):
        assert counter_width_bits(1024) == 11
        assert counter_width_bits(20) == 6
        with pytest.raises(ValueError):
            counter_width_bits(0)
