"""Engine progress streaming, cooperative cancellation and pool lifecycle.

These are the SweepEngine features the simulation service is built on:
``run_jobs(progress=..., cancel=...)``, structured :class:`RunReport`
serialisation, and the atexit/context-manager pool reaping that keeps
interrupted runs from leaking worker processes.
"""

import dataclasses
import json

import pytest

from repro.experiments.sweep import (
    CancelToken,
    SweepCancelled,
    SweepEngine,
    SweepSpec,
    shutdown_live_engines,
)

SPEC = SweepSpec(
    mechanisms=("Chronus",),
    nrh_values=(128, 64),
    mixes=(("429.mcf",),),
    accesses_per_core=150,
)


class TestProgressEvents:
    def run_with_progress(self, **engine_kwargs):
        engine = SweepEngine(**engine_kwargs)
        events = []
        results = engine.run(SPEC, progress=events.append)
        return engine, events, results

    @pytest.mark.parametrize("engine_kwargs", [
        {"workers": 0},
        {"batch": True},
    ])
    def test_event_stream_shape(self, engine_kwargs):
        engine, events, results = self.run_with_progress(**engine_kwargs)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "plan"
        assert kinds[-1] == "report"
        assert kinds.count("job") == len(results)
        assert "shard" in kinds
        plan = events[0]
        assert plan["total_jobs"] == len(results)
        assert plan["missing_jobs"] == len(results)
        assert plan["mode"] == ("batch" if engine_kwargs.get("batch") else "serial")
        # Per-job events count up monotonically to completion.
        done = [event["done_jobs"] for event in events if event["event"] == "job"]
        assert done == list(range(1, len(results) + 1))
        # Every event is JSON-serialisable as-is (the service sends them raw).
        json.dumps(events)

    def test_report_event_matches_last_run_report(self):
        engine, events, _ = self.run_with_progress(workers=0)
        assert events[-1]["report"] == engine.last_run_report.as_dict()

    def test_fully_cached_run_emits_cached_plan(self):
        engine = SweepEngine(workers=0)
        engine.run(SPEC)
        events = []
        engine.run(SPEC, progress=events.append)
        assert [event["event"] for event in events] == ["plan", "report"]
        assert events[0]["mode"] == "cached"
        assert events[0]["missing_jobs"] == 0
        assert events[-1]["report"]["engine"] == "cached"


class TestRunReportAsDict:
    def test_as_dict_is_json_round_trippable(self):
        engine = SweepEngine(workers=0)
        engine.run(SPEC)
        data = engine.last_run_report.as_dict()
        assert json.loads(json.dumps(data)) == data
        assert data["engine"] == "serial"
        assert data["total_jobs"] == data["executed_jobs"] > 0
        assert data["cache_hit_rate"] == 0.0
        assert data["wall_seconds"] >= 0.0
        assert isinstance(data["shards"], list)

    def test_cached_rerun_reports_full_hit_rate(self):
        engine = SweepEngine(workers=0)
        engine.run(SPEC)
        engine.run(SPEC)
        data = engine.last_run_report.as_dict()
        assert data["engine"] == "cached"
        assert data["cache_hit_rate"] == 1.0
        assert data["executed_jobs"] == 0


class TestCancellation:
    def test_pre_cancelled_token_stops_before_any_work(self):
        engine = SweepEngine(workers=0)
        token = CancelToken()
        token.cancel()
        with pytest.raises(SweepCancelled) as excinfo:
            engine.run(SPEC, cancel=token)
        assert engine.executed_jobs == 0
        assert excinfo.value.report.executed_jobs == 0

    def test_cancel_after_first_job_keeps_partial_work_cached(self):
        engine = SweepEngine(workers=0)
        token = CancelToken()

        def cancel_after_first(event):
            if event["event"] == "job":
                token.cancel()

        with pytest.raises(SweepCancelled):
            engine.run(SPEC, progress=cancel_after_first, cancel=token)
        assert engine.executed_jobs == 1
        # The finished job survives in the cache: resubmission resumes.
        events = []
        results = engine.run(SPEC, progress=events.append)
        assert len(results) == len(SPEC.expand())
        assert events[0]["missing_jobs"] == len(results) - 1

    def test_cancelled_run_does_not_touch_last_run_report(self):
        engine = SweepEngine(workers=0)
        engine.run(SPEC)
        before = engine.last_run_report
        token = CancelToken()
        token.cancel()
        with pytest.raises(SweepCancelled):
            engine.run(
                dataclasses.replace(SPEC, accesses_per_core=151), cancel=token
            )
        # The partial report travels on the exception, not the engine.
        assert engine.last_run_report is before


class TestPoolLifecycle:
    def test_context_manager_shuts_pool_down(self):
        with SweepEngine(workers=2) as engine:
            engine._ensure_pool()
            assert engine._pool is not None
        assert engine._pool is None

    def test_close_is_idempotent(self):
        engine = SweepEngine(workers=2)
        engine._ensure_pool()
        engine.close()
        engine.close()
        assert engine._pool is None

    def test_shutdown_live_engines_reaps_open_pools(self):
        engine = SweepEngine(workers=2)
        engine._ensure_pool()
        assert engine._pool is not None
        reaped = shutdown_live_engines()
        assert reaped >= 1
        assert engine._pool is None
        # Nothing left to reap on the second sweep.
        engine.close()
        assert shutdown_live_engines() == 0

    def test_pool_recreated_after_reap(self):
        engine = SweepEngine(workers=2)
        engine._ensure_pool()
        shutdown_live_engines()
        pool = engine._ensure_pool()
        assert pool is engine._pool is not None
        engine.close()
