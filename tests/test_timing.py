"""Tests for DDR5 timing parameters (Table 1 of the paper)."""

import pytest

from repro.dram.timing import (
    DDR5_3200_TCK_NS,
    ddr5_3200an,
    ns_to_cycles,
    timing_table_rows,
)


class TestNsToCycles:
    def test_exact_multiple(self):
        assert ns_to_cycles(5.0, 0.625) == 8

    def test_rounds_up(self):
        assert ns_to_cycles(47.0, 0.625) == 76

    def test_zero(self):
        assert ns_to_cycles(0.0, 0.625) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ns_to_cycles(-1.0, 0.625)

    def test_half_cycle_rounds_up(self):
        assert ns_to_cycles(0.3, 0.625) == 1


class TestBaselinePreset:
    def test_clock_period(self):
        timing = ddr5_3200an()
        assert timing.tck_ns == DDR5_3200_TCK_NS

    def test_not_prac(self):
        assert ddr5_3200an().prac_enabled is False

    def test_table1_baseline_values_ns(self):
        timing = ddr5_3200an()
        assert timing.ns(timing.tRAS) == pytest.approx(32.0, abs=timing.tck_ns)
        assert timing.ns(timing.tRP) == pytest.approx(15.0, abs=timing.tck_ns)
        assert timing.ns(timing.tRC) == pytest.approx(47.0, abs=timing.tck_ns)
        assert timing.ns(timing.tRTP) == pytest.approx(7.5, abs=timing.tck_ns)
        assert timing.ns(timing.tWR) == pytest.approx(30.0, abs=timing.tck_ns)

    def test_refresh_interval_much_smaller_than_window(self):
        timing = ddr5_3200an()
        assert timing.tREFI * 100 < timing.tREFW

    def test_as_dict_contains_all_parameters(self):
        d = ddr5_3200an().as_dict()
        for key in ("tRAS", "tRP", "tRC", "tRCD", "tRTP", "tWR", "tRFM", "tABOACT"):
            assert key in d
            assert d[key] >= 0


class TestPracPreset:
    def test_prac_flag(self):
        assert ddr5_3200an(prac=True).prac_enabled is True

    def test_trp_and_trc_increase(self):
        base = ddr5_3200an()
        prac = ddr5_3200an(prac=True)
        assert prac.tRP > base.tRP
        assert prac.tRC > base.tRC

    def test_tras_trtp_twr_decrease(self):
        base = ddr5_3200an()
        prac = ddr5_3200an(prac=True)
        assert prac.tRAS < base.tRAS
        assert prac.tRTP < base.tRTP
        assert prac.tWR < base.tWR

    def test_table1_prac_values_ns(self):
        prac = ddr5_3200an(prac=True)
        assert prac.ns(prac.tRAS) == pytest.approx(16.0, abs=prac.tck_ns)
        assert prac.ns(prac.tRP) == pytest.approx(36.0, abs=prac.tck_ns)
        assert prac.ns(prac.tRC) == pytest.approx(52.0, abs=prac.tck_ns)

    def test_column_parameters_unchanged(self):
        base = ddr5_3200an()
        prac = ddr5_3200an(prac=True)
        assert prac.tCL == base.tCL
        assert prac.tRCD == base.tRCD
        assert prac.tRFM == base.tRFM


class TestLegacyPracPreset:
    def test_legacy_keeps_old_tras(self):
        legacy = ddr5_3200an(prac=True, legacy_prac_timings=True)
        base = ddr5_3200an()
        assert legacy.tRAS == base.tRAS
        assert legacy.tRTP == base.tRTP
        assert legacy.tWR == base.tWR

    def test_legacy_still_increases_trp_trc(self):
        legacy = ddr5_3200an(prac=True, legacy_prac_timings=True)
        base = ddr5_3200an()
        assert legacy.tRP > base.tRP
        assert legacy.tRC > base.tRC

    def test_legacy_requires_prac(self):
        with pytest.raises(ValueError):
            ddr5_3200an(prac=False, legacy_prac_timings=True)

    def test_legacy_is_slower_than_fixed_prac(self):
        legacy = ddr5_3200an(prac=True, legacy_prac_timings=True)
        fixed = ddr5_3200an(prac=True)
        # The erratum fix reduces tRAS/tRTP/tWR, so the fixed preset is
        # never slower than the legacy one on any parameter.
        assert legacy.tRAS >= fixed.tRAS
        assert legacy.tWR >= fixed.tWR


class TestOverridesAndTable:
    def test_with_overrides(self):
        timing = ddr5_3200an().with_overrides(tRC=100)
        assert timing.tRC == 100
        assert timing.tRP == ddr5_3200an().tRP

    def test_timing_table_rows_match_paper(self):
        rows = {row["parameter"]: row for row in timing_table_rows()}
        assert rows["tRAS"]["no_prac_ns"] == 32.0
        assert rows["tRAS"]["prac_ns"] == 16.0
        assert rows["tRP"]["no_prac_ns"] == 15.0
        assert rows["tRP"]["prac_ns"] == 36.0
        assert rows["tRC"]["no_prac_ns"] == 47.0
        assert rows["tRC"]["prac_ns"] == 52.0
        assert rows["tRTP"]["prac_ns"] == 5.0
        assert rows["tWR"]["prac_ns"] == 10.0

    def test_frozen(self):
        with pytest.raises(Exception):
            ddr5_3200an().tRC = 1
