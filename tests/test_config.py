"""Tests for the system configuration objects."""

import pytest

from repro.system.config import appendix_e_system_config, paper_system_config


class TestSystemConfig:
    def test_paper_defaults_match_table2(self):
        config = paper_system_config()
        assert config.num_cores == 4
        assert config.issue_width == 4
        assert config.window_size == 128
        assert config.llc_size_bytes == 8 * 1024 * 1024
        assert config.llc_associativity == 8
        assert config.read_queue_size == 64
        assert config.scheduler_cap == 4
        assert config.address_mapping == "MOP"
        assert config.organization.total_banks == 64
        assert config.organization.rows == 65536

    def test_with_mechanism(self):
        config = paper_system_config().with_mechanism("Chronus", nrh=64)
        assert config.mechanism == "Chronus"
        assert config.nrh == 64

    def test_with_mechanism_keeps_nrh_when_not_given(self):
        config = paper_system_config(nrh=256).with_mechanism("PRAC-4")
        assert config.nrh == 256

    def test_with_overrides(self):
        config = paper_system_config().with_overrides(num_cores=8, seed=7)
        assert config.num_cores == 8
        assert config.seed == 7

    def test_appendix_e_config(self):
        config = appendix_e_system_config()
        assert config.num_cores == 8
        assert config.llc_size_bytes > 4 * paper_system_config().llc_size_bytes

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            paper_system_config().num_cores = 2

    def test_clock_ratio_matches_paper_frequencies(self):
        # 4.2 GHz cores over a 1.6 GHz DRAM command clock.
        assert paper_system_config().clock_ratio == pytest.approx(4.2 / 1.6)
