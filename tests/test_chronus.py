"""Tests for Chronus (CCU + Chronus Back-Off) and Chronus-PB."""

import pytest

from repro.analysis.security import DEFAULT_PARAMETERS
from repro.core.chronus import CCU_ROW_ACCESS_ENERGY_OVERHEAD, Chronus, ChronusPB
from repro.core.prac import PRAC


def make_chronus(nrh=1024, nbo=8, num_banks=4, **kwargs):
    return Chronus(nrh=nrh, num_banks=num_banks, nbo=nbo, **kwargs)


class TestConfiguration:
    def test_keeps_baseline_timings(self):
        assert Chronus.requires_prac_timings is False

    def test_act_energy_multiplier_matches_spice_result(self):
        assert Chronus.act_energy_multiplier == pytest.approx(
            1.0 + CCU_ROW_ACCESS_ENERGY_OVERHEAD
        )

    def test_default_nbo_is_secure_bound(self):
        chronus = Chronus(nrh=20, num_banks=4)
        anormal = DEFAULT_PARAMETERS.normal_traffic_activations_chronus
        assert chronus.nbo == min(20 - anormal - 1, 256)

    def test_default_nbo_capped_by_counter_width(self):
        chronus = Chronus(nrh=4096, num_banks=4)
        assert chronus.nbo == 256

    def test_att_sized_for_normal_traffic_window(self):
        chronus = Chronus(nrh=1024, num_banks=4)
        anormal = DEFAULT_PARAMETERS.normal_traffic_activations_chronus
        assert chronus.att_entries == anormal + 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Chronus(nrh=0, num_banks=4)
        with pytest.raises(ValueError):
            Chronus(nrh=64, num_banks=0)


class TestConcurrentCounterUpdate:
    def test_counter_increments_on_activate(self):
        chronus = make_chronus()
        chronus.on_activate(0, 10, 0)
        assert chronus.counters.get(0, 10) == 1

    def test_precharge_does_not_increment(self):
        chronus = make_chronus()
        chronus.on_activate(0, 10, 0)
        chronus.on_precharge(0, 10, 50)
        assert chronus.counters.get(0, 10) == 1

    def test_counter_subarray_capacity_overhead_small(self):
        chronus = make_chronus()
        assert chronus.counter_subarray.capacity_overhead < 0.001


class TestChronusBackoff:
    def test_backoff_asserted_when_row_reaches_threshold(self):
        chronus = make_chronus(nbo=3)
        for cycle in range(3):
            chronus.on_activate(0, 5, cycle)
        assert chronus.backoff_asserted()
        assert chronus.stats.backoffs == 1

    def test_backoff_stays_asserted_until_all_hot_rows_refreshed(self):
        chronus = make_chronus(nbo=2)
        for row in (1, 2):
            chronus.on_activate(0, row, 0)
            chronus.on_activate(0, row, 1)
        assert chronus.pending_hot_rows() == 2
        chronus.on_rfm([0], 10)
        assert chronus.backoff_asserted()
        chronus.on_rfm([0], 20)
        assert not chronus.backoff_asserted()
        assert chronus.pending_hot_rows() == 0

    def test_no_delay_period(self):
        chronus = make_chronus(nbo=2)
        chronus.on_activate(0, 1, 0)
        chronus.on_activate(0, 1, 1)
        chronus.on_rfm([0], 5)
        assert not chronus.backoff_asserted()
        # A new hot row re-asserts the back-off immediately: no delay period.
        chronus.on_activate(0, 2, 6)
        chronus.on_activate(0, 2, 7)
        assert chronus.backoff_asserted()
        assert chronus.activations_until_next_backoff() is None

    def test_rfm_refreshes_hottest_row_per_bank(self):
        chronus = make_chronus(nbo=2)
        chronus.on_activate(0, 1, 0)
        chronus.on_activate(0, 1, 1)
        chronus.on_activate(0, 2, 2)
        chronus.on_activate(0, 2, 3)
        chronus.on_activate(0, 2, 4)
        chronus.on_rfm([0], 10)
        # Row 2 (count 3) is refreshed first.
        assert chronus.counters.get(0, 2) == 0
        assert chronus.counters.get(0, 1) == 2

    def test_rfm_counts_victim_rows(self):
        chronus = make_chronus(nbo=1)
        chronus.on_activate(0, 1, 0)
        chronus.on_activate(1, 5, 0)
        refreshed = chronus.on_rfm([0, 1, 2, 3], 5)
        assert refreshed == 2 * chronus.victim_rows_per_aggressor

    def test_wants_more_rfm_mirrors_backoff(self):
        chronus = make_chronus(nbo=1)
        chronus.on_activate(0, 1, 0)
        assert chronus.wants_more_rfm()
        chronus.on_rfm([0], 1)
        assert not chronus.wants_more_rfm()


class TestBorrowedRefreshAndReset:
    def test_borrowed_refresh_resets_tracked_max(self):
        chronus = make_chronus(nbo=100)
        chronus.on_activate(0, 9, 0)
        chronus.on_periodic_refresh([0], 100)
        assert chronus.stats.borrowed_refreshes == chronus.victim_rows_per_aggressor
        assert chronus.counters.get(0, 9) == 0

    def test_refresh_window_clears_everything(self):
        chronus = make_chronus(nbo=1)
        chronus.on_activate(0, 1, 0)
        chronus.on_refresh_window(100)
        assert not chronus.backoff_asserted()
        assert chronus.counters.get(0, 1) == 0

    def test_reset(self):
        chronus = make_chronus(nbo=1)
        chronus.on_activate(0, 1, 0)
        chronus.reset()
        assert not chronus.backoff_asserted()
        assert chronus.stats.tracked_activations == 0

    def test_storage_same_as_prac(self):
        chronus = Chronus(nrh=256, num_banks=4)
        prac = PRAC(nrh=256, num_banks=4, nbo=4)
        assert chronus.storage_overhead_bits(64, 131072) == prac.storage_overhead_bits(
            64, 131072
        )


class TestChronusPB:
    def test_uses_baseline_timings_but_prac_backoff(self):
        pb = ChronusPB(nrh=1024, num_banks=4)
        assert pb.requires_prac_timings is False
        assert pb.name == "Chronus-PB"
        assert pb.nref == 4

    def test_behaves_like_prac_for_backoff(self):
        pb = ChronusPB(nrh=1024, num_banks=4, nbo=1)
        pb.on_precharge(0, 1, 0)
        assert pb.backoff_asserted()
        for _ in range(4):
            pb.on_rfm([0], 10)
        assert not pb.backoff_asserted()
        # Delay period exists (inherited from PRAC).
        assert pb.activations_until_next_backoff() == 4

    def test_ccu_energy_multiplier(self):
        assert ChronusPB.act_energy_multiplier == Chronus.act_energy_multiplier
