"""Tests for the wave-attack security analysis (§5, §8)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.security import (
    DEFAULT_PARAMETERS,
    SecurityParameters,
    att_required_entries,
    chronus_max_activations,
    chronus_secure_backoff_threshold,
    minimum_secure_nrh_chronus,
    minimum_secure_nrh_prac,
    minimum_secure_nrh_prfm,
    prac_max_activations,
    prac_security_sweep,
    prfm_max_activations,
    prfm_security_sweep,
    secure_prac_backoff_threshold,
    secure_prfm_threshold,
)


class TestParameters:
    def test_normal_traffic_activations(self):
        params = DEFAULT_PARAMETERS
        assert params.normal_traffic_activations == int(180 // 52)
        assert params.normal_traffic_activations_chronus == int(180 // 47)

    def test_custom_parameters(self):
        params = SecurityParameters(taboact_ns=360.0, trc_prac_ns=60.0)
        assert params.normal_traffic_activations == 6


class TestPrfmAnalysis:
    def test_larger_threshold_allows_more_activations(self):
        low = prfm_max_activations(4, 8192)
        high = prfm_max_activations(64, 8192)
        assert high > low

    def test_very_aggressive_threshold_bounds_attack_tightly(self):
        assert prfm_max_activations(2, 65536) < 32

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            prfm_max_activations(0, 100)
        with pytest.raises(ValueError):
            prfm_max_activations(4, 0)

    def test_sweep_shape(self):
        sweep = prfm_security_sweep([2, 8], [1024, 4096])
        assert set(sweep.keys()) == {2, 8}
        assert set(sweep[2].keys()) == {1024, 4096}

    def test_paper_claim_low_nrh_needs_threshold_below_four(self):
        """For N_RH = 32 only RFMth < 4 keeps the attack below threshold."""
        assert secure_prfm_threshold(32) < 4

    def test_secure_threshold_monotone_in_nrh(self):
        assert secure_prfm_threshold(1024) >= secure_prfm_threshold(128) >= secure_prfm_threshold(32)


class TestPracAnalysis:
    def test_more_rfms_per_backoff_is_more_secure(self):
        """Worst case over starting row-set sizes: PRAC-4 bounds the attack
        more tightly than PRAC-1."""
        row_sets = (2048, 8192, 65536)
        prac1 = max(prac_max_activations(1, 1, r1) for r1 in row_sets)
        prac4 = max(prac_max_activations(1, 4, r1) for r1 in row_sets)
        assert prac4 <= prac1

    def test_higher_backoff_threshold_allows_more_activations(self):
        low = prac_max_activations(1, 4, 8192)
        high = prac_max_activations(64, 4, 8192)
        assert high > low

    def test_minimum_secure_nrh_close_to_paper(self):
        """The paper reports PRAC-4 is secure down to N_RH = 20."""
        minimum = minimum_secure_nrh_prac(4)
        assert 16 <= minimum <= 24

    def test_prac1_needs_higher_nrh_than_prac4(self):
        assert minimum_secure_nrh_prac(1) > minimum_secure_nrh_prac(4)

    def test_sweep_worst_case_over_row_sets(self):
        sweep = prac_security_sweep([1, 8], [1, 4], [2048, 65536])
        assert sweep[8][4] >= sweep[1][4]

    def test_secure_nbo_monotone_in_nrh(self):
        assert (
            secure_prac_backoff_threshold(1024, 4)
            >= secure_prac_backoff_threshold(128, 4)
            >= secure_prac_backoff_threshold(20, 4)
        )

    def test_insecure_configuration_raises(self):
        with pytest.raises(ValueError):
            secure_prac_backoff_threshold(4, 1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            prac_max_activations(0, 4, 100)
        with pytest.raises(ValueError):
            prac_max_activations(1, 0, 100)


class TestChronusAnalysis:
    def test_closed_form_bound(self):
        anormal = DEFAULT_PARAMETERS.normal_traffic_activations_chronus
        assert chronus_max_activations(16) == 16 + anormal

    def test_secure_threshold_at_nrh_20_matches_paper(self):
        """§11 configures Chronus with NBO = 16 at N_RH = 20."""
        assert chronus_secure_backoff_threshold(20) == 16

    def test_secure_threshold_capped_at_counter_range(self):
        assert chronus_secure_backoff_threshold(100_000) == 256

    def test_bound_below_nrh_for_secure_threshold(self):
        for nrh in (20, 32, 64, 128, 1024):
            nbo = chronus_secure_backoff_threshold(nrh)
            assert chronus_max_activations(nbo) < nrh

    def test_unconfigurable_threshold_raises(self):
        with pytest.raises(ValueError):
            chronus_secure_backoff_threshold(3)

    def test_att_sizing(self):
        assert att_required_entries() == DEFAULT_PARAMETERS.normal_traffic_activations_chronus + 1
        assert att_required_entries(prac_timings=True) == (
            DEFAULT_PARAMETERS.normal_traffic_activations + 1
        )


class TestCrossMechanismClaims:
    def test_chronus_tolerates_lower_nrh_than_prac(self):
        """Chronus stays secure at thresholds where PRAC-1 cannot."""
        nrh = 32
        chronus_secure_backoff_threshold(nrh)  # does not raise
        with pytest.raises(ValueError):
            secure_prac_backoff_threshold(nrh, 1)

    def test_chronus_threshold_far_larger_than_prac_at_low_nrh(self):
        nrh = 20
        chronus_nbo = chronus_secure_backoff_threshold(nrh)
        prac_nbo = secure_prac_backoff_threshold(nrh, 4)
        assert chronus_nbo > 2 * prac_nbo


class TestBoundaryBehaviour:
    """Edge / boundary behaviour of the secure-configuration search
    (consumed by the red-team engine's analytical comparison)."""

    def test_minimum_secure_nrh_prac_monotone_in_nref(self):
        """More RFMs per back-off never raise the security floor."""
        assert (
            minimum_secure_nrh_prac(1)
            >= minimum_secure_nrh_prac(2)
            >= minimum_secure_nrh_prac(4)
        )

    def test_minimum_secure_nrh_prac_is_tight(self):
        """At the minimum a secure NBO exists; one below it none does."""
        for nref in (1, 2, 4):
            minimum = minimum_secure_nrh_prac(nref)
            assert secure_prac_backoff_threshold(minimum, nref) >= 1
            with pytest.raises(ValueError):
                secure_prac_backoff_threshold(minimum - 1, nref)

    def test_minimum_secure_nrh_prfm_is_tight(self):
        minimum = minimum_secure_nrh_prfm()
        assert secure_prfm_threshold(minimum) >= 2
        with pytest.raises(ValueError):
            secure_prfm_threshold(minimum - 1)

    def test_minimum_secure_nrh_chronus_is_tight(self):
        minimum = minimum_secure_nrh_chronus()
        assert minimum == DEFAULT_PARAMETERS.normal_traffic_activations_chronus + 2
        # The smallest workable configuration is NBO = 1...
        assert chronus_secure_backoff_threshold(minimum) == 1
        # ...and one threshold below it no configuration exists.
        with pytest.raises(ValueError):
            chronus_secure_backoff_threshold(minimum - 1)

    @settings(max_examples=40, deadline=None)
    @given(nrh=st.integers(min_value=5, max_value=2048))
    def test_chronus_secure_backoff_threshold_monotone(self, nrh):
        """NBO(N_RH) never decreases when the threshold relaxes by one."""
        assert chronus_secure_backoff_threshold(nrh + 1) >= (
            chronus_secure_backoff_threshold(nrh)
        )

    def test_chronus_counter_width_cap_boundary(self):
        """The 8-bit counter cap engages exactly at Anormal + 257."""
        anormal = DEFAULT_PARAMETERS.normal_traffic_activations_chronus
        cap_boundary = 256 + anormal + 1
        assert chronus_secure_backoff_threshold(cap_boundary) == 256
        assert chronus_secure_backoff_threshold(cap_boundary - 1) == 255
        assert chronus_secure_backoff_threshold(cap_boundary + 100) == 256

    def test_prfm_max_activations_single_row_set(self):
        """|R1| = 1 with RFMth = 1: the first round already mitigates."""
        assert prfm_max_activations(1, 1) == 1

    def test_prfm_max_activations_threshold_of_one_bounds_tightest(self):
        """RFMth = 1 is the most aggressive configuration of all."""
        for rows in (2048, 65536):
            assert prfm_max_activations(1, rows) <= prfm_max_activations(2, rows)

    def test_prfm_max_activations_huge_threshold_window_bound(self):
        """A threshold larger than the window's activation budget never
        triggers an RFM: the refresh window is the only limit."""
        window_rounds = prfm_max_activations(1 << 30, 2048)
        budget = DEFAULT_PARAMETERS.trefw_ns / (2048 * DEFAULT_PARAMETERS.trc_ns)
        assert window_rounds == int(budget)

    @settings(max_examples=40, deadline=None)
    @given(
        threshold=st.integers(min_value=1, max_value=64),
        rows=st.sampled_from([512, 2048, 8192]),
    )
    def test_prfm_survivor_outlasts_threshold_rounds(self, threshold, rows):
        """Mitigation removes at most one row per ``RFMth`` activations, so
        (while the refresh window is not binding -- guaranteed by the bounded
        parameter ranges) the last survivor sees at least ``RFMth`` rounds.

        Note that ``prfm_max_activations`` is *not* pointwise monotone in the
        threshold for a fixed ``|R1|``: a larger threshold keeps rounds large,
        so fewer rounds fit into the refresh window (Eq. 1's two competing
        terms); only this lower bound holds unconditionally.
        """
        assert prfm_max_activations(threshold, rows) >= threshold


@settings(max_examples=30, deadline=None)
@given(
    nbo=st.integers(min_value=1, max_value=64),
    nref=st.sampled_from([1, 2, 4]),
    rows=st.sampled_from([2048, 8192, 65536]),
)
def test_prac_attack_count_at_least_initialisation(nbo, nref, rows):
    result = prac_max_activations(nbo, nref, rows)
    assert result >= nbo - 1


@settings(max_examples=30, deadline=None)
@given(
    threshold=st.integers(min_value=2, max_value=256),
    rows=st.sampled_from([2048, 8192, 65536]),
)
def test_prfm_attack_count_positive_and_bounded_by_window(threshold, rows):
    result = prfm_max_activations(threshold, rows)
    assert 1 <= result <= DEFAULT_PARAMETERS.trefw_ns / DEFAULT_PARAMETERS.trc_ns
