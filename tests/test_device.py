"""Tests for the DRAM device (rank constraints, REF/RFM, mitigation hooks)."""

from typing import List

import pytest

from repro.core.mitigation import OnDieMitigation
from repro.dram.bank import TimingViolation
from repro.dram.device import DramDevice
from repro.dram.organization import DramOrganization
from repro.dram.timing import ddr5_3200an


SMALL_ORG = DramOrganization(ranks=2, bankgroups=2, banks_per_group=2, rows=1024, columns=32)


class RecordingMitigation(OnDieMitigation):
    """Minimal on-die mechanism that records every hook invocation."""

    name = "recorder"

    def __init__(self):
        super().__init__(nrh=1000)
        self.activations: List[tuple] = []
        self.precharges: List[tuple] = []
        self.refreshes: List[tuple] = []
        self.rfms: List[tuple] = []
        self._assert = False

    def on_activate(self, bank_id, row, cycle):
        self.activations.append((bank_id, row, cycle))

    def on_precharge(self, bank_id, row, cycle):
        self.precharges.append((bank_id, row, cycle))

    def on_periodic_refresh(self, bank_ids, cycle):
        self.refreshes.append((tuple(bank_ids), cycle))

    def backoff_asserted(self):
        return self._assert

    def on_rfm(self, bank_ids, cycle):
        self.rfms.append((tuple(bank_ids), cycle))
        self._assert = False
        return 4 * len(bank_ids)


@pytest.fixture
def device():
    return DramDevice(SMALL_ORG, ddr5_3200an())


@pytest.fixture
def device_with_mech():
    mech = RecordingMitigation()
    return DramDevice(SMALL_ORG, ddr5_3200an(), mitigation=mech), mech


class TestGeometryHelpers:
    def test_rank_of_bank(self, device):
        assert device.rank_of_bank(0) == 0
        assert device.rank_of_bank(SMALL_ORG.banks_per_rank) == 1

    def test_banks_in_rank(self, device):
        banks = device.banks_in_rank(1)
        assert len(banks) == SMALL_ORG.banks_per_rank
        assert min(banks) == SMALL_ORG.banks_per_rank

    def test_rejects_controller_side_mechanism(self):
        from repro.core.mitigation import NoMitigation

        with pytest.raises(ValueError):
            DramDevice(SMALL_ORG, ddr5_3200an(), mitigation=NoMitigation())


class TestRankLevelConstraints:
    def test_trrd_between_acts_same_rank(self, device):
        device.activate(0, 1, 0)
        assert not device.can_activate(1, device.timing.tRRD - 1)
        assert device.can_activate(1, device.timing.tRRD)

    def test_other_rank_unaffected_by_trrd(self, device):
        device.activate(0, 1, 0)
        other = SMALL_ORG.banks_per_rank
        assert device.can_activate(other, 1)

    def test_tfaw_limits_burst_of_activations(self):
        # Use a stretched tFAW so the four-activate window (and not tRRD) is
        # the binding constraint for the fifth activation.  The organization
        # needs at least five banks in one rank.
        org = DramOrganization(ranks=1, bankgroups=4, banks_per_group=2,
                               rows=1024, columns=32)
        timing = ddr5_3200an().with_overrides(tFAW=200)
        device = DramDevice(org, timing)
        cycle = 0
        for bank in range(4):
            device.activate(bank, 1, cycle)
            cycle += timing.tRRD
        fifth_bank = 4
        assert not device.can_activate(fifth_bank, cycle)
        assert not device.can_activate(fifth_bank, 199)
        assert device.can_activate(fifth_bank, 200)

    def test_activate_raises_on_rank_violation(self, device):
        device.activate(0, 1, 0)
        with pytest.raises(TimingViolation):
            device.activate(1, 1, 0)


class TestCommandsAndCounts:
    def test_read_write_counts(self, device):
        t = device.timing
        device.activate(0, 5, 0)
        device.read(0, t.tRCD)
        device.write(0, t.tRCD + t.tCCD)
        device.precharge(0, t.tRCD + t.tCCD + t.tCWL + t.tBL + t.tWR)
        counts = device.command_counts
        assert counts["ACT"] == 1
        assert counts["RD"] == 1
        assert counts["WR"] == 1
        assert counts["PRE"] == 1
        assert device.total_activations() == 1

    def test_open_row(self, device):
        assert device.open_row(0) is None
        device.activate(0, 9, 0)
        assert device.open_row(0) == 9


class TestRefreshAndRfm:
    def test_refresh_blocks_all_banks_of_rank(self, device):
        device.refresh(0, 0)
        for bank_id in device.banks_in_rank(0):
            assert not device.can_activate(bank_id, device.timing.tRFC - 1)
            assert device.can_activate(bank_id, device.timing.tRFC)
        # The other rank is unaffected.
        assert device.can_activate(SMALL_ORG.banks_per_rank, 1)

    def test_refresh_requires_idle_banks(self, device):
        device.activate(0, 1, 0)
        assert not device.can_refresh(0, 10)
        with pytest.raises(TimingViolation):
            device.refresh(0, 10)

    def test_rfm_blocks_target_banks(self, device):
        device.rfm([0, 1], 0)
        assert not device.can_activate(0, device.timing.tRFM - 1)
        assert device.can_activate(0, device.timing.tRFM)
        assert device.command_counts["RFM"] == 1

    def test_victim_refresh_counts_rows(self, device):
        device.victim_refresh(2, num_rows=4, cycle=0)
        assert device.command_counts["VRR"] == 4


class TestMitigationHooks:
    def test_activate_and_precharge_hooks(self, device_with_mech):
        device, mech = device_with_mech
        device.activate(0, 7, 0)
        device.precharge(0, device.timing.tRAS)
        assert mech.activations == [(0, 7, 0)]
        assert mech.precharges == [(0, 7, device.timing.tRAS)]

    def test_refresh_hook_receives_rank_banks(self, device_with_mech):
        device, mech = device_with_mech
        device.refresh(1, 0)
        assert len(mech.refreshes) == 1
        banks, cycle = mech.refreshes[0]
        assert set(banks) == set(device.banks_in_rank(1))

    def test_rfm_hook_and_victim_accounting(self, device_with_mech):
        device, mech = device_with_mech
        refreshed = device.rfm([0, 1, 2], 0)
        assert refreshed == 12
        assert device.internal_victim_rows == 12
        assert len(mech.rfms) == 1

    def test_backoff_propagation(self, device_with_mech):
        device, mech = device_with_mech
        assert not device.backoff_asserted()
        mech._assert = True
        assert device.backoff_asserted()
        assert device.wants_more_rfm()
        device.rfm(device.banks_in_rank(0), 0)
        assert not device.backoff_asserted()

    def test_no_mitigation_no_backoff(self, device):
        assert not device.backoff_asserted()
        assert not device.wants_more_rfm()
        assert device.rfm([0], 0) == 0
