"""Tests for the ground-truth disturbance oracle and its simulator wiring."""

import pytest

from repro.attacks.oracle import DisturbanceOracle
from repro.attacks.patterns import AttackSpec
from repro.system.config import paper_system_config
from repro.system.simulator import simulate


class TestOracleUnit:
    def test_counts_and_peak(self):
        oracle = DisturbanceOracle(nrh=10)
        for _ in range(3):
            oracle.on_activate(0, 5, cycle=0)
        oracle.on_activate(1, 5, cycle=0)
        assert oracle.current_count(0, 5) == 3
        assert oracle.current_count(1, 5) == 1
        assert oracle.max_disturbance == 3
        assert (oracle.peak_bank, oracle.peak_row) == (0, 5)
        assert not oracle.escaped

    def test_escape_records_first_cycle(self):
        oracle = DisturbanceOracle(nrh=2)
        oracle.on_activate(0, 7, cycle=10)
        assert not oracle.escaped
        oracle.on_activate(0, 7, cycle=20)
        oracle.on_activate(0, 7, cycle=30)
        assert oracle.escaped
        assert oracle.first_escape_cycle == 20

    def test_full_refresh_resets_count(self):
        oracle = DisturbanceOracle(nrh=100, blast_radius=2)
        for _ in range(5):
            oracle.on_activate(0, 7, cycle=0)
        oracle.on_victims_refreshed(0, 7, num_rows=4, cycle=1)
        assert oracle.current_count(0, 7) == 0
        # The historical peak is preserved.
        assert oracle.max_disturbance == 5

    def test_partial_refresh_scales_count(self):
        oracle = DisturbanceOracle(nrh=100, blast_radius=2)
        for _ in range(8):
            oracle.on_activate(0, 7, cycle=0)
        # PARA-style: one of four victims refreshed -> 3/4 of the count stays.
        oracle.on_victims_refreshed(0, 7, num_rows=1, cycle=1)
        assert oracle.current_count(0, 7) == 6

    def test_device_chosen_refresh_resets_hottest_row(self):
        oracle = DisturbanceOracle(nrh=100)
        for _ in range(3):
            oracle.on_activate(0, 1, cycle=0)
        for _ in range(5):
            oracle.on_activate(0, 2, cycle=0)
        oracle.on_activate(1, 3, cycle=0)
        oracle.on_victims_refreshed(0, None, num_rows=4, cycle=1)
        assert oracle.current_count(0, 2) == 0
        assert oracle.current_count(0, 1) == 3
        assert oracle.current_count(1, 3) == 1

    def test_refresh_of_untouched_row_is_noop(self):
        oracle = DisturbanceOracle(nrh=100)
        oracle.on_victims_refreshed(0, 9, num_rows=4, cycle=0)
        oracle.on_victims_refreshed(0, None, num_rows=4, cycle=0)
        assert oracle.rows_tracked() == 0

    def test_stats_dict_contents(self):
        oracle = DisturbanceOracle(nrh=1)
        oracle.on_activate(0, 0, cycle=42)
        stats = oracle.stats_dict()
        assert stats["oracle_escaped"] == 1
        assert stats["oracle_first_escape_cycle"] == 42
        assert stats["oracle_max_disturbance"] == 1
        assert stats["oracle_activations"] == 1
        assert stats["oracle_rows_tracked"] == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DisturbanceOracle(nrh=0)
        with pytest.raises(ValueError):
            DisturbanceOracle(nrh=1, blast_radius=0)


def run_attack(mechanism, nrh, spec=None, oracle_nrh=None):
    """Simulate one single-core attack with an oracle attached."""
    spec = spec or AttackSpec.create("single_sided", {"hammer_count": 300})
    config = paper_system_config(
        mechanism=mechanism, nrh=nrh, num_cores=1, attacker_cores=(0,)
    )
    oracle = DisturbanceOracle(nrh=oracle_nrh or nrh, blast_radius=config.blast_radius)
    result = simulate(config, [spec.compile()], oracle=oracle)
    return result, oracle


class TestSimulatorWiring:
    def test_no_mitigation_lets_attack_escape(self):
        result, oracle = run_attack("None", nrh=4)
        assert oracle.escaped
        assert result.mitigation_stats["oracle_escaped"] == 1
        assert (
            result.mitigation_stats["oracle_max_disturbance"]
            == oracle.max_disturbance
        )

    def test_oracle_sees_every_act(self):
        result, oracle = run_attack("None", nrh=4)
        assert oracle.activations_observed == result.command_counts["ACT"]

    def test_graphene_resets_counts_via_listener(self):
        _, oracle = run_attack("Graphene", nrh=8)
        assert oracle.mitigation_events > 0
        assert not oracle.escaped

    def test_chronus_keeps_attack_below_threshold(self):
        result, oracle = run_attack("Chronus", nrh=16)
        assert oracle.max_disturbance < 16
        assert result.mitigation_stats["oracle_escaped"] == 0

    def test_prfm_device_chosen_refreshes_observed(self):
        _, oracle = run_attack("PRFM", nrh=16)
        assert oracle.mitigation_events > 0

    def test_prfm_standalone_vs_composite_notification(self):
        """Standalone PRFM reports a device-chosen refresh per RFM; in a
        composite (an on-die mechanism present) the on-die side reports its
        own refreshes, so PRFM must not credit a phantom one -- even when the
        on-die mechanism refreshed zero rows."""
        from repro.core.prfm import PRFM

        events = []
        prfm = PRFM(nrh=64, num_banks=4)
        prfm.add_mitigation_listener(lambda *event: events.append(event))
        prfm.acknowledge_rfm(0, cycle=5)  # no on-die mechanism
        assert len(events) == 1 and events[0][1] is None
        prfm.acknowledge_rfm(0, cycle=6, on_die_refreshed=0)  # composite
        prfm.acknowledge_rfm(0, cycle=7, on_die_refreshed=4)
        assert len(events) == 1

    def test_para_partial_refreshes_observed(self):
        _, oracle = run_attack("PARA", nrh=8)
        assert oracle.mitigation_events > 0
        assert not oracle.escaped

    def test_result_without_oracle_has_no_oracle_stats(self):
        config = paper_system_config(mechanism="None", nrh=4, num_cores=1)
        spec = AttackSpec.create("single_sided", {"hammer_count": 50})
        result = simulate(config, [spec.compile()])
        assert "oracle_escaped" not in result.mitigation_stats
