"""Dict/array counter-store backend equivalence.

The array-backed data plane (PR 5) must be *observably identical* to the
dict reference layout: same counter values, same victim sets, same eviction
order, same statistics -- byte for byte, so cached simulation results never
depend on the backend.  Three layers pin that:

1. randomized ACT streams (Hypothesis) driven through Graphene / ABACuS /
   Hydra / PRAC / Chronus pairs built on both backends, comparing every
   observable after every event;
2. direct store-level equivalence for :class:`PerRowCounters` and
   :class:`AggressorTrackingTable` (values, insertion order, eviction and
   tie-breaking, threshold-bucket fast path);
3. the full-simulator property test: for all 12 mechanisms x 1,2 channels
   the complete :class:`SimulationResult` payload is byte-identical across
   backends (``REPRO_COUNTER_BACKEND`` toggles the default the factory
   resolves).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.abacus import ABACuS
from repro.core.chronus import Chronus
from repro.core.counters import (
    COUNTER_BACKENDS,
    AggressorTrackingTable,
    PerRowCounters,
    resolve_backend,
)
from repro.core.factory import MECHANISM_NAMES, build_mechanism
from repro.core.graphene import Graphene
from repro.core.hydra import Hydra
from repro.core.prac import PRAC
from repro.experiments.cache import result_to_dict
from repro.experiments.sweep import build_job_traces, mechanism_job
from repro.system.config import paper_system_config
from repro.system.simulator import simulate

NUM_BANKS = 4

#: (bank, row) event streams: small domains force table collisions,
#: spillover evictions, RAV reuse and group promotions.
act_streams = st.lists(
    st.tuples(st.integers(0, NUM_BANKS - 1), st.integers(0, 9)),
    min_size=1,
    max_size=300,
)


def drain_refreshes(mechanism):
    """Pop every queued preventive refresh, in bank-then-FIFO order."""
    drained = []
    for bank_id in sorted(mechanism.banks_with_pending_refreshes()):
        while True:
            refresh = mechanism.pop_refresh(bank_id)
            if refresh is None:
                break
            drained.append((refresh.bank_id, refresh.aggressor_row, refresh.num_rows))
    return drained


def controller_observables(mechanism):
    return {
        "stats": mechanism.stats.as_dict(),
        "refreshes": drain_refreshes(mechanism),
    }


class TestControllerMechanismStreams:
    """Graphene / ABACuS / Hydra: identical victims for identical streams."""

    @settings(max_examples=40, deadline=None)
    @given(stream=act_streams)
    def test_graphene_equivalent(self, stream):
        pair = [
            Graphene(nrh=4, num_banks=NUM_BANKS, table_entries=3, backend=backend)
            for backend in COUNTER_BACKENDS
        ]
        self._assert_stream_equivalence(pair, stream)

    @settings(max_examples=40, deadline=None)
    @given(stream=act_streams)
    def test_abacus_equivalent(self, stream):
        pair = [
            ABACuS(nrh=4, num_banks=NUM_BANKS, table_entries=3, backend=backend)
            for backend in COUNTER_BACKENDS
        ]
        self._assert_stream_equivalence(pair, stream)

    @settings(max_examples=40, deadline=None)
    @given(stream=act_streams)
    def test_hydra_equivalent(self, stream):
        pair = [
            Hydra(nrh=8, num_banks=NUM_BANKS, group_size=4, rcc_entries=4,
                  backend=backend)
            for backend in COUNTER_BACKENDS
        ]
        self._assert_stream_equivalence(pair, stream)

    def _assert_stream_equivalence(self, pair, stream):
        dict_mech, array_mech = pair
        assert dict_mech.backend == "dict" and array_mech.backend == "array"
        for cycle, (bank, row) in enumerate(stream):
            dict_mech.on_activate(bank, row, cycle)
            array_mech.on_activate(bank, row, cycle)
            # Reset windows mid-stream exercise the clear paths too.
            if cycle % 97 == 96:
                dict_mech.on_refresh_window(cycle)
                array_mech.on_refresh_window(cycle)
        assert controller_observables(dict_mech) == controller_observables(array_mech)


class TestOnDieMechanismStreams:
    """PRAC / Chronus: identical back-off, RFM victims and counter state."""

    @settings(max_examples=40, deadline=None)
    @given(stream=act_streams)
    def test_prac_equivalent(self, stream):
        pair = [
            PRAC(nrh=64, num_banks=NUM_BANKS, nbo=4, att_entries=3,
                 backend=backend)
            for backend in COUNTER_BACKENDS
        ]
        self._assert_stream_equivalence(pair, stream, precharge=True)

    @settings(max_examples=40, deadline=None)
    @given(stream=act_streams)
    def test_chronus_equivalent(self, stream):
        pair = [
            Chronus(nrh=64, num_banks=NUM_BANKS, nbo=4, att_entries=3,
                    backend=backend)
            for backend in COUNTER_BACKENDS
        ]
        self._assert_stream_equivalence(pair, stream, precharge=False)

    def _assert_stream_equivalence(self, pair, stream, precharge):
        dict_mech, array_mech = pair
        all_banks = list(range(NUM_BANKS))
        for cycle, (bank, row) in enumerate(stream):
            for mech in pair:
                mech.on_activate(bank, row, cycle)
                if precharge:
                    mech.on_precharge(bank, row, cycle)
            assert dict_mech.backoff_asserted() == array_mech.backoff_asserted()
            # Serve the back-off exactly like the memory controller would.
            while dict_mech.wants_more_rfm():
                assert array_mech.wants_more_rfm()
                assert dict_mech.on_rfm(all_banks, cycle) == array_mech.on_rfm(
                    all_banks, cycle
                )
            assert not array_mech.wants_more_rfm()
            if cycle % 53 == 52:
                dict_mech.on_periodic_refresh(all_banks, cycle)
                array_mech.on_periodic_refresh(all_banks, cycle)
        assert dict_mech.stats.as_dict() == array_mech.stats.as_dict()
        for bank in all_banks:
            for row in range(10):
                assert dict_mech.counters.get(bank, row) == array_mech.counters.get(
                    bank, row
                )
            dict_max = dict_mech.att[bank].max_entry()
            array_max = array_mech.att[bank].max_entry()
            assert (dict_max is None) == (array_max is None)
            if dict_max is not None:
                assert (dict_max.row, dict_max.count) == (
                    array_max.row, array_max.count
                )


row_events = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.integers(0, 15)),
        st.tuples(st.just("reset"), st.integers(0, 15)),
        st.tuples(st.just("reset_bank"), st.just(0)),
    ),
    min_size=1,
    max_size=300,
)


class TestPerRowCountersEquivalence:
    """Store-level: values, iteration order and the bucketed fast path."""

    @settings(max_examples=60, deadline=None)
    @given(events=row_events)
    def test_event_stream_equivalence(self, events):
        dict_store = PerRowCounters(1, backend="dict")
        array_store = PerRowCounters(1, backend="array")
        for kind, row in events:
            if kind == "inc":
                assert dict_store.increment(0, row) == array_store.increment(0, row)
            elif kind == "reset":
                dict_store.reset_row(0, row)
                array_store.reset_row(0, row)
            else:
                dict_store.reset_bank(0)
                array_store.reset_bank(0)
            # Insertion order (including re-insertion after a reset) and the
            # tie-broken maximum must match dict semantics exactly.
            assert list(dict_store.iter_bank(0)) == list(array_store.iter_bank(0))
            assert dict_store.max_row(0) == array_store.max_row(0)
            assert dict_store.nonzero_rows(0) == array_store.nonzero_rows(0)
            for threshold in (1, 2, 3, 5, 100):
                assert dict_store.rows_at_or_above(0, threshold) == (
                    array_store.rows_at_or_above(0, threshold)
                )

    def test_threshold_bucket_fast_path(self):
        store = PerRowCounters(1, backend="array")
        for _ in range(6):
            store.increment(0, 3)
        # 6 < 8: every bucket at or above bit_length(8)=4 is empty, so the
        # negative answer comes from the histogram without a row scan.
        assert store.rows_at_or_above(0, 8) == []
        assert store.rows_at_or_above(0, 6) == [3]
        assert store.rows_at_or_above(0, 7) == []

    def test_compaction_preserves_order(self):
        store = PerRowCounters(1, backend="array")
        for row in range(64):
            store.increment(0, row)
        for row in range(0, 64, 2):
            store.reset_row(0, row)  # many tombstones: forces compaction
        assert [row for row, _ in store.iter_bank(0)] == list(range(1, 64, 2))
        store.increment(0, 0)  # re-enters at the back, like a dict re-insert
        assert [row for row, _ in store.iter_bank(0)] == list(range(1, 64, 2)) + [0]


att_events = st.lists(
    st.one_of(
        st.tuples(st.just("update"), st.integers(0, 9), st.integers(1, 50)),
        st.tuples(st.just("invalidate"), st.integers(0, 9), st.just(0)),
        st.tuples(st.just("pop_max"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=200,
)


class TestAggressorTableEquivalence:
    """Slot/freelist ATT vs the reference entry list, including tie-breaks."""

    @settings(max_examples=60, deadline=None)
    @given(events=att_events)
    def test_event_stream_equivalence(self, events):
        dict_att = AggressorTrackingTable(3, backend="dict")
        array_att = AggressorTrackingTable(3, backend="array")
        for kind, row, count in events:
            if kind == "update":
                dict_att.update(row, count)
                array_att.update(row, count)
            elif kind == "invalidate":
                dict_att.invalidate(row)
                array_att.invalidate(row)
            else:
                # The RFM service pattern: invalidate the current maximum.
                entry = dict_att.max_entry()
                other = array_att.max_entry()
                assert (entry is None) == (other is None)
                if entry is not None:
                    assert (entry.row, entry.count) == (other.row, other.count)
                    dict_att.invalidate(entry.row)
                    array_att.invalidate(entry.row)
            assert len(dict_att) == len(array_att)
            assert dict_att.tracked_rows() == array_att.tracked_rows()
            assert [
                (e.row, e.count) for e in dict_att.valid_entries()
            ] == [(e.row, e.count) for e in array_att.valid_entries()]

    def test_freelist_reuses_lowest_slot_first(self):
        att = AggressorTrackingTable(3, backend="array")
        for row in (10, 11, 12):
            att.update(row, 5)
        att.invalidate(11)
        att.invalidate(10)
        att.update(20, 1)
        # Slot 0 (row 10's) is reused first, exactly like the reference
        # first-invalid-slot scan -- visible through the slot-ordered views.
        assert att.tracked_rows() == [20, 12]


def _result_payload(mechanism, channels, backend, monkeypatch):
    monkeypatch.setenv("REPRO_COUNTER_BACKEND", backend)
    base = paper_system_config().with_overrides(channels=channels)
    job = mechanism_job(base, ("429.mcf", "401.bzip2"), mechanism, 64, 300)
    result = simulate(
        job.config, build_job_traces(job), workload_name=job.workload_name
    )
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestFullSimulationEquivalence:
    """Byte-identical SimulationResult payloads across backends."""

    @pytest.mark.parametrize("channels", (1, 2))
    @pytest.mark.parametrize("mechanism", MECHANISM_NAMES)
    def test_payloads_identical(self, mechanism, channels, monkeypatch):
        dict_payload = _result_payload(mechanism, channels, "dict", monkeypatch)
        array_payload = _result_payload(mechanism, channels, "array", monkeypatch)
        assert dict_payload == array_payload

    def test_env_and_factory_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_COUNTER_BACKEND", raising=False)
        assert resolve_backend(None) == "array"
        monkeypatch.setenv("REPRO_COUNTER_BACKEND", "dict")
        assert resolve_backend(None) == "dict"
        setup = build_mechanism("Graphene", nrh=64, num_banks=4, backend="array")
        assert setup.controller.backend == "array"
        with pytest.raises(ValueError):
            resolve_backend("btree")

class TestCountBufferPooling:
    """adopt/release of preallocated count arrays (the batch engine's pool).

    Pooling is legal because array capacity is unobservable:
    ``release_count_buffers`` resets through the order list, so a recycled
    buffer is value-identical to a freshly allocated one.
    """

    def test_adopt_then_release_round_trip(self):
        store = PerRowCounters(2, backend="array")
        buffers = [[0] * 8, [0] * 4]
        store.adopt_count_buffers(buffers)
        store.increment(0, 3)
        store.increment(0, 3)
        store.increment(1, 1)
        assert store.get(0, 3) == 2
        returned = store.release_count_buffers()
        assert returned is buffers
        # Reset happened through the order list: values are zero again...
        assert all(not any(bank) for bank in returned)
        # ...and the store detached from the pooled arrays entirely.
        store.increment(0, 3)
        assert buffers[0][3] == 0

    def test_pooled_store_matches_fresh_store(self):
        pooled = PerRowCounters(1, backend="array")
        pooled.adopt_count_buffers([[0] * 16])
        fresh = PerRowCounters(1, backend="array")
        for row in (3, 3, 7, 3, 15, 7):
            assert pooled.increment(0, row) == fresh.increment(0, row)
        pooled.reset_row(0, 3)
        fresh.reset_row(0, 3)
        assert list(pooled.iter_bank(0)) == list(fresh.iter_bank(0))
        assert pooled.rows_at_or_above(0, 1) == fresh.rows_at_or_above(0, 1)
        # Growth past the preallocated extent must keep working.
        pooled.increment(0, 5000)
        fresh.increment(0, 5000)
        assert pooled.get(0, 5000) == fresh.get(0, 5000) == 1

    def test_adopt_validates_bank_count(self):
        store = PerRowCounters(2, backend="array")
        with pytest.raises(ValueError, match="2 per-bank buffers"):
            store.adopt_count_buffers([[0] * 4])

    def test_dict_backend_refuses_pooling(self):
        store = PerRowCounters(1, backend="dict")
        with pytest.raises(NotImplementedError, match="'dict'"):
            store.adopt_count_buffers([[0] * 4])
        with pytest.raises(NotImplementedError, match="'dict'"):
            store.release_count_buffers()
