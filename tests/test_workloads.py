"""Tests for synthetic workloads, mixes and attacker traces."""

import pytest

from repro.attacks.patterns import (
    performance_attack_trace,
    wave_attack_addresses,
    wave_attack_trace,
)
from repro.controller.address_mapping import mop_mapping
from repro.dram.organization import PAPER_ORGANIZATION
from repro.workloads.mixes import MIX_TYPES, build_mix_traces, workload_mixes
from repro.workloads.synthetic import (
    APP_PROFILES,
    app_names,
    apps_by_category,
    generate_trace,
    profile_by_name,
)


class TestProfiles:
    def test_57_applications(self):
        assert len(APP_PROFILES) == 57

    def test_names_unique(self):
        names = [profile.name for profile in APP_PROFILES]
        assert len(names) == len(set(names))

    def test_three_intensity_classes_populated(self):
        categories = apps_by_category()
        assert set(categories) == {"H", "M", "L"}
        assert all(len(apps) >= 15 for apps in categories.values())

    def test_paper_fig7_names_present(self):
        for name in ("429.mcf", "470.lbm", "519.lbm", "tpch2", "jp2_encode", "507.cactuBSSN"):
            assert profile_by_name(name).category == "H"

    def test_high_intensity_more_memory_bound_than_low(self):
        h_mean = sum(p.apki for p in APP_PROFILES if p.category == "H") / len(app_names("H"))
        l_mean = sum(p.apki for p in APP_PROFILES if p.category == "L") / len(app_names("L"))
        assert h_mean > 3 * l_mean

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("notabenchmark")

    def test_invalid_category(self):
        with pytest.raises(ValueError):
            app_names("X")


class TestTraceGeneration:
    def test_deterministic(self):
        first = generate_trace("429.mcf", num_accesses=500, seed=3)
        second = generate_trace("429.mcf", num_accesses=500, seed=3)
        assert [e.address for e in first] == [e.address for e in second]

    def test_seed_changes_trace(self):
        first = generate_trace("429.mcf", num_accesses=500, seed=3)
        second = generate_trace("429.mcf", num_accesses=500, seed=4)
        assert [e.address for e in first] != [e.address for e in second]

    def test_base_address_offsets_all_accesses(self):
        base = 1 << 30
        trace = generate_trace("470.lbm", num_accesses=100, seed=0, base_address=base)
        assert all(entry.address >= base for entry in trace)

    def test_apki_roughly_matches_profile(self):
        profile = profile_by_name("462.libquantum")
        trace = generate_trace(profile, num_accesses=5000, seed=1)
        assert trace.accesses_per_kilo_instruction() == pytest.approx(profile.apki, rel=0.4)

    def test_write_fraction_roughly_matches_profile(self):
        profile = profile_by_name("470.lbm")
        trace = generate_trace(profile, num_accesses=5000, seed=1)
        assert trace.write_fraction == pytest.approx(profile.write_fraction, abs=0.1)

    def test_invalid_access_count(self):
        with pytest.raises(ValueError):
            generate_trace("429.mcf", num_accesses=0)


class TestMixes:
    def test_sixty_mixes_by_default(self):
        mixes = workload_mixes()
        assert len(mixes) == 60
        assert {mix.mix_type for mix in mixes} == set(MIX_TYPES)

    def test_mix_composition_matches_type(self):
        for mix in workload_mixes(mixes_per_type=2):
            for app, letter in zip(mix.applications, mix.mix_type):
                assert profile_by_name(app).category == letter

    def test_deterministic_selection(self):
        assert workload_mixes(seed=1) == workload_mixes(seed=1)
        assert workload_mixes(seed=1) != workload_mixes(seed=2)

    def test_build_mix_traces_disjoint_regions(self):
        mix = workload_mixes()[0]
        traces = build_mix_traces(mix, accesses_per_core=200)
        assert len(traces) == 4
        region = PAPER_ORGANIZATION.capacity_bytes // 4
        for slot, trace in enumerate(traces):
            assert all(slot * region <= e.address < (slot + 1) * region for e in trace)

    def test_build_mix_from_plain_list(self):
        traces = build_mix_traces(["429.mcf", "401.bzip2"], accesses_per_core=50)
        assert [t.name for t in traces] == ["429.mcf", "401.bzip2"]

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            build_mix_traces([])


class TestAttackerTraces:
    def test_wave_attack_addresses_target_one_bank(self):
        mapping = mop_mapping(PAPER_ORGANIZATION)
        addresses = wave_attack_addresses(16, bank_index=5)
        banks = {mapping.decode(a).flat_bank(PAPER_ORGANIZATION) for a in addresses}
        assert banks == {5}
        rows = {mapping.decode(a).row for a in addresses}
        assert len(rows) == 16

    def test_wave_attack_trace_round_structure(self):
        trace = wave_attack_trace(num_rows=8, rounds=3)
        assert len(trace) == 8 * 3 * 2
        assert all(entry.gap_instructions == 0 for entry in trace)

    def test_performance_attack_targets_requested_banks(self):
        mapping = mop_mapping(PAPER_ORGANIZATION)
        trace = performance_attack_trace(num_banks=4, rows_per_bank=8, num_accesses=256)
        banks = {mapping.decode(e.address).flat_bank(PAPER_ORGANIZATION) for e in trace}
        assert len(banks) == 4
        rows = {mapping.decode(e.address).row for e in trace}
        assert len(rows) == 8

    def test_performance_attack_no_compute_gaps(self):
        trace = performance_attack_trace(num_accesses=64)
        assert all(entry.gap_instructions == 0 for entry in trace)
        assert len(trace) == 64

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            wave_attack_addresses(0)
        with pytest.raises(ValueError):
            performance_attack_trace(num_banks=0)
        with pytest.raises(ValueError):
            wave_attack_trace(rounds=0)
