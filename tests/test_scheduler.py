"""Tests for the FR-FCFS + Cap scheduler."""

import pytest

from repro.controller.address_mapping import mop_mapping
from repro.controller.request import MemoryRequest, RequestType
from repro.controller.scheduler import FrFcfsCapScheduler
from repro.dram.device import DramDevice
from repro.dram.organization import DramOrganization
from repro.dram.timing import ddr5_3200an


ORG = DramOrganization(ranks=1, bankgroups=2, banks_per_group=2, rows=256, columns=32)


def make_request(bank_id: int, row: int, arrival: int = 0) -> MemoryRequest:
    request = MemoryRequest(
        address=0, request_type=RequestType.READ, core_id=0, arrival_cycle=arrival
    )
    mapping = mop_mapping(ORG)
    request.dram = mapping.decode(0).__class__(
        channel=0, rank=0, bankgroup=bank_id // 2, bank=bank_id % 2, row=row, column=0
    )
    request.bank_id = bank_id
    return request


@pytest.fixture
def device():
    return DramDevice(ORG, ddr5_3200an())


class TestChoose:
    def test_empty_queue(self, device):
        scheduler = FrFcfsCapScheduler()
        assert scheduler.choose([], device) is None

    def test_prefers_row_hit_over_older_conflict(self, device):
        scheduler = FrFcfsCapScheduler()
        device.activate(0, 5, 0)
        older_conflict = make_request(0, 9)
        younger_hit = make_request(0, 5)
        chosen = scheduler.choose([older_conflict, younger_hit], device)
        assert chosen is younger_hit

    def test_fcfs_when_no_hits(self, device):
        scheduler = FrFcfsCapScheduler()
        first = make_request(0, 5)
        second = make_request(1, 6)
        assert scheduler.choose([second, first], device) is first

    def test_cap_limits_reordering(self, device):
        scheduler = FrFcfsCapScheduler(cap=2)
        device.activate(0, 5, 0)
        older_conflict = make_request(0, 9)
        hit = make_request(0, 5)
        # Two hits already bypassed the conflict: the cap is exhausted.
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        assert scheduler.cap_reached(0)
        chosen = scheduler.choose([older_conflict, hit], device)
        assert chosen is older_conflict

    def test_conflict_resets_streak(self, device):
        scheduler = FrFcfsCapScheduler(cap=2)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(0, 9), was_row_hit=False)
        assert scheduler.hit_streak(0) == 0
        assert not scheduler.cap_reached(0)

    def test_hit_in_other_bank_not_blocked_by_cap(self, device):
        scheduler = FrFcfsCapScheduler(cap=1)
        device.activate(1, 7, 0)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        older_other_bank = make_request(0, 9)
        hit = make_request(1, 7)
        # The older request targets a different bank, so the hit proceeds.
        assert scheduler.choose([older_other_bank, hit], device) is hit

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            FrFcfsCapScheduler(cap=0)

    def test_reset(self):
        scheduler = FrFcfsCapScheduler(cap=1)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.reset()
        assert scheduler.hit_streak(0) == 0


class TestRowClosureResetsStreak:
    """The reordering budget belongs to the open row, not the bank.

    A streak accumulated against a row that was closed by a precharge (or a
    REF / RFM, which require the row to already be closed) must not throttle
    the first hits to a freshly opened row.
    """

    def test_on_row_closed_resets_streak(self, device):
        scheduler = FrFcfsCapScheduler(cap=2)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        assert scheduler.cap_reached(0)
        scheduler.on_row_closed(0)
        assert scheduler.hit_streak(0) == 0
        assert not scheduler.cap_reached(0)

    def test_other_banks_unaffected(self, device):
        scheduler = FrFcfsCapScheduler(cap=1)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(1, 7), was_row_hit=True)
        scheduler.on_row_closed(0)
        assert scheduler.hit_streak(0) == 0
        assert scheduler.hit_streak(1) == 1

    def test_fresh_row_hits_not_throttled_after_closure(self, device):
        """After a closure, a hit may again bypass an older conflict."""
        scheduler = FrFcfsCapScheduler(cap=1)
        device.activate(0, 5, 0)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        assert scheduler.cap_reached(0)
        older_conflict = make_request(0, 9)
        hit = make_request(0, 5)
        # Cap exhausted: the older conflict wins ...
        assert scheduler.choose([older_conflict, hit], device) is older_conflict
        # ... until the row closes, which hands the fresh row a fresh budget.
        scheduler.on_row_closed(0)
        assert scheduler.choose([older_conflict, hit], device) is hit

    def test_bucketed_choose_matches_flat_choose(self, device):
        """choose_from_buckets picks exactly what the flat scan picks."""
        flat = FrFcfsCapScheduler(cap=2)
        bucketed = FrFcfsCapScheduler(cap=2)
        device.activate(0, 5, 0)
        requests = [
            make_request(0, 9),   # oldest: conflict on bank 0
            make_request(1, 3),   # bank 1 (idle)
            make_request(0, 5),   # hit on bank 0
            make_request(0, 5),   # younger hit on bank 0
        ]
        buckets = {}
        for request in requests:
            buckets.setdefault(request.bank_id, []).append(request)
        for streak in range(4):
            assert flat.choose(requests, device) is bucketed.choose_from_buckets(
                buckets, device
            )
            flat.on_scheduled(make_request(0, 5), was_row_hit=True)
            bucketed.on_scheduled(make_request(0, 5), was_row_hit=True)
