"""Tests for the FR-FCFS + Cap scheduler."""

import pytest

from repro.controller.address_mapping import mop_mapping
from repro.controller.request import MemoryRequest, RequestType
from repro.controller.scheduler import FrFcfsCapScheduler
from repro.dram.device import DramDevice
from repro.dram.organization import DramOrganization
from repro.dram.timing import ddr5_3200an


ORG = DramOrganization(ranks=1, bankgroups=2, banks_per_group=2, rows=256, columns=32)


def make_request(bank_id: int, row: int, arrival: int = 0) -> MemoryRequest:
    request = MemoryRequest(
        address=0, request_type=RequestType.READ, core_id=0, arrival_cycle=arrival
    )
    mapping = mop_mapping(ORG)
    request.dram = mapping.decode(0).__class__(
        channel=0, rank=0, bankgroup=bank_id // 2, bank=bank_id % 2, row=row, column=0
    )
    request.bank_id = bank_id
    return request


@pytest.fixture
def device():
    return DramDevice(ORG, ddr5_3200an())


class TestChoose:
    def test_empty_queue(self, device):
        scheduler = FrFcfsCapScheduler()
        assert scheduler.choose([], device) is None

    def test_prefers_row_hit_over_older_conflict(self, device):
        scheduler = FrFcfsCapScheduler()
        device.activate(0, 5, 0)
        older_conflict = make_request(0, 9)
        younger_hit = make_request(0, 5)
        chosen = scheduler.choose([older_conflict, younger_hit], device)
        assert chosen is younger_hit

    def test_fcfs_when_no_hits(self, device):
        scheduler = FrFcfsCapScheduler()
        first = make_request(0, 5)
        second = make_request(1, 6)
        assert scheduler.choose([second, first], device) is first

    def test_cap_limits_reordering(self, device):
        scheduler = FrFcfsCapScheduler(cap=2)
        device.activate(0, 5, 0)
        older_conflict = make_request(0, 9)
        hit = make_request(0, 5)
        # Two hits already bypassed the conflict: the cap is exhausted.
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        assert scheduler.cap_reached(0)
        chosen = scheduler.choose([older_conflict, hit], device)
        assert chosen is older_conflict

    def test_conflict_resets_streak(self, device):
        scheduler = FrFcfsCapScheduler(cap=2)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.on_scheduled(make_request(0, 9), was_row_hit=False)
        assert scheduler.hit_streak(0) == 0
        assert not scheduler.cap_reached(0)

    def test_hit_in_other_bank_not_blocked_by_cap(self, device):
        scheduler = FrFcfsCapScheduler(cap=1)
        device.activate(1, 7, 0)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        older_other_bank = make_request(0, 9)
        hit = make_request(1, 7)
        # The older request targets a different bank, so the hit proceeds.
        assert scheduler.choose([older_other_bank, hit], device) is hit

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            FrFcfsCapScheduler(cap=0)

    def test_reset(self):
        scheduler = FrFcfsCapScheduler(cap=1)
        scheduler.on_scheduled(make_request(0, 5), was_row_hit=True)
        scheduler.reset()
        assert scheduler.hit_streak(0) == 0
