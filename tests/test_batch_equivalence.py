"""Batch-vs-scalar engine equivalence.

The batch-vectorized engine (:mod:`repro.experiments.batch`) shares trace
arrays, a pre-decoded address table and pooled LLC / counter buffers across
every config of a batch group, and enables the controller's gated fast
kernels.  None of that may change a single simulated number: these tests pin
byte-identical :class:`~repro.system.metrics.SimulationResult` payloads
against the untouched scalar engine -- the same standard
``tests/test_event_horizon.py`` holds the event-driven engine to against the
cycle-stepped reference, and ``tests/test_counter_backends.py`` holds the
array counter stores to against the dict reference.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.factory import MECHANISM_NAMES
from repro.experiments.batch import (
    batch_group_key,
    execute_job_with_plan,
    plan_batches,
    TracePlan,
)
from repro.experiments.cache import result_to_dict
from repro.experiments.sweep import (
    SweepEngine,
    SweepSpec,
    execute_job,
    mechanism_job,
)
from repro.system.config import paper_system_config

APPS = ("429.mcf", "401.bzip2")
ACCESSES = 300


def _payload(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestBatchScalarByteIdentity:
    """The pinned config set: every mechanism, one and two channels."""

    @pytest.mark.parametrize("channels", (1, 2))
    def test_all_mechanisms_byte_identical(self, channels):
        base = paper_system_config().with_overrides(channels=channels)
        jobs = [
            mechanism_job(base, APPS, mechanism, 64, ACCESSES)
            for mechanism in MECHANISM_NAMES
        ]
        groups = plan_batches(jobs)
        # One group: the whole mechanism sweep shares one TracePlan, so the
        # pooled buffers are genuinely reused from job to job -- residue
        # from an earlier config would surface as a mismatch below.
        assert len(groups) == 1
        for job, result in groups[0].execute():
            reference = execute_job(job)
            assert _payload(result) == _payload(reference), (
                f"batch result diverged for {job.config.mechanism} "
                f"({channels} channel(s))"
            )

    def test_pool_reuse_within_group_is_stateless(self):
        """Running the same job twice on one plan gives identical payloads."""
        base = paper_system_config()
        job = mechanism_job(base, APPS, "Graphene", 64, ACCESSES)
        plan = TracePlan.build(job)
        first = execute_job_with_plan(job, plan)
        second = execute_job_with_plan(job, plan)
        assert _payload(first) == _payload(second)


class TestBatchGrouping:
    """The grouping rules documented in repro.experiments.batch."""

    def test_mechanism_and_nrh_share_a_group(self):
        base = paper_system_config()
        spec = SweepSpec(
            mechanisms=tuple(MECHANISM_NAMES),
            nrh_values=(64, 128, 256),
            mixes=(APPS,),
            accesses_per_core=ACCESSES,
            base_config=base,
            include_alone=False,
            include_baselines=False,
        )
        jobs = spec.expand()
        groups = plan_batches(jobs)
        assert len(groups) == 1
        assert sum(len(group.jobs) for group in groups) == len(jobs)

    def test_trace_identity_splits_groups(self):
        base = paper_system_config()
        variants = [
            mechanism_job(base, APPS, "None", 64, ACCESSES),
            # Different mix, access budget, seed or topology => new traces
            # or a new memory system => a different group.
            mechanism_job(base, APPS[:1], "None", 64, ACCESSES),
            mechanism_job(base, APPS, "None", 64, ACCESSES + 1),
            mechanism_job(base, APPS, "None", 64, ACCESSES, seed=1),
            mechanism_job(
                base.with_overrides(channels=2), APPS, "None", 64, ACCESSES
            ),
        ]
        keys = {batch_group_key(job) for job in variants}
        assert len(keys) == len(variants)
        assert len(plan_batches(variants)) == len(variants)

    def test_planning_is_deterministic_and_complete(self):
        base = paper_system_config()
        spec = SweepSpec(
            mechanisms=("None", "PARA"),
            nrh_values=(64,),
            mixes=(APPS, APPS[:1]),
            accesses_per_core=ACCESSES,
            base_config=base,
        )
        jobs = spec.expand()
        first = plan_batches(jobs)
        second = plan_batches(jobs)
        assert [g.key for g in first] == [g.key for g in second]
        assert sorted(job.key for group in first for job in group.jobs) == (
            sorted(job.key for job in jobs)
        )


class TestSweepEngineBatchMode:
    """batch=True is a drop-in third execution mode of SweepEngine."""

    def test_engine_batch_results_match_serial(self):
        base = paper_system_config()
        spec = SweepSpec(
            mechanisms=("Graphene", "PARA"),
            nrh_values=(64,),
            mixes=(APPS,),
            accesses_per_core=ACCESSES,
            base_config=base,
            include_alone=False,
        )
        jobs = spec.expand()
        serial = SweepEngine(workers=0).run_jobs(jobs)
        engine = SweepEngine(workers=0, batch=True)
        batched = engine.run_jobs(jobs)
        assert serial.keys() == batched.keys()
        for key in serial:
            assert _payload(serial[key]) == _payload(batched[key])
        # One report shard per batch group, covering every executed job.
        report = engine.last_run_report
        assert report.executed_jobs == len(jobs)
        assert sum(shard.jobs for shard in report.shards) == len(jobs)
        # A second run is served from the cache without re-execution.
        executed_before = engine.executed_jobs
        engine.run_jobs(jobs)
        assert engine.executed_jobs == executed_before
        assert engine.last_run_report.cached_jobs == len(jobs)

    def test_run_jobs_batch_override(self):
        """run_jobs(batch=...) overrides the engine default per call."""
        base = paper_system_config()
        job = mechanism_job(base, APPS[:1], "None", 64, 100)
        engine = SweepEngine(workers=0, batch=True)
        result = engine.run_jobs([job], batch=False)
        assert _payload(result[job.key]) == _payload(execute_job(job))


# Small random configs for the differential test: every drawn point runs a
# full batch and a full scalar simulation, so the budget stays modest; the
# pinned mechanism sweep above covers the breadth dimension.
differential_configs = st.tuples(
    st.sampled_from(MECHANISM_NAMES),
    st.sampled_from((16, 64)),          # nrh
    st.sampled_from((APPS, APPS[:1])),  # mix
    st.integers(50, 200),               # accesses per core
    st.integers(0, 3),                  # trace seed
    st.sampled_from((1, 2)),            # channels
)


class TestBatchDifferential:
    @settings(max_examples=12, deadline=None)
    @given(point=differential_configs)
    def test_random_config_byte_identical(self, point):
        mechanism, nrh, mix, accesses, seed, channels = point
        base = paper_system_config().with_overrides(channels=channels)
        job = mechanism_job(base, mix, mechanism, nrh, accesses, seed=seed)
        plan = TracePlan.build(job)
        assert _payload(execute_job_with_plan(job, plan)) == (
            _payload(execute_job(job))
        )
