"""Multi-channel scale-out tests.

Covers the three load-bearing guarantees of the channel scale-out:

* the address mappings stay bijective for every (mapping, channel count)
  combination, including the row-interleaved ``-RI`` variants;
* per-channel stats aggregate into system totals exactly (the identities
  :func:`repro.system.metrics.aggregate_channel_stats` defines);
* the sweep cache keys of every pre-existing single-channel job are
  byte-identical (the ``channels`` knob rides on the DRAM organization), and
  a channel-targeted attack provably leaves other channels untouched.
"""

import dataclasses

import pytest

from repro.attacks.patterns import AttackSpec, retarget_channel
from repro.controller.address_mapping import (
    MAPPING_NAMES,
    mapping_by_name,
    mop_mapping,
    row_interleaved,
)
from repro.dram.organization import DramAddress, PAPER_ORGANIZATION
from repro.experiments.sweep import (
    alone_job,
    attack_search_job,
    baseline_job,
    execute_job,
    mechanism_job,
)
from repro.system.config import SystemConfig, paper_system_config
from repro.system.metrics import CHANNEL_COUNTER_KEYS, aggregate_channel_stats
from repro.system.simulator import simulate
from repro.workloads.mixes import build_mix_traces

CHANNEL_COUNTS = (1, 2, 4, 8)


def org_with_channels(channels):
    return PAPER_ORGANIZATION.with_channels(channels)


# --------------------------------------------------------------------------- #
# Channel-aware address mapping
# --------------------------------------------------------------------------- #

class TestChannelAwareMappings:
    def sample_addresses(self, org):
        """DRAM coordinates spanning every field's extremes."""
        coords = []
        for channel in range(org.channels):
            for rank in (0, org.ranks - 1):
                for bankgroup in (0, org.bankgroups - 1):
                    for bank in (0, org.banks_per_group - 1):
                        for row in (0, 1, org.rows - 1):
                            for column in (0, org.columns - 1):
                                coords.append(
                                    DramAddress(
                                        channel=channel,
                                        rank=rank,
                                        bankgroup=bankgroup,
                                        bank=bank,
                                        row=row,
                                        column=column,
                                    )
                                )
        return coords

    @pytest.mark.parametrize("name", MAPPING_NAMES)
    @pytest.mark.parametrize("channels", CHANNEL_COUNTS)
    def test_encode_decode_round_trip(self, name, channels):
        org = org_with_channels(channels)
        mapping = mapping_by_name(name, org)
        for dram in self.sample_addresses(org):
            address = mapping.encode(dram)
            decoded = mapping.decode(address)
            assert decoded == dram, f"{name} x{channels}: {dram} -> {address} -> {decoded}"

    @pytest.mark.parametrize("name", MAPPING_NAMES)
    @pytest.mark.parametrize("channels", CHANNEL_COUNTS)
    def test_decode_encode_round_trip(self, name, channels):
        org = org_with_channels(channels)
        mapping = mapping_by_name(name, org)
        step = 64 * 1017  # coprime-ish stride to sample diverse bit patterns
        for address in range(0, 1 << 24, step):
            aligned = (address // 64) * 64
            assert mapping.encode(mapping.decode(aligned)) == aligned

    @pytest.mark.parametrize("channels", (2, 4))
    def test_default_mapping_interleaves_consecutive_lines(self, channels):
        """Cache-line-interleaved placement: consecutive lines walk channels."""
        org = org_with_channels(channels)
        mapping = mop_mapping(org)
        decoded = [mapping.decode(line * 64).channel for line in range(2 * channels)]
        assert decoded == [line % channels for line in range(2 * channels)]

    @pytest.mark.parametrize("channels", (2, 4))
    def test_row_interleaved_mapping_gives_contiguous_regions(self, channels):
        """-RI placement: the channel is selected by the top address bits."""
        org = org_with_channels(channels)
        mapping = mapping_by_name("MOP-RI", org)
        region = 1 << (mapping.address_bits - mapping.field_widths()["channel"])
        for channel in range(channels):
            assert mapping.decode(channel * region).channel == channel
            assert mapping.decode(channel * region + region - 64).channel == channel

    def test_single_channel_field_consumes_no_bits(self):
        mapping = mop_mapping(org_with_channels(1))
        assert mapping.field_widths()["channel"] == 0

    def test_row_interleaved_of_base_mapping(self):
        base = mop_mapping(org_with_channels(2))
        derived = row_interleaved(base)
        assert derived.name == "MOP-RI"
        assert derived.field_order[-1] == "channel"
        assert derived.address_bits == base.address_bits

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValueError, match="unknown address mapping"):
            mapping_by_name("MOP-XX", PAPER_ORGANIZATION)


# --------------------------------------------------------------------------- #
# Config knob and cache-key stability
# --------------------------------------------------------------------------- #

class TestChannelsKnob:
    def test_with_channels_and_property(self):
        config = paper_system_config()
        assert config.channels == 1
        scaled = config.with_channels(4)
        assert scaled.channels == 4
        assert scaled.organization.channels == 4
        # Everything else is untouched.
        assert scaled.with_channels(1) == config

    def test_with_overrides_accepts_channels(self):
        config = paper_system_config().with_overrides(channels=2, num_cores=2)
        assert config.channels == 2
        assert config.num_cores == 2

    def test_channels_is_not_a_config_field(self):
        """The knob rides on the organization: no new SystemConfig field may
        appear, or every pre-existing cache key would change."""
        assert "channels" not in {f.name for f in dataclasses.fields(SystemConfig)}

    @pytest.mark.parametrize("channels", (0, -1, 3, 6))
    def test_invalid_channel_count_rejected(self, channels):
        """Zero/negative counts and non-powers-of-two (which would decode
        addresses to non-existent channels) are rejected up front."""
        with pytest.raises(ValueError, match="positive power of two"):
            paper_system_config().with_channels(channels)

    def test_single_channel_cache_keys_are_byte_identical(self):
        """Golden keys recorded from the pre-scale-out implementation."""
        base = paper_system_config()
        apps = ("429.mcf", "401.bzip2")
        assert baseline_job(base, apps, 400).key == (
            "5239fed1c48e88574b86d6891d6ab903c2ca6425e46af5a04244ca22ed457747"
        )
        assert mechanism_job(base, apps, "PRAC-4", 64, 400).key == (
            "9e1c9705e0e74ddcae68e0de65098b640db6f91b0730697f6bb84b45da851adc"
        )
        assert alone_job(base, "429.mcf", 400).key == (
            "468ac4505f9b9dc56bb1d770b320f4397c28c19e8b69c5946d982b38ed74da22"
        )
        assert attack_search_job(
            base, "Chronus", 64, AttackSpec(pattern="single_sided")
        ).key == (
            "b5ae395ca146177fb1e233090e107cafa5b676786dc681aa763ac22d0f03b35b"
        )

    def test_channel_count_changes_cache_keys(self):
        apps = ("429.mcf", "401.bzip2")
        one = baseline_job(paper_system_config(), apps, 400)
        two = baseline_job(paper_system_config().with_channels(2), apps, 400)
        assert one.key != two.key


# --------------------------------------------------------------------------- #
# Per-channel -> system metrics aggregation
# --------------------------------------------------------------------------- #

def _record(**overrides):
    record = {key: 0 for key in CHANNEL_COUNTER_KEYS}
    record.update(
        {"command_counts": {}, "energy_breakdown": {}, "energy_nj": 0.0}
    )
    record.update(overrides)
    return record


class TestAggregateChannelStats:
    def test_counters_sum(self):
        totals = aggregate_channel_stats(
            [
                _record(reads_served=10, total_read_latency=100, rfms=1),
                _record(reads_served=30, total_read_latency=500, rfms=2),
            ]
        )
        assert totals["reads_served"] == 40
        assert totals["rfms"] == 3
        assert totals["average_read_latency"] == pytest.approx(600 / 40)

    def test_command_counts_and_energy_merge(self):
        totals = aggregate_channel_stats(
            [
                _record(
                    command_counts={"ACT": 5, "RD": 7},
                    energy_breakdown={"act": 1.5},
                    energy_nj=2.5,
                ),
                _record(
                    command_counts={"ACT": 3, "REF": 2},
                    energy_breakdown={"act": 0.5, "ref": 1.0},
                    energy_nj=1.5,
                ),
            ]
        )
        assert totals["command_counts"] == {"ACT": 8, "RD": 7, "REF": 2}
        assert totals["energy_breakdown"] == {"act": 2.0, "ref": 1.0}
        assert totals["energy_nj"] == pytest.approx(4.0)

    def test_zero_reads_average_latency(self):
        assert aggregate_channel_stats([_record()])["average_read_latency"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_channel_stats([])


class TestSimulationAggregationIdentities:
    @pytest.fixture(scope="class")
    def two_channel_result(self):
        config = paper_system_config(mechanism="Chronus", nrh=64).with_overrides(
            num_cores=2, channels=2
        )
        traces = build_mix_traces(
            ["429.mcf", "470.lbm"], accesses_per_core=400,
            organization=config.organization,
        )
        return simulate(config, traces)

    def test_result_reports_two_channels(self, two_channel_result):
        assert two_channel_result.num_channels == 2
        assert [r["channel"] for r in two_channel_result.channel_stats] == [0, 1]

    def test_counter_identities(self, two_channel_result):
        result = two_channel_result
        for key in (
            "reads_served", "writes_served", "row_hits", "row_misses",
            "row_conflicts", "refreshes", "rfms", "backoffs_observed",
            "preventive_refresh_rows",
        ):
            per_channel = sum(r[key] for r in result.channel_stats)
            assert per_channel == result.controller_stats[key], key

    def test_command_count_identities(self, two_channel_result):
        result = two_channel_result
        summed = {}
        for record in result.channel_stats:
            for mnemonic, count in record["command_counts"].items():
                summed[mnemonic] = summed.get(mnemonic, 0) + count
        assert summed == result.command_counts

    def test_energy_identities(self, two_channel_result):
        result = two_channel_result
        assert sum(r["energy_nj"] for r in result.channel_stats) == pytest.approx(
            result.energy_nj
        )
        summed = {}
        for record in result.channel_stats:
            for component, value in record["energy_breakdown"].items():
                summed[component] = summed.get(component, 0.0) + value
        assert summed == pytest.approx(result.energy_breakdown)

    def test_average_latency_is_read_weighted(self, two_channel_result):
        result = two_channel_result
        total_latency = sum(r["total_read_latency"] for r in result.channel_stats)
        total_reads = sum(r["reads_served"] for r in result.channel_stats)
        assert result.controller_stats["average_read_latency"] == pytest.approx(
            total_latency / total_reads
        )

    def test_both_channels_served_traffic(self, two_channel_result):
        assert all(
            record["reads_served"] > 0 for record in two_channel_result.channel_stats
        )

    def test_single_channel_record_matches_system_totals(self):
        config = paper_system_config().with_overrides(num_cores=2)
        traces = build_mix_traces(["429.mcf", "470.lbm"], accesses_per_core=300)
        result = simulate(config, traces)
        assert result.num_channels == 1
        (record,) = result.channel_stats
        assert record["reads_served"] == result.controller_stats["reads_served"]
        assert record["energy_nj"] == result.energy_nj
        assert record["command_counts"] == result.command_counts


# --------------------------------------------------------------------------- #
# Multi-channel simulation behaviour
# --------------------------------------------------------------------------- #

class TestMultiChannelSimulation:
    @pytest.mark.parametrize("mechanism", ("None", "Chronus", "PRAC-4", "PARA"))
    def test_two_channel_run_completes(self, mechanism):
        config = paper_system_config(mechanism=mechanism, nrh=128).with_overrides(
            num_cores=2, channels=2
        )
        traces = build_mix_traces(["549.fotonik3d", "429.mcf"], accesses_per_core=300)
        result = simulate(config, traces)
        assert result.cycles < config.max_cycles
        assert all(ipc > 0 for ipc in result.core_ipcs)

    def test_row_interleaved_mapping_runs(self):
        config = paper_system_config().with_overrides(
            num_cores=2, channels=2, address_mapping="MOP-RI"
        )
        traces = build_mix_traces(["429.mcf", "470.lbm"], accesses_per_core=300)
        result = simulate(config, traces)
        assert result.cycles > 0
        assert sum(r["reads_served"] for r in result.channel_stats) > 0

    def test_two_channels_are_deterministic(self):
        config = paper_system_config(mechanism="PARA", nrh=64).with_overrides(
            num_cores=2, channels=2
        )
        traces = build_mix_traces(["429.mcf", "470.lbm"], accesses_per_core=300)
        first = simulate(config, traces)
        second = simulate(config, traces)
        assert first.cycles == second.cycles
        assert first.channel_stats == second.channel_stats


# --------------------------------------------------------------------------- #
# Channel-targeted attacks: cross-channel isolation
# --------------------------------------------------------------------------- #

class TestChannelTargetedAttacks:
    def test_retarget_channel_moves_every_access(self):
        org = org_with_channels(2)
        mapping = mop_mapping(org)
        spec = AttackSpec.create("single_sided", {"hammer_count": 10})
        trace = spec.compile(organization=org)
        moved = retarget_channel(trace, mapping, 1)
        assert all(mapping.decode(e.address).channel == 1 for e in moved)
        # Bank/row geometry is preserved.
        for original, shifted in zip(trace, moved):
            before = mapping.decode(original.address)
            after = mapping.decode(shifted.address)
            assert (before.rank, before.bankgroup, before.bank, before.row) == (
                after.rank, after.bankgroup, after.bank, after.row
            )

    def test_retarget_rejects_out_of_range_channel(self):
        org = org_with_channels(2)
        mapping = mop_mapping(org)
        trace = AttackSpec.create("single_sided", {"hammer_count": 4}).compile(
            organization=org
        )
        with pytest.raises(ValueError, match="out of range"):
            retarget_channel(trace, mapping, 2)

    def test_channel_zero_spec_payload_unchanged(self):
        """Channel 0 must not appear in the payload (cache-key stability)."""
        spec = AttackSpec(pattern="single_sided")
        assert "channel" not in spec.as_payload()
        targeted = AttackSpec(pattern="single_sided", channel=1)
        assert targeted.as_payload()["channel"] == 1
        assert "@ch1" in targeted.label

    def test_attack_on_one_channel_leaves_other_untouched(self):
        """The red-team isolation proof: a channel-1 attack disturbs channel 1
        only; the ground-truth oracle sees zero activated rows on channel 0."""
        base = paper_system_config().with_channels(2)
        spec = AttackSpec.create("single_sided", {"hammer_count": 300}, channel=1)
        job = attack_search_job(base, "None", 64, spec)
        result = execute_job(job)
        stats = result.mitigation_stats
        assert stats["oracle_peak_channel"] == 1
        assert stats["oracle_ch1_max_disturbance"] > 0
        assert stats["oracle_ch1_max_disturbance"] == stats["oracle_max_disturbance"]
        assert stats["oracle_ch0_max_disturbance"] == 0
        assert stats["oracle_ch0_rows_tracked"] == 0
        # Channel 0 never even saw a demand activation.
        assert result.channel_stats[0]["command_counts"].get("ACT", 0) == 0

    def test_mismatched_oracle_channel_count_rejected(self):
        """An oracle built for the wrong channel count would silently drop
        the per-channel isolation stats; the simulator rejects it loudly."""
        from repro.attacks.oracle import DisturbanceOracle
        from repro.system.simulator import SystemSimulator

        config = paper_system_config().with_overrides(num_cores=1, channels=2)
        traces = build_mix_traces(["429.mcf"], accesses_per_core=10)
        with pytest.raises(ValueError, match="oracle tracks 1 channel"):
            SystemSimulator(config, traces, oracle=DisturbanceOracle(nrh=64))

    def test_attack_defaults_to_channel_zero(self):
        base = paper_system_config().with_channels(2)
        spec = AttackSpec.create("single_sided", {"hammer_count": 300})
        result = execute_job(attack_search_job(base, "None", 64, spec))
        stats = result.mitigation_stats
        assert stats["oracle_peak_channel"] == 0
        assert stats["oracle_ch1_rows_tracked"] == 0
