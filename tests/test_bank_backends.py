"""Object/array bank-timing backend equivalence.

The structure-of-arrays timing plane must be *observably identical* to the
attribute-per-register reference bank: same legality decisions, same
:class:`TimingViolation` classes and messages, same register trajectories,
same stats -- byte for byte, so cached simulation results never depend on
the backend.  Four layers pin that:

1. randomized command streams (Hypothesis) driven through an object/array
   bank pair, comparing every observable -- including raised violations --
   after every command;
2. direct illegal-command coverage: every command class raises
   :class:`TimingViolation` through the array backend, with the exact
   object-backend message, for both its state violation and its too-early
   timing violation;
3. :class:`BankStats` totals (and ``merge`` results) identical across
   backends after a mixed legal stream;
4. the full-simulator property test: for all 12 mechanisms x 1,2 channels
   the complete :class:`SimulationResult` payload is byte-identical across
   backends (``REPRO_BANK_BACKEND`` toggles the default the device
   resolves), plus the batch engine's pooled-plane path.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.factory import MECHANISM_NAMES
from repro.dram.bank import Bank, BankStats, TimingViolation
from repro.dram.device import DramDevice
from repro.dram.timing import ddr5_3200an
from repro.dram.timing_plane import (
    BANK_BACKENDS,
    DEFAULT_BANK_BACKEND,
    NO_ROW,
    BankArrayTiming,
    resolve_bank_backend,
)
from repro.experiments.cache import result_to_dict
from repro.experiments.sweep import build_job_traces, mechanism_job
from repro.system.config import paper_system_config
from repro.system.simulator import SystemSimulator, simulate

TIMING = ddr5_3200an()


def make_pair():
    """One bank per backend, same id and timing."""
    return (
        Bank(0, TIMING, backend="object"),
        Bank(0, TIMING, backend="array"),
    )


def observables(bank, cycle):
    """Every externally visible bank property at ``cycle``."""
    return {
        "state": bank.state,
        "open_row": bank.open_row,
        "last_act_cycle": bank.last_act_cycle,
        "next_act": bank.ready_cycle_for_activate(),
        "next_pre": bank.ready_cycle_for_precharge(),
        "next_rd": bank.ready_cycle_for_read(),
        "next_wr": bank.ready_cycle_for_write(),
        "can_activate": bank.can_activate(cycle),
        "can_precharge": bank.can_precharge(cycle),
        "can_read": bank.can_read(cycle),
        "can_write": bank.can_write(cycle),
        "is_open": bank.is_open(),
        "stats": (
            bank.stats.activations,
            bank.stats.precharges,
            bank.stats.reads,
            bank.stats.writes,
            bank.stats.victim_refreshes,
        ),
    }


def apply_command(bank, op, row, cycle):
    """Run one command; return ``(outcome, violation message or None)``."""
    try:
        if op == "act":
            return bank.activate(row, cycle), None
        if op == "pre":
            return bank.precharge(cycle), None
        if op == "rd":
            return bank.read(cycle), None
        if op == "wr":
            return bank.write(cycle), None
        if op == "block":
            return bank.block(cycle, 10 + row), None
        return bank.victim_refresh(cycle, rows=1 + row % 3), None
    except TimingViolation as violation:
        return "violation", str(violation)


#: Command streams mixing all six command classes; ``gap`` values straddle
#: the DDR5 timing constants so both legal and too-early issues occur.
command_streams = st.lists(
    st.tuples(
        st.sampled_from(("act", "pre", "rd", "wr", "block", "vrr")),
        st.integers(0, 7),       # row operand
        st.integers(0, 40),      # cycle gap before the command
    ),
    min_size=1,
    max_size=200,
)


class TestDifferentialStreams:
    """Hypothesis: identical trajectories, violations and stats."""

    @settings(max_examples=60, deadline=None)
    @given(stream=command_streams)
    def test_command_stream_equivalence(self, stream):
        obj, arr = make_pair()
        cycle = 0
        for op, row, gap in stream:
            cycle += gap
            obj_out = apply_command(obj, op, row, cycle)
            arr_out = apply_command(arr, op, row, cycle)
            # Same return value, or the same violation with the same text.
            assert obj_out == arr_out
            assert observables(obj, cycle) == observables(arr, cycle)

    @settings(max_examples=60, deadline=None)
    @given(stream=command_streams)
    def test_plane_slot_matches_registers(self, stream):
        """The plane arrays always mirror the view's register values."""
        _, arr = make_pair()
        plane = arr.plane
        cycle = 0
        for op, row, gap in stream:
            cycle += gap
            apply_command(arr, op, row, cycle)
            assert int(plane.next_act[0]) == arr._next_act
            assert int(plane.next_pre[0]) == arr._next_pre
            assert int(plane.next_rd[0]) == arr._next_rd
            assert int(plane.next_wr[0]) == arr._next_wr
            open_row = arr.open_row
            assert int(plane.open_row[0]) == (NO_ROW if open_row is None else open_row)


class TestArrayBackendViolations:
    """Every illegal command class raises through the array backend."""

    @pytest.fixture()
    def open_pair(self):
        """Both banks with row 5 open at cycle 0."""
        obj, arr = make_pair()
        obj.activate(5, 0)
        arr.activate(5, 0)
        return obj, arr

    def _assert_same_violation(self, obj, arr, command, *args):
        with pytest.raises(TimingViolation) as obj_exc:
            getattr(obj, command)(*args)
        with pytest.raises(TimingViolation) as arr_exc:
            getattr(arr, command)(*args)
        assert str(arr_exc.value) == str(obj_exc.value)

    def test_activate_on_open_bank(self, open_pair):
        obj, arr = open_pair
        self._assert_same_violation(obj, arr, "activate", 6, TIMING.tRC + 10)

    def test_activate_too_early(self, open_pair):
        obj, arr = open_pair
        obj.precharge(TIMING.tRAS)
        arr.precharge(TIMING.tRAS)
        # The bank is idle but tRP has not elapsed yet.
        self._assert_same_violation(obj, arr, "activate", 6, TIMING.tRAS + 1)

    def test_precharge_on_idle_bank(self):
        obj, arr = make_pair()
        self._assert_same_violation(obj, arr, "precharge", 100)

    def test_precharge_too_early(self, open_pair):
        obj, arr = open_pair
        self._assert_same_violation(obj, arr, "precharge", 1)  # < tRAS

    def test_read_on_idle_bank(self):
        obj, arr = make_pair()
        self._assert_same_violation(obj, arr, "read", 100)

    def test_read_too_early(self, open_pair):
        obj, arr = open_pair
        self._assert_same_violation(obj, arr, "read", 1)  # < tRCD

    def test_write_on_idle_bank(self):
        obj, arr = make_pair()
        self._assert_same_violation(obj, arr, "write", 100)

    def test_write_too_early(self, open_pair):
        obj, arr = open_pair
        self._assert_same_violation(obj, arr, "write", 1)  # < tRCD

    def test_block_on_open_bank(self, open_pair):
        obj, arr = open_pair
        self._assert_same_violation(obj, arr, "block", 100, 32)

    def test_victim_refresh_on_open_bank(self, open_pair):
        obj, arr = open_pair
        self._assert_same_violation(obj, arr, "victim_refresh", 100)

    def test_violation_is_runtime_error(self):
        _, arr = make_pair()
        with pytest.raises(RuntimeError):
            arr.read(0)


class TestBankStatsAcrossBackends:
    """Stats counting and merge totals are backend-independent."""

    def _run_mixed_stream(self, bank):
        cycle = 0
        for _ in range(3):
            bank.activate(4, cycle)
            cycle += TIMING.tRCD
            bank.read(cycle)
            cycle += TIMING.tCCD
            bank.write(cycle)
            cycle = max(
                bank.ready_cycle_for_precharge(), cycle + TIMING.tCCD
            )
            bank.precharge(cycle)
            cycle = bank.ready_cycle_for_activate()
            bank.victim_refresh(cycle, rows=2)
            cycle = bank.ready_cycle_for_activate()
            bank.block(cycle, 16)
            cycle = bank.ready_cycle_for_activate()

    def test_merge_totals_identical(self):
        obj, arr = make_pair()
        self._run_mixed_stream(obj)
        self._run_mixed_stream(arr)
        totals = {}
        for backend, bank in (("object", obj), ("array", arr)):
            merged = BankStats()
            merged.merge(bank.stats)
            merged.merge(bank.stats)
            totals[backend] = (
                merged.activations,
                merged.precharges,
                merged.reads,
                merged.writes,
                merged.victim_refreshes,
            )
        assert totals["object"] == totals["array"]
        # The stream is deterministic: pin the actual totals too.
        assert totals["array"] == (6, 6, 6, 6, 12)


class TestBackendResolution:
    """Constructor argument, environment variable and plane adoption."""

    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv("REPRO_BANK_BACKEND", raising=False)
        assert DEFAULT_BANK_BACKEND == "array"
        assert resolve_bank_backend(None) == "array"
        assert Bank(0, TIMING).backend == "array"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BANK_BACKEND", "object")
        assert resolve_bank_backend(None) == "object"
        assert Bank(0, TIMING).backend == "object"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BANK_BACKEND", "object")
        assert Bank(0, TIMING, backend="array").backend == "array"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown bank backend"):
            resolve_bank_backend("linkedlist")
        assert set(BANK_BACKENDS) == {"object", "array"}

    def test_shared_plane_implies_array(self):
        plane = BankArrayTiming(4)
        bank = Bank(2, TIMING, plane=plane, index=2)
        assert bank.backend == "array"
        bank.activate(9, 0)
        assert int(plane.open_row[2]) == 9

    def test_shared_plane_requires_index(self):
        with pytest.raises(ValueError, match="slot index"):
            Bank(0, TIMING, plane=BankArrayTiming(4))

    def test_device_resolves_env(self, monkeypatch):
        organization = paper_system_config().organization
        monkeypatch.setenv("REPRO_BANK_BACKEND", "object")
        device = DramDevice(organization, TIMING)
        assert device.bank_backend == "object"
        assert device.timing_plane is None
        monkeypatch.delenv("REPRO_BANK_BACKEND", raising=False)
        device = DramDevice(organization, TIMING)
        assert device.bank_backend == "array"
        assert device.timing_plane is not None
        assert device.timing_plane.num_banks == organization.total_banks

    def test_device_rejects_mis_sized_plane(self):
        organization = paper_system_config().organization
        with pytest.raises(ValueError, match="banks"):
            DramDevice(organization, TIMING, timing_plane=BankArrayTiming(2))

    def test_device_resets_adopted_plane(self):
        organization = paper_system_config().organization
        plane = BankArrayTiming(organization.total_banks)
        plane.next_act.fill(123)
        plane.open_row.fill(7)
        device = DramDevice(organization, TIMING, timing_plane=plane)
        assert device.timing_plane is plane
        assert plane.is_pristine()


class TestTimingPlane:
    """The plane container itself: reset, pristine checks, twins."""

    def test_reset_restores_construction_state(self):
        plane = BankArrayTiming(8)
        plane.next_act[3] = 99
        plane.open_row[5] = 2
        plane.last_act[5] = 40
        assert not plane.is_pristine()
        plane.reset()
        assert plane.is_pristine()

    def test_memoryview_twins_share_storage(self):
        plane = BankArrayTiming(4)
        plane.next_rd_mv[1] = 77
        assert int(plane.next_rd[1]) == 77
        plane.open_row[2] = 5
        assert plane.open_row_mv[2] == 5
        plane.reset()
        assert plane.next_rd_mv[1] == 0 and plane.open_row_mv[2] == NO_ROW

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="num_banks"):
            BankArrayTiming(0)


def _result_payload(mechanism, channels, backend, monkeypatch):
    monkeypatch.setenv("REPRO_BANK_BACKEND", backend)
    base = paper_system_config().with_overrides(channels=channels)
    job = mechanism_job(base, ("429.mcf", "401.bzip2"), mechanism, 64, 300)
    result = simulate(
        job.config, build_job_traces(job), workload_name=job.workload_name
    )
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestFullSimulationEquivalence:
    """Byte-identical SimulationResult payloads across bank backends."""

    @pytest.mark.parametrize("channels", (1, 2))
    @pytest.mark.parametrize("mechanism", MECHANISM_NAMES)
    def test_payloads_identical(self, mechanism, channels, monkeypatch):
        object_payload = _result_payload(mechanism, channels, "object", monkeypatch)
        array_payload = _result_payload(mechanism, channels, "array", monkeypatch)
        assert object_payload == array_payload

    def test_pooled_planes_identical_to_fresh(self, monkeypatch):
        """Pre-allocated (dirty) planes change nothing observable."""
        monkeypatch.delenv("REPRO_BANK_BACKEND", raising=False)
        base = paper_system_config().with_overrides(channels=2)
        job = mechanism_job(base, ("429.mcf", "401.bzip2"), "PRAC-4", 64, 300)
        traces = build_job_traces(job)
        fresh = simulate(job.config, traces, workload_name=job.workload_name)
        total_banks = job.config.organization.total_banks
        planes = [BankArrayTiming(total_banks) for _ in range(2)]
        for plane in planes:
            plane.next_act.fill(31337)  # dirty: adoption must reset it
            plane.open_row.fill(3)
        pooled = SystemSimulator(
            job.config,
            traces,
            workload_name=job.workload_name,
            timing_planes=planes,
        ).run()
        assert json.dumps(result_to_dict(fresh), sort_keys=True) == json.dumps(
            result_to_dict(pooled), sort_keys=True
        )

    def test_simulator_validates_plane_count(self):
        base = paper_system_config().with_overrides(channels=2)
        job = mechanism_job(base, ("429.mcf", "401.bzip2"), "None", 64, 50)
        traces = build_job_traces(job)
        total_banks = job.config.organization.total_banks
        with pytest.raises(ValueError, match="timing planes"):
            SystemSimulator(
                job.config,
                traces,
                timing_planes=[BankArrayTiming(total_banks)],
            )
