"""Tests for the trace-driven core model."""

import pytest

from repro.controller.address_mapping import mop_mapping
from repro.controller.controller import MemoryController
from repro.cpu.cache import Cache
from repro.cpu.core import Core
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.device import DramDevice
from repro.dram.organization import DramOrganization
from repro.dram.timing import ddr5_3200an


ORG = DramOrganization(ranks=1, bankgroups=2, banks_per_group=2, rows=512, columns=32)


def make_system():
    device = DramDevice(ORG, ddr5_3200an())
    controller = MemoryController(device, mop_mapping(ORG))
    llc = Cache(size_bytes=64 * 1024, associativity=8, line_size=64)
    return controller, llc


def run_core(core, controller, max_cycles=200_000):
    cycle = 0
    while not core.finished and cycle < max_cycles:
        while core.try_issue(cycle, controller):
            pass
        issued, hint = controller.tick(cycle)
        completed = controller.drain_completed()
        for request in completed:
            if request.is_read:
                core.notify_completion(request, cycle)
        if completed and not issued:
            # Same-cycle completions unblock the core; retry before advancing.
            continue
        if issued:
            cycle += 1
        else:
            wake = min(hint, core.next_event_cycle(cycle))
            cycle = cycle + 1 if wake <= cycle else min(wake, max_cycles)
    return cycle


def streaming_trace(num_accesses=50, gap=20, stride=64, write_every=0):
    entries = []
    for index in range(num_accesses):
        is_write = write_every > 0 and index % write_every == 0
        entries.append(TraceEntry(gap_instructions=gap, address=index * stride,
                                  is_write=is_write))
    return Trace("stream", entries)


class TestCoreExecution:
    def test_core_finishes_and_reports_ipc(self):
        controller, llc = make_system()
        core = Core(0, streaming_trace(), llc)
        final_cycle = run_core(core, controller)
        assert core.finished
        assert core.finish_cycle is not None and core.finish_cycle <= final_cycle
        assert 0 < core.ipc() <= core.issue_width

    def test_llc_hits_do_not_reach_dram(self):
        controller, llc = make_system()
        # Repeatedly access a single line: one DRAM read, then LLC hits.
        entries = [TraceEntry(gap_instructions=5, address=0x100) for _ in range(40)]
        core = Core(0, Trace("hot", entries), llc)
        run_core(core, controller)
        assert core.llc_misses == 1
        assert core.mem_reads == 1
        assert controller.stats.reads_served == 1

    def test_bypass_llc_sends_everything_to_dram(self):
        controller, llc = make_system()
        entries = [TraceEntry(gap_instructions=0, address=0x100) for _ in range(10)]
        core = Core(0, Trace("attack", entries), llc, bypass_llc=True)
        run_core(core, controller)
        # The trace wraps until the instruction target retires, so at least
        # one full pass reaches DRAM and the LLC is never consulted.
        assert core.mem_reads >= 10
        assert core.llc_hits == 0
        assert controller.stats.reads_served >= 10

    def test_memory_bound_core_slower_than_compute_bound(self):
        controller_a, llc_a = make_system()
        compute = Core(0, streaming_trace(num_accesses=30, gap=400), llc_a)
        compute_cycles = run_core(compute, controller_a)

        controller_b, llc_b = make_system()
        memory = Core(0, streaming_trace(num_accesses=30, gap=0, stride=64 * 1024), llc_b)
        run_core(memory, controller_b)
        assert compute.ipc() > memory.ipc()

    def test_writes_do_not_block_retirement(self):
        controller, llc = make_system()
        core = Core(0, streaming_trace(num_accesses=40, write_every=2), llc)
        run_core(core, controller)
        assert core.finished
        assert core.mem_writes > 0

    def test_mshr_limit_bounds_outstanding_reads(self):
        controller, llc = make_system()
        entries = [TraceEntry(gap_instructions=0, address=i * 128 * 1024) for i in range(64)]
        core = Core(0, Trace("burst", entries), llc, max_outstanding=4)
        cycle = 0
        max_in_flight = 0
        while not core.finished and cycle < 100_000:
            while core.try_issue(cycle, controller):
                pass
            max_in_flight = max(max_in_flight, core._reads_in_flight)
            issued, hint = controller.tick(cycle)
            for request in controller.drain_completed():
                if request.is_read:
                    core.notify_completion(request, cycle)
            cycle = cycle + 1 if issued else max(cycle + 1, min(hint, cycle + 1000))
        assert max_in_flight <= 4

    def test_invalid_parameters(self):
        _, llc = make_system()
        with pytest.raises(ValueError):
            Core(0, streaming_trace(), llc, clock_ratio=0)
        with pytest.raises(ValueError):
            Core(0, streaming_trace(), llc, window_size=0)

    def test_trace_wraps_until_target(self):
        controller, llc = make_system()
        trace = streaming_trace(num_accesses=10, gap=10)
        core = Core(0, trace, llc, instruction_target=3 * trace.total_instructions)
        run_core(core, controller)
        assert core.finished
        assert core.retired_instructions >= 3 * trace.total_instructions

    def test_posted_writes_survive_a_full_write_queue(self):
        """Writes that bounce off a full queue are retried, never dropped.

        A failed posted-write enqueue used to vanish silently, under-counting
        DRAM write traffic (and the activations it causes).  The core now
        buffers bounced writes and drains them in order before new dispatches:
        every write the core posts is eventually served, still queued, or
        waiting in the retry buffer -- a conservation law.
        """
        device = DramDevice(ORG, ddr5_3200an())
        controller = MemoryController(device, mop_mapping(ORG),
                                      write_queue_size=2,
                                      write_drain_high=2, write_drain_low=0)
        llc = Cache(size_bytes=64 * 1024, associativity=8, line_size=64)
        # Every access is a write miss (write-allocate posts a fill): with a
        # 2-entry write queue and no compute gaps the queue overflows.
        trace = streaming_trace(num_accesses=40, gap=0, stride=4096,
                                write_every=1)
        core = Core(0, trace, llc, max_outstanding=64)

        posted = 0
        original_post = core._post_write

        def counting_post(controller_, address, cycle):
            nonlocal posted
            posted += 1
            original_post(controller_, address, cycle)

        core._post_write = counting_post

        rejections = 0
        original_enqueue = controller.enqueue

        def spying_enqueue(request):
            nonlocal rejections
            accepted = original_enqueue(request)
            if not accepted and request.is_write:
                rejections += 1
            return accepted

        controller.enqueue = spying_enqueue

        cycle = run_core(core, controller)
        assert core.finished
        assert posted >= 40           # one fill per write miss (plus writebacks)
        assert rejections > 0         # the tiny queue really did overflow
        # Let the controller drain what it accepted (the core is done, so no
        # new traffic arrives; the retry buffer keeps whatever still bounced).
        while controller.pending_requests() and cycle < 500_000:
            issued, hint = controller.tick(cycle)
            controller.drain_completed()
            cycle = cycle + 1 if issued else max(cycle + 1, min(hint, cycle + 10_000))
        # Conservation: every posted write was served or is awaiting retry --
        # none vanished.
        in_retry_buffer = len(core._pending_posted_writes)
        assert controller.stats.writes_served + in_retry_buffer == posted
        # The queue really was the bottleneck, and real progress was made.
        assert in_retry_buffer > 0
        assert controller.stats.writes_served >= 2
