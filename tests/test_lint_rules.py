"""reprolint unit tests: every rule fires on a violation AND stays quiet
on conforming code, plus the suppression grammar, the baseline partition
logic and the CLI exit-code contract.

The rules are constructed with small fixture manifests so the tests pin
the *mechanics* (what each rule detects) independently of the committed
manifests; ``tests/test_lint_clean.py`` pins the committed manifests
against the real tree.
"""

from __future__ import annotations

import ast
import json
import pathlib
import sys
import textwrap

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.baseline import (  # noqa: E402
    BaselineError,
    BaselineEntry,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.framework import (  # noqa: E402
    META_RULE_BAD_SUPPRESSION,
    META_RULE_PARSE_ERROR,
    FileContext,
    Finding,
    Project,
    parse_project,
    run_rules,
)
from repro.lint.cli import main as lint_main  # noqa: E402
from repro.lint.rules import (  # noqa: E402
    CacheKeyCompletenessRule,
    CanonicalJsonRule,
    DeterminismRule,
    EventSourceRegistryRule,
    HotPathAllocationRule,
    NoReflectionRule,
    default_rules,
)


def lint_source(rule, source, rel_path="src/repro/artifacts/mod.py", root=None):
    """Run one rule over one in-memory module; return the findings."""
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    ctx = FileContext(rel_path, source, tree)
    project = Project(root or pathlib.Path("."), {rel_path: ctx})
    return run_rules(project, [rule]).findings


def rule_names(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------------- #
# no-reflection
# --------------------------------------------------------------------------- #

class TestNoReflectionRule:
    RULE = NoReflectionRule  # default targets: the artifact + specs zone

    def test_fires_on_setattr(self):
        findings = lint_source(self.RULE(), "setattr(obj, name, value)\n")
        assert rule_names(findings) == ["no-reflection"]
        assert "setattr()" in findings[0].message

    def test_fires_on_eval_and_exec(self):
        findings = lint_source(self.RULE(), "eval(text)\nexec(text)\n")
        assert rule_names(findings) == ["no-reflection", "no-reflection"]

    def test_fires_on_object_setattr_bypass(self):
        findings = lint_source(
            self.RULE(), "object.__setattr__(header, 'seq', 7)\n"
        )
        assert rule_names(findings) == ["no-reflection"]
        assert "frozen" in findings[0].message

    def test_fires_on_vars_subscript_write(self):
        findings = lint_source(self.RULE(), "vars(obj)[key] = value\n")
        assert rule_names(findings) == ["no-reflection"]

    def test_fires_on_dict_mutation(self):
        findings = lint_source(
            self.RULE(),
            """\
            obj.__dict__["seq"] = 7
            obj.__dict__.update(payload)
            obj.__dict__ = payload
            """,
        )
        assert rule_names(findings) == ["no-reflection"] * 3

    def test_quiet_on_plain_attribute_code(self):
        findings = lint_source(
            self.RULE(),
            """\
            class Header:
                def describe(self):
                    return self.kind  # plain reads are fine

            header = Header()
            value = getattr(header, "kind", None)  # read-only reflection is allowed
            """,
        )
        assert findings == []

    def test_quiet_on_mentions_in_strings_and_comments(self):
        # The old regex scan false-positived on exactly this.
        findings = lint_source(
            self.RULE(),
            '''\
            def explain():
                """Never call setattr( or eval( on parsed input."""
                return "setattr(x, 'y', 1) is banned"  # setattr( in a comment
            ''',
        )
        assert findings == []

    def test_scoped_to_target_paths(self):
        findings = lint_source(
            self.RULE(), "setattr(obj, name, value)\n",
            rel_path="src/repro/dram/bank.py",
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# hot-path-alloc
# --------------------------------------------------------------------------- #

HOT_FIXTURE_PATH = "src/repro/controller/fixture.py"


def hot_rule(qualnames=("Ctl.tick",)):
    return HotPathAllocationRule({HOT_FIXTURE_PATH: frozenset(qualnames)})


class TestHotPathAllocationRule:
    def test_fires_on_comprehensions_and_genexp(self):
        findings = lint_source(
            hot_rule(),
            """\
            class Ctl:
                def tick(self):
                    a = [r for r in self.queue]
                    b = {r for r in self.queue}
                    c = {r: 1 for r in self.queue}
                    d = any(r.ready for r in self.queue)
            """,
            rel_path=HOT_FIXTURE_PATH,
        )
        assert rule_names(findings) == ["hot-path-alloc"] * 4

    def test_fires_on_lambda_and_nested_def(self):
        findings = lint_source(
            hot_rule(),
            """\
            class Ctl:
                def tick(self):
                    self.queue.sort(key=lambda r: r.request_id)
                    def helper():
                        return 1
                    return helper
            """,
            rel_path=HOT_FIXTURE_PATH,
        )
        assert rule_names(findings) == ["hot-path-alloc"] * 2
        assert all("closure" in f.message for f in findings)

    def test_fires_on_string_building_and_expansion(self):
        findings = lint_source(
            hot_rule(),
            """\
            class Ctl:
                def tick(self):
                    label = f"bank {self.bank}"
                    other = "bank {}".format(self.bank)
                    self.sink.emit(*self.args, **self.kwargs)
            """,
            rel_path=HOT_FIXTURE_PATH,
        )
        assert rule_names(findings) == ["hot-path-alloc"] * 3

    def test_exempts_raise_statements(self):
        findings = lint_source(
            hot_rule(),
            """\
            class Ctl:
                def tick(self):
                    if self.bank < 0:
                        raise ValueError(f"bad bank {self.bank}")
                    return self.bank
            """,
            rel_path=HOT_FIXTURE_PATH,
        )
        assert findings == []

    def test_quiet_on_unregistered_functions(self):
        findings = lint_source(
            hot_rule(qualnames=("Ctl.tick",)),
            """\
            class Ctl:
                def tick(self):
                    return self.cycle + 1

                def describe(self):
                    return f"controller at {self.cycle}"  # cold path: fine
            """,
            rel_path=HOT_FIXTURE_PATH,
        )
        assert findings == []

    def test_fires_on_stale_manifest_entry(self):
        findings = lint_source(
            hot_rule(qualnames=("Ctl.renamed_away",)),
            """\
            class Ctl:
                def tick(self):
                    return 1
            """,
            rel_path=HOT_FIXTURE_PATH,
        )
        assert rule_names(findings) == ["hot-path-alloc"]
        assert "stale hot-path manifest entry" in findings[0].message

    def test_committed_manifest_matches_real_functions(self):
        """Every committed manifest qualname must resolve (no silent rot)."""
        from repro.lint import manifest

        project, errors = parse_project(
            REPO_ROOT, sorted(manifest.HOT_PATH_FUNCTIONS)
        )
        assert errors == []
        stale = [
            f for f in HotPathAllocationRule().check_project(project)
            if "stale hot-path manifest entry" in f.message
        ]
        assert stale == [], "\n".join(f.render() for f in stale)


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #

DET_PATH = "src/repro/dram/fixture.py"


class TestDeterminismRule:
    def test_fires_on_wall_clock_reads(self):
        findings = lint_source(
            DeterminismRule(),
            """\
            import time
            from time import perf_counter

            def sample():
                return time.time(), perf_counter(), time.monotonic_ns()
            """,
            rel_path=DET_PATH,
        )
        assert rule_names(findings) == ["determinism"] * 3

    def test_fires_on_global_random_and_unseeded_rng(self):
        findings = lint_source(
            DeterminismRule(),
            """\
            import random

            def roll():
                a = random.random()
                b = random.Random()        # unseeded: OS entropy
                c = random.SystemRandom()
                return a, b, c
            """,
            rel_path=DET_PATH,
        )
        assert rule_names(findings) == ["determinism"] * 3

    def test_quiet_on_seeded_random(self):
        findings = lint_source(
            DeterminismRule(),
            """\
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            rel_path=DET_PATH,
        )
        assert findings == []

    def test_fires_on_str_set_iteration(self):
        findings = lint_source(
            DeterminismRule(),
            """\
            def order():
                out = []
                for name in {"act", "pre", "rd"}:
                    out.append(name)
                more = [n for n in set(["a", "b"])]
                return out, more
            """,
            rel_path=DET_PATH,
        )
        assert rule_names(findings) == ["determinism"] * 2

    def test_quiet_on_tuple_iteration_and_membership_sets(self):
        findings = lint_source(
            DeterminismRule(),
            """\
            COMMANDS = ("act", "pre", "rd")
            VALID = {"act", "pre", "rd"}  # membership tests don't iterate

            def order():
                return ["x" for name in COMMANDS if name in VALID]
            """,
            rel_path=DET_PATH,
        )
        assert findings == []

    def test_scoped_to_simulation_packages(self):
        findings = lint_source(
            DeterminismRule(),
            "import time\nstamp = time.time()\n",
            rel_path="src/repro/service/jobs.py",  # service may read clocks
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# canonical-json
# --------------------------------------------------------------------------- #

class TestCanonicalJsonRule:
    def test_fires_on_json_dumps(self):
        findings = lint_source(
            CanonicalJsonRule(),
            "import json\npayload = json.dumps({'a': 1})\n",
            rel_path="src/repro/artifacts/fixture.py",
        )
        assert rule_names(findings) == ["canonical-json"]

    def test_fires_on_from_import_alias(self):
        findings = lint_source(
            CanonicalJsonRule(),
            "from json import dumps as _d\npayload = _d({'a': 1})\n",
            rel_path="src/repro/service/fixture.py",
        )
        assert rule_names(findings) == ["canonical-json"]

    def test_quiet_in_the_canonical_helper_module(self):
        findings = lint_source(
            CanonicalJsonRule(),
            "import json\npayload = json.dumps({'a': 1})\n",
            rel_path="src/repro/artifacts/spec.py",
        )
        assert findings == []

    def test_quiet_on_other_dumps_and_loads(self):
        findings = lint_source(
            CanonicalJsonRule(),
            """\
            import json
            import pickle

            def load(blob):
                return json.loads(blob)  # parsing is fine; encoding is not

            def freeze(obj):
                return pickle.dumps(obj)
            """,
            rel_path="src/repro/artifacts/fixture.py",
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# cache-key-completeness
# --------------------------------------------------------------------------- #

CONFIG_SRC = """\
from dataclasses import dataclass

@dataclass(frozen=True)
class SystemConfig:
    nrh: int
    blast_radius: int
    progress_interval: float
"""


def cache_key_project(payload_src, tmp_path, group_src=None):
    """A three-module fixture project for the cross-file rule."""
    files = {
        "src/repro/system/config.py": CONFIG_SRC,
        "src/repro/experiments/cache.py": payload_src,
    }
    if group_src is not None:
        files["src/repro/experiments/batch.py"] = group_src
    contexts = {}
    for rel_path, source in files.items():
        source = textwrap.dedent(source)
        contexts[rel_path] = FileContext(rel_path, source, ast.parse(source))
    return Project(tmp_path, contexts)


class TestCacheKeyCompletenessRule:
    def test_quiet_when_payload_uses_asdict(self, tmp_path):
        project = cache_key_project(
            """\
            from dataclasses import asdict

            def config_payload(config):
                return asdict(config)
            """,
            tmp_path,
        )
        assert CacheKeyCompletenessRule().check_project(project) == []

    def test_fires_on_missing_field_in_explicit_payload(self, tmp_path):
        project = cache_key_project(
            """\
            def config_payload(config):
                return {"nrh": config.nrh, "blast_radius": config.blast_radius}
            """,
            tmp_path,
        )
        findings = CacheKeyCompletenessRule().check_project(project)
        assert rule_names(findings) == ["cache-key-completeness"]
        assert "progress_interval" in findings[0].message
        assert "stale cached result" in findings[0].message

    def test_fires_on_key_that_is_not_a_field(self, tmp_path):
        project = cache_key_project(
            """\
            def config_payload(config):
                return {
                    "nrh": config.nrh,
                    "blast_radius": config.blast_radius,
                    "progress_interval": config.progress_interval,
                    "n_rh": 7,
                }
            """,
            tmp_path,
        )
        findings = CacheKeyCompletenessRule().check_project(project)
        assert rule_names(findings) == ["cache-key-completeness"]
        assert "'n_rh'" in findings[0].message

    def test_fires_on_group_free_field_that_no_longer_exists(self, tmp_path):
        project = cache_key_project(
            """\
            from dataclasses import asdict

            def config_payload(config):
                return asdict(config)
            """,
            tmp_path,
            group_src="""\
            GROUP_FREE_CONFIG_FIELDS = ("progress_interval", "renamed_knob")
            """,
        )
        findings = CacheKeyCompletenessRule().check_project(project)
        assert rule_names(findings) == ["cache-key-completeness"]
        assert "renamed_knob" in findings[0].message

    def test_quiet_on_partial_scans(self, tmp_path):
        source = "x = 1\n"
        project = Project(
            tmp_path,
            {"src/repro/dram/bank.py": FileContext(
                "src/repro/dram/bank.py", source, ast.parse(source)
            )},
        )
        assert CacheKeyCompletenessRule().check_project(project) == []


# --------------------------------------------------------------------------- #
# event-source-registry
# --------------------------------------------------------------------------- #

HINT_PATH = "src/repro/dram/fixture.py"


def hint_project(source, tmp_path, doc_text=None):
    source = textwrap.dedent(source)
    if doc_text is not None:
        doc = tmp_path / "docs" / "ARCH.md"
        doc.parent.mkdir(parents=True, exist_ok=True)
        doc.write_text(doc_text, encoding="utf-8")
    return Project(
        tmp_path, {HINT_PATH: FileContext(HINT_PATH, source, ast.parse(source))}
    )


class TestEventSourceRegistryRule:
    def test_fires_on_unregistered_hint_method(self, tmp_path):
        rule = EventSourceRegistryRule(registry=(), architecture_doc=None)
        project = hint_project(
            """\
            class RetentionModel:
                def next_due_cycle(self):
                    return 0
            """,
            tmp_path,
        )
        findings = rule.check_project(project)
        assert rule_names(findings) == ["event-source-registry"]
        assert "RetentionModel.next_due_cycle" in findings[0].message
        assert "not in the hint-contract registry" in findings[0].message

    def test_quiet_when_registered_and_documented(self, tmp_path):
        rule = EventSourceRegistryRule(
            registry=((HINT_PATH, "RetentionModel", "next_due_cycle"),),
            architecture_doc="docs/ARCH.md",
        )
        project = hint_project(
            """\
            class RetentionModel:
                def next_due_cycle(self):
                    return 0
            """,
            tmp_path,
            doc_text="The RetentionModel hint is folded into the horizon.\n",
        )
        assert rule.check_project(project) == []

    def test_fires_when_registered_but_undocumented(self, tmp_path):
        rule = EventSourceRegistryRule(
            registry=((HINT_PATH, "RetentionModel", "next_due_cycle"),),
            architecture_doc="docs/ARCH.md",
        )
        project = hint_project(
            """\
            class RetentionModel:
                def next_due_cycle(self):
                    return 0
            """,
            tmp_path,
            doc_text="This doc never names the class.\n",
        )
        findings = rule.check_project(project)
        assert rule_names(findings) == ["event-source-registry"]
        assert "not named in docs/ARCH.md" in findings[0].message

    def test_fires_on_stale_registry_entry(self, tmp_path):
        rule = EventSourceRegistryRule(
            registry=((HINT_PATH, "RetentionModel", "next_due_cycle"),),
            architecture_doc=None,
        )
        project = hint_project("class RetentionModel:\n    pass\n", tmp_path)
        findings = rule.check_project(project)
        assert rule_names(findings) == ["event-source-registry"]
        assert "stale registry entry" in findings[0].message

    def test_ignores_non_hint_methods(self, tmp_path):
        rule = EventSourceRegistryRule(registry=(), architecture_doc=None)
        project = hint_project(
            """\
            class Bank:
                def next_command(self):
                    return None

                def cycle_of_next_refresh(self):
                    return 0
            """,
            tmp_path,
        )
        assert rule.check_project(project) == []


# --------------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------------- #

class TestSuppressions:
    PATH = "src/repro/artifacts/fixture.py"

    def test_trailing_suppression_with_reason_silences(self):
        findings = lint_source(
            NoReflectionRule(),
            "setattr(o, n, v)  # reprolint: disable=no-reflection -- test fixture\n",
            rel_path=self.PATH,
        )
        assert findings == []

    def test_standalone_suppression_covers_next_statement(self):
        findings = lint_source(
            NoReflectionRule(),
            """\
            # reprolint: disable=no-reflection -- the reason block can be
            # longer than one line and still cover the statement below.
            setattr(o, n, v)
            """,
            rel_path=self.PATH,
        )
        assert findings == []

    def test_file_scope_suppression(self):
        findings = lint_source(
            NoReflectionRule(),
            """\
            # reprolint: disable-file=no-reflection -- fixture module
            setattr(o, n, v)
            eval(text)
            """,
            rel_path=self.PATH,
        )
        assert findings == []

    def test_reasonless_suppression_is_a_finding_and_does_not_silence(self):
        findings = lint_source(
            NoReflectionRule(),
            "setattr(o, n, v)  # reprolint: disable=no-reflection\n",
            rel_path=self.PATH,
        )
        assert sorted(rule_names(findings)) == [
            META_RULE_BAD_SUPPRESSION, "no-reflection",
        ]

    def test_unknown_rule_name_is_a_finding(self):
        findings = lint_source(
            NoReflectionRule(),
            "x = 1  # reprolint: disable=no-such-rule -- misspelled\n",
            rel_path=self.PATH,
        )
        assert rule_names(findings) == [META_RULE_BAD_SUPPRESSION]
        assert "no-such-rule" in findings[0].message

    def test_directive_in_docstring_is_ignored(self):
        findings = lint_source(
            NoReflectionRule(),
            '''\
            def document():
                """Write ``# reprolint: disable=RULE`` to suppress."""
                return "# reprolint: disable=no-reflection"
            ''',
            rel_path=self.PATH,
        )
        assert findings == []

    def test_meta_findings_cannot_be_suppressed(self):
        findings = lint_source(
            NoReflectionRule(),
            "x = 1  # reprolint: disable=bad-suppression,no-such -- try it\n",
            rel_path=self.PATH,
        )
        assert META_RULE_BAD_SUPPRESSION in rule_names(findings)

    def test_suppression_of_project_rule_finding(self, tmp_path):
        rule = EventSourceRegistryRule(registry=(), architecture_doc=None)
        source = textwrap.dedent(
            """\
            class RetentionModel:
                # reprolint: disable=event-source-registry -- folded into the
                # refresh scheduler's hint; kept as a fixture of suppression.
                def next_due_cycle(self):
                    return 0
            """
        )
        ctx = FileContext(HINT_PATH, source, ast.parse(source))
        project = Project(tmp_path, {HINT_PATH: ctx})
        result = run_rules(project, [rule])
        assert result.findings == []

    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n", encoding="utf-8")
        project, errors = parse_project(tmp_path, ["src/repro"])
        assert rule_names(errors) == [META_RULE_PARSE_ERROR]
        result = run_rules(project, [NoReflectionRule()], errors)
        assert rule_names(result.findings) == [META_RULE_PARSE_ERROR]


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #

def finding(rule="canonical-json", path="src/repro/service/x.py",
            line=1, message="msg"):
    return Finding(rule=rule, path=path, line=line, col=0, message=message)


class TestBaseline:
    def test_partition_new_accepted_stale(self):
        baseline = [
            BaselineEntry(rule="canonical-json", path="src/repro/service/x.py",
                          message="msg", reason="why"),
            BaselineEntry(rule="determinism", path="src/repro/dram/y.py",
                          message="gone", reason="why"),
        ]
        split = partition([finding(), finding(message="fresh")], baseline)
        assert [f.message for f in split.accepted] == ["msg"]
        assert [f.message for f in split.new] == ["fresh"]
        assert [e.message for e in split.stale] == ["gone"]

    def test_matching_ignores_line_numbers_but_counts_multiplicity(self):
        baseline = [
            BaselineEntry(rule="canonical-json", path="src/repro/service/x.py",
                          message="msg", reason="why", line=10),
        ]
        # Two identical findings, one baseline entry: one accepted, one new.
        split = partition([finding(line=99), finding(line=120)], baseline)
        assert len(split.accepted) == 1
        assert len(split.new) == 1
        assert split.stale == []

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_load_rejects_placeholder_and_empty_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        for reason in ("", "   ", "TODO: justify or fix"):
            path.write_text(json.dumps({
                "version": 1,
                "entries": [{"rule": "r", "path": "p", "message": "m",
                             "reason": reason}],
            }), encoding="utf-8")
            with pytest.raises(BaselineError, match="no\\s+justification"):
                load_baseline(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(BaselineError, match="version"):
            load_baseline(path)

    def test_write_carries_reasons_and_stamps_placeholders(self, tmp_path):
        path = tmp_path / "baseline.json"
        previous = [
            BaselineEntry(rule="canonical-json", path="src/repro/service/x.py",
                          message="msg", reason="kept reason"),
        ]
        count = write_baseline(path, [finding(), finding(message="fresh")],
                               previous)
        assert count == 2
        data = json.loads(path.read_text(encoding="utf-8"))
        reasons = {e["message"]: e["reason"] for e in data["entries"]}
        assert reasons["msg"] == "kept reason"
        assert reasons["fresh"] == "TODO: justify or fix"
        # The stamped placeholder makes the written baseline unloadable
        # until a human writes the justification.
        with pytest.raises(BaselineError):
            load_baseline(path)


# --------------------------------------------------------------------------- #
# CLI exit codes (the CI contract)
# --------------------------------------------------------------------------- #

def write_tree(root, files):
    for rel_path, source in files.items():
        path = root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


CLEAN_TREE = {
    # The committed manifest registers _ArrayBank's per-command path in
    # this file, so the clean fixture must define every registered
    # qualname (else the stale-entry detection fires, by design).
    "src/repro/dram/bank.py": """\
        class Bank:
            def __init__(self):
                self.open_row = None

        class _ArrayBank:
            def activate(self, row, cycle):
                return cycle

            def precharge(self, cycle):
                return cycle

            def read(self, cycle):
                return cycle

            def write(self, cycle):
                return cycle

            def can_activate(self, cycle):
                return True

            def can_precharge(self, cycle):
                return True

            def can_read(self, cycle):
                return True

            def can_write(self, cycle):
                return True
        """,
}

#: One violating fixture tree per rule: `python -m repro lint` must exit
#: nonzero when any single rule's violation is introduced.
VIOLATIONS = {
    "no-reflection": {
        "src/repro/artifacts/evil.py": "setattr(obj, name, value)\n",
    },
    "determinism": {
        "src/repro/dram/evil.py": """\
            import time

            def stamp():
                return time.time()
            """,
    },
    "canonical-json": {
        "src/repro/service/evil.py": """\
            import json

            def encode(payload):
                return json.dumps(payload)
            """,
    },
    "hot-path-alloc": {
        # The committed manifest registers MemoryController.tick in this file.
        "src/repro/controller/controller.py": """\
            class MemoryController:
                def tick(self):
                    return [r for r in self.queue]
            """,
    },
    "cache-key-completeness": {
        "src/repro/system/config.py": """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SystemConfig:
                nrh: int
                blast_radius: int
            """,
        "src/repro/experiments/cache.py": """\
            def config_payload(config):
                return {"nrh": config.nrh}
            """,
    },
    "event-source-registry": {
        "src/repro/attacks/evil.py": """\
            class BurstPattern:
                def next_event_cycle(self):
                    return 0
            """,
    },
}


class TestCliExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN_TREE)
        assert lint_main(["--root", str(tmp_path)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    @pytest.mark.parametrize("rule_name", sorted(VIOLATIONS))
    def test_each_rule_violation_exits_nonzero(self, rule_name, tmp_path,
                                               capsys):
        write_tree(tmp_path, CLEAN_TREE)
        write_tree(tmp_path, VIOLATIONS[rule_name])
        assert lint_main(["--root", str(tmp_path)]) == 1
        assert rule_name in capsys.readouterr().out

    def test_repro_cli_subcommand_wiring(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        write_tree(tmp_path, CLEAN_TREE)
        write_tree(tmp_path, VIOLATIONS["determinism"])
        assert repro_main(["lint", "--root", str(tmp_path)]) == 1
        assert repro_main(
            ["lint", "--root", str(tmp_path), "src/repro/dram/bank.py"]
        ) == 0
        capsys.readouterr()

    def test_json_format_reports_new_findings(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN_TREE)
        write_tree(tmp_path, VIOLATIONS["canonical-json"])
        assert lint_main(["--root", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["new"] == 1
        assert report["new"][0]["rule"] == "canonical-json"
        assert report["new"][0]["path"] == "src/repro/service/evil.py"

    def test_baseline_accepts_reviewed_findings(self, tmp_path, capsys):
        write_tree(tmp_path, CLEAN_TREE)
        write_tree(tmp_path, VIOLATIONS["canonical-json"])
        baseline = tmp_path / "tools" / "reprolint_baseline.json"

        # --write-baseline stamps a placeholder the next load rejects ...
        assert lint_main(
            ["--root", str(tmp_path), "--write-baseline"]
        ) == 0
        assert lint_main(["--root", str(tmp_path)]) == 2  # usage error

        # ... and editing in a real reason makes the run clean.
        data = json.loads(baseline.read_text(encoding="utf-8"))
        for entry in data["entries"]:
            entry["reason"] = "reviewed in a test fixture"
        baseline.write_text(json.dumps(data), encoding="utf-8")
        assert lint_main(["--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path / "nowhere")]) == 2
        capsys.readouterr()

    def test_list_rules_names_all_six(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.name in out
