"""Tests for the mitigation base classes and the preventive refresh queue."""

import pytest

from repro.core.mitigation import (
    ControllerMitigation,
    MitigationStats,
    NoMitigation,
    PreventiveRefresh,
)


class QueueOnly(ControllerMitigation):
    """Concrete controller mechanism used to exercise the queue helpers."""

    name = "queue-only"

    def on_activate(self, bank_id, row, cycle):
        self.stats.tracked_activations += 1


class TestPreventiveRefreshQueue:
    def test_queue_and_pop_fifo(self):
        mech = QueueOnly(nrh=100)
        mech.queue_refresh(PreventiveRefresh(bank_id=1, aggressor_row=10, num_rows=4))
        mech.queue_refresh(PreventiveRefresh(bank_id=1, aggressor_row=20, num_rows=4))
        assert mech.pending_refresh(1).aggressor_row == 10
        assert mech.pop_refresh(1).aggressor_row == 10
        assert mech.pop_refresh(1).aggressor_row == 20
        assert mech.pop_refresh(1) is None

    def test_banks_with_pending(self):
        mech = QueueOnly(nrh=100)
        mech.queue_refresh(PreventiveRefresh(bank_id=3, aggressor_row=1, num_rows=2))
        assert mech.banks_with_pending_refreshes() == [3]
        mech.pop_refresh(3)
        assert mech.banks_with_pending_refreshes() == []

    def test_total_pending_rows(self):
        mech = QueueOnly(nrh=100)
        mech.queue_refresh(PreventiveRefresh(bank_id=0, aggressor_row=1, num_rows=4))
        mech.queue_refresh(PreventiveRefresh(bank_id=1, aggressor_row=2, num_rows=1))
        assert mech.total_pending_rows() == 5
        assert mech.stats.preventive_refresh_rows == 5

    def test_reset_clears_queue_and_stats(self):
        mech = QueueOnly(nrh=100)
        mech.on_activate(0, 1, 0)
        mech.queue_refresh(PreventiveRefresh(bank_id=0, aggressor_row=1, num_rows=4))
        mech.reset()
        assert mech.total_pending_rows() == 0
        assert mech.stats.tracked_activations == 0

    def test_default_rfm_interface(self):
        mech = QueueOnly(nrh=100)
        assert not mech.rfm_needed(0)
        mech.acknowledge_rfm(0, 10)  # no-op by default


class TestBaseValidation:
    def test_invalid_nrh(self):
        with pytest.raises(ValueError):
            QueueOnly(nrh=0)

    def test_invalid_blast_radius(self):
        with pytest.raises(ValueError):
            QueueOnly(nrh=10, blast_radius=0)

    def test_victim_rows_per_aggressor(self):
        assert QueueOnly(nrh=10, blast_radius=2).victim_rows_per_aggressor == 4
        assert QueueOnly(nrh=10, blast_radius=1).victim_rows_per_aggressor == 2

    def test_default_storage_is_empty(self):
        assert QueueOnly(nrh=10).storage_overhead_bits(64, 1000) == {}

    def test_stats_as_dict(self):
        stats = MitigationStats(backoffs=2, rfm_commands=3)
        d = stats.as_dict()
        assert d["backoffs"] == 2 and d["rfm_commands"] == 3


class TestNoMitigation:
    def test_tracks_activations_only(self):
        none = NoMitigation()
        none.on_activate(0, 1, 0)
        assert none.stats.tracked_activations == 1
        assert none.total_pending_rows() == 0
        assert none.act_energy_multiplier == 1.0
