"""Tests for the DRAM energy model."""

import pytest

from repro.energy.drampower import EnergyModel, EnergyParameters


class TestEnergyModel:
    def test_empty_simulation_only_background(self):
        model = EnergyModel()
        breakdown = model.compute({}, cycles=1000)
        assert breakdown.total == pytest.approx(breakdown.background)
        assert breakdown.background == pytest.approx(1000 * model.params.background_nj_per_cycle)

    def test_command_energies_accumulate(self):
        params = EnergyParameters(act_pre_nj=10, read_nj=2, write_nj=3, refresh_nj=100,
                                  rfm_nj=50, background_nj_per_cycle=0.0)
        model = EnergyModel(params)
        breakdown = model.compute(
            {"ACT": 5, "RD": 4, "WR": 2, "REF": 1, "RFM": 2}, cycles=100
        )
        assert breakdown.activation == 50
        assert breakdown.read == 8
        assert breakdown.write == 6
        assert breakdown.refresh == 100
        assert breakdown.rfm == 100
        assert breakdown.total == 264

    def test_act_multiplier_applies_only_to_activations(self):
        model = EnergyModel(EnergyParameters(background_nj_per_cycle=0.0))
        plain = model.compute({"ACT": 10, "RD": 10}, cycles=0)
        boosted = model.compute({"ACT": 10, "RD": 10}, cycles=0, act_energy_multiplier=1.19)
        assert boosted.activation == pytest.approx(plain.activation * 1.19)
        assert boosted.read == plain.read

    def test_preventive_rows_counted(self):
        params = EnergyParameters(vrr_row_nj=20, internal_victim_row_nj=5,
                                  background_nj_per_cycle=0.0)
        model = EnergyModel(params)
        breakdown = model.compute({"VRR": 3}, cycles=0, internal_victim_rows=4,
                                  borrowed_refresh_rows=2)
        assert breakdown.preventive == 3 * 20 + 6 * 5

    def test_longer_execution_costs_more_background(self):
        model = EnergyModel()
        short = model.compute({"ACT": 100}, cycles=10_000)
        long = model.compute({"ACT": 100}, cycles=20_000)
        assert long.total > short.total

    def test_breakdown_as_dict(self):
        model = EnergyModel()
        d = model.compute({"ACT": 1}, cycles=1).as_dict()
        assert set(d) == {"activation", "read", "write", "refresh", "rfm",
                          "preventive", "background", "total"}

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().compute({}, cycles=-1)
