"""Tests for DRAM command definitions."""

from repro.dram.commands import CLOSING_COMMANDS, OPENING_COMMANDS, Command, CommandKind


class TestCommandKind:
    def test_column_commands(self):
        assert CommandKind.RD.is_column
        assert CommandKind.WR.is_column
        assert not CommandKind.ACT.is_column

    def test_row_commands(self):
        assert CommandKind.ACT.is_row
        assert CommandKind.PRE.is_row
        assert CommandKind.PREA.is_row
        assert not CommandKind.RD.is_row

    def test_refresh_commands(self):
        assert CommandKind.REF.is_refresh
        assert CommandKind.RFM.is_refresh
        assert CommandKind.VRR.is_refresh
        assert not CommandKind.ACT.is_refresh

    def test_opening_and_closing_sets(self):
        assert CommandKind.ACT in OPENING_COMMANDS
        assert CommandKind.PRE in CLOSING_COMMANDS
        assert CommandKind.PREA in CLOSING_COMMANDS


class TestCommand:
    def test_defaults(self):
        cmd = Command(CommandKind.REF)
        assert cmd.bank_id is None
        assert cmd.row is None
        assert cmd.cycle == 0

    def test_str_includes_fields(self):
        cmd = Command(CommandKind.ACT, bank_id=3, row=17, cycle=99)
        text = str(cmd)
        assert "ACT" in text and "b3" in text and "r17" in text and "@99" in text

    def test_frozen(self):
        cmd = Command(CommandKind.ACT, bank_id=1, row=2)
        try:
            cmd.row = 5
            raised = False
        except Exception:
            raised = True
        assert raised
