"""Tests for DRAM address mappings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.controller.address_mapping import (
    abacus_mapping,
    mapping_by_name,
    mop_mapping,
    robarracoch_mapping,
)
from repro.dram.organization import PAPER_ORGANIZATION


ALL_MAPPINGS = [
    mop_mapping(PAPER_ORGANIZATION),
    robarracoch_mapping(PAPER_ORGANIZATION),
    abacus_mapping(PAPER_ORGANIZATION),
]


class TestBasicDecoding:
    def test_address_bits_cover_capacity(self):
        for mapping in ALL_MAPPINGS:
            assert 2 ** mapping.address_bits == PAPER_ORGANIZATION.capacity_bytes

    def test_decode_zero(self):
        for mapping in ALL_MAPPINGS:
            dram = mapping.decode(0)
            assert (dram.channel, dram.rank, dram.bankgroup, dram.bank, dram.row, dram.column) == (
                0, 0, 0, 0, 0, 0,
            )

    def test_decode_validates_against_organization(self):
        for mapping in ALL_MAPPINGS:
            dram = mapping.decode(123456789)
            PAPER_ORGANIZATION.validate_address(dram)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            mop_mapping(PAPER_ORGANIZATION).decode(-1)

    def test_mapping_by_name(self):
        assert mapping_by_name("MOP", PAPER_ORGANIZATION).name == "MOP"
        assert mapping_by_name("RoBaRaCoCh", PAPER_ORGANIZATION).name == "RoBaRaCoCh"
        assert mapping_by_name("ABACuS", PAPER_ORGANIZATION).name == "ABACuS"
        with pytest.raises(ValueError):
            mapping_by_name("bogus", PAPER_ORGANIZATION)


class TestMappingProperties:
    def test_same_line_same_coordinates(self):
        mapping = mop_mapping(PAPER_ORGANIZATION)
        a = mapping.decode(0x12340)
        b = mapping.decode(0x12340 + 8)  # same 64-byte line
        assert a == b

    def test_abacus_mapping_interleaves_lines_across_banks(self):
        """Consecutive cache lines land in different banks, same row address."""
        mapping = abacus_mapping(PAPER_ORGANIZATION)
        line = PAPER_ORGANIZATION.cacheline_bytes
        first = mapping.decode(0)
        second = mapping.decode(line)
        assert (first.bank, first.bankgroup) != (second.bank, second.bankgroup)
        assert first.row == second.row

    def test_robarracoch_keeps_consecutive_lines_in_same_row(self):
        mapping = robarracoch_mapping(PAPER_ORGANIZATION)
        line = PAPER_ORGANIZATION.cacheline_bytes
        first = mapping.decode(0)
        second = mapping.decode(line)
        assert first.row == second.row
        assert first.bank == second.bank

    def test_mop_interleaves_after_column_group(self):
        mapping = mop_mapping(PAPER_ORGANIZATION, mop_width_bits=2)
        line = PAPER_ORGANIZATION.cacheline_bytes
        coords = [mapping.decode(i * line) for i in range(8)]
        # The first four lines stay in the same bank (the MOP group), the
        # fifth moves to another bank.
        assert len({(c.bank, c.bankgroup, c.rank) for c in coords[:4]}) == 1
        assert (coords[4].bank, coords[4].bankgroup) != (coords[0].bank, coords[0].bankgroup)


@settings(max_examples=200, deadline=None)
@given(
    address=st.integers(min_value=0, max_value=PAPER_ORGANIZATION.capacity_bytes - 1),
    mapping_index=st.integers(min_value=0, max_value=2),
)
def test_encode_decode_roundtrip(address, mapping_index):
    mapping = ALL_MAPPINGS[mapping_index]
    line_address = (address // 64) * 64
    dram = mapping.decode(line_address)
    assert mapping.encode(dram) == line_address


@settings(max_examples=100, deadline=None)
@given(address=st.integers(min_value=0, max_value=PAPER_ORGANIZATION.capacity_bytes - 1))
def test_distinct_lines_decode_to_distinct_coordinates(address):
    mapping = mop_mapping(PAPER_ORGANIZATION)
    line = (address // 64) * 64
    other = (line + 64) % PAPER_ORGANIZATION.capacity_bytes
    assert mapping.decode(line) != mapping.decode(other)
