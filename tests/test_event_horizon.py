"""Event-horizon engine fidelity tests.

The system simulator is event-driven in time: ``run()`` skips to the exact
minimum of every component's next-event hint.  These tests pin the two
properties that make the skipping *safe*:

1. **Determinism harness** -- the event-driven path produces byte-identical
   :class:`~repro.system.metrics.SimulationResult` payloads to the
   cycle-stepped reference path (``strict_tick=True``) for every mechanism
   on one and two channels.  A wake hint that fires late shows up here as a
   payload mismatch.

2. **Refresh fidelity** -- a time skip can never jump past a tREFI boundary:
   at every observed cycle the per-rank postponed-REF debt stays within the
   DDR5 postpone budget (+1 for the boundary that may land while an urgent
   REF drains its rank), even on skip-heavy idle workloads.
"""

import json

import pytest

from repro.core.factory import MECHANISM_NAMES
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.refresh import RefreshScheduler
from repro.experiments.cache import result_to_dict
from repro.experiments.sweep import build_job_traces, mechanism_job
from repro.system.config import paper_system_config
from repro.system.simulator import SystemSimulator, simulate

APPS = ("429.mcf", "401.bzip2")
ACCESSES = 300


def _payload(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestStrictTickDeterminism:
    """Event-driven time skipping must not change any simulated number."""

    @pytest.mark.parametrize("channels", (1, 2))
    @pytest.mark.parametrize("mechanism", MECHANISM_NAMES)
    def test_event_path_matches_strict_tick(self, mechanism, channels):
        base = paper_system_config().with_overrides(channels=channels)
        job = mechanism_job(base, APPS, mechanism, 64, ACCESSES)
        event = simulate(
            job.config, build_job_traces(job), workload_name=job.workload_name
        )
        strict = simulate(
            job.config,
            build_job_traces(job),
            workload_name=job.workload_name,
            strict_tick=True,
        )
        assert _payload(event) == _payload(strict)

    def test_event_path_actually_skips(self):
        """The equality above is meaningful: far fewer ticks than cycles."""
        base = paper_system_config()
        job = mechanism_job(base, APPS, "None", 64, ACCESSES)
        sim = SystemSimulator(job.config, build_job_traces(job))
        controller = sim.controllers[0]
        ticks = 0
        original = controller.tick

        def counting_tick(cycle):
            nonlocal ticks
            ticks += 1
            return original(cycle)

        controller.tick = counting_tick
        result = sim.run()
        assert ticks < result.cycles  # time was skipped ...
        assert result.cycles > 0      # ... in a non-trivial simulation


def _idle_trace(name: str, accesses: int, gap: int) -> Trace:
    """A trace whose accesses are separated by huge compute gaps."""
    entries = [
        TraceEntry(gap_instructions=gap, address=(7 * index + 3) * 4096)
        for index in range(accesses)
    ]
    return Trace(name, entries)


class TestRefreshSkipFidelity:
    """Time skips never postpone REFs beyond the DDR5 budget."""

    def test_pending_bounded_on_skip_heavy_idle_workload(self, monkeypatch):
        config = paper_system_config(mechanism="None", nrh=1024).with_overrides(
            num_cores=1
        )
        # ~200k instructions between accesses => tens of thousands of idle
        # DRAM cycles per access, many times tREFI, so the run is dominated
        # by long time skips.
        trace = _idle_trace("idler", accesses=24, gap=200_000)

        observed = []
        original_tick = RefreshScheduler.tick

        def spy(self, cycle):
            original_tick(self, cycle)
            observed.append(
                max(self.pending_refreshes(rank) for rank in range(self.num_ranks))
            )

        monkeypatch.setattr(RefreshScheduler, "tick", spy)
        result = simulate(config, [trace])

        assert result.cycles > 20 * 6240  # many tREFI boundaries were crossed
        assert observed, "refresh scheduler was never consulted"
        limit = RefreshScheduler.MAX_POSTPONED + 1
        assert max(observed) <= limit, (
            f"a time skip postponed REFs beyond the DDR5 budget: "
            f"max pending {max(observed)} > {limit}"
        )
        # And the debt is actually paid: REFs were issued throughout.
        assert result.controller_stats["refreshes"] > 0

    def test_idle_workload_matches_strict_tick(self):
        """The skip-heavy run is byte-identical to the cycle-stepped run."""
        config = paper_system_config(mechanism="None", nrh=1024).with_overrides(
            num_cores=1
        )
        event = simulate(config, [_idle_trace("idler", 12, 200_000)])
        strict = simulate(
            config, [_idle_trace("idler", 12, 200_000)], strict_tick=True
        )
        assert _payload(event) == _payload(strict)

    def test_controller_hint_includes_refresh_due_cycle(self):
        """An idle controller's wake hint never exceeds the next tREFI due."""
        from repro.controller.address_mapping import mop_mapping
        from repro.controller.controller import MemoryController
        from repro.dram.device import DramDevice
        from repro.dram.organization import DramOrganization
        from repro.dram.timing import ddr5_3200an

        org = DramOrganization(
            ranks=1, bankgroups=2, banks_per_group=2, rows=512, columns=32
        )
        device = DramDevice(org, ddr5_3200an())
        controller = MemoryController(device, mop_mapping(org))
        issued, hint = controller.tick(0)
        assert not issued
        assert hint <= controller.refresh.next_due_cycle()
        assert hint > 0
        # The public hint accessor agrees with what tick just returned (an
        # idle tick has no side effects besides refresh accrual, which
        # next_event_cycle performs too).
        assert controller.next_event_cycle(0) == hint
        # On a fully idle controller the only event is the tREFI boundary.
        assert hint == controller.refresh.next_due_cycle()
