"""ResultCache concurrency, legacy migration, and the sharded sweep tier.

The concurrent-writer regression is the PR 5 satellite fix: a monolithic
single-JSON store loses entries when two workers read-modify-write it at the
same time.  The sharded per-key layout has no such window -- every entry is
its own file landed by an atomic rename -- and the stress test here drives
real concurrent writer *processes* against one directory to pin that.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor


from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    LEGACY_MONOLITHIC_NAME,
    ResultCache,
    result_to_dict,
)
from repro.experiments.sweep import (
    SHARDS_PER_WORKER,
    SweepEngine,
    SweepSpec,
    attack_search_job,
    build_shards,
    estimate_job_cost,
    mechanism_job,
)
from repro.system.config import paper_system_config
from repro.system.metrics import SimulationResult


def make_result(tag: int) -> SimulationResult:
    return SimulationResult(
        mechanism="None",
        nrh=64,
        workload=f"w{tag}",
        cycles=100 + tag,
        core_ipcs=[1.0],
        core_names=[f"c{tag}"],
        command_counts={"ACT": tag},
        controller_stats={},
        mitigation_stats={},
        energy_nj=float(tag),
        energy_breakdown={},
        is_secure=True,
    )


def _write_batch(args):
    """Worker entry point: put a batch of (key, tag) entries into one dir."""
    directory, pairs = args
    cache = ResultCache(directory)
    for key, tag in pairs:
        cache.put(key, make_result(tag), {"tag": tag})
    return len(pairs)


class TestConcurrentWriters:
    def test_parallel_writers_lose_no_entries(self, tmp_path):
        """Regression: N processes writing simultaneously keep every entry.

        With a monolithic JSON store two workers finishing at the same time
        race on the read-modify-write and one of them erases the other's
        entry; the sharded per-key layout must never drop one.
        """
        directory = str(tmp_path / "cache")
        writers = 4
        per_writer = 25
        batches = [
            (directory, [(f"key-{w}-{i}", w * per_writer + i)
                         for i in range(per_writer)])
            for w in range(writers)
        ]
        with ProcessPoolExecutor(max_workers=writers) as pool:
            assert sum(pool.map(_write_batch, batches)) == writers * per_writer
        cache = ResultCache(directory)
        assert cache.disk_entry_count() == writers * per_writer
        for w in range(writers):
            for i in range(per_writer):
                result = cache.get(f"key-{w}-{i}")
                assert result is not None
                assert result.cycles == 100 + w * per_writer + i

    def test_same_key_concurrent_writers_leave_valid_entry(self, tmp_path):
        """Two writers racing on one key: either wins, the file stays valid."""
        directory = str(tmp_path / "cache")
        batches = [
            (directory, [("shared-key", 1)]),
            (directory, [("shared-key", 2)]),
        ]
        with ProcessPoolExecutor(max_workers=2) as pool:
            list(pool.map(_write_batch, batches))
        result = ResultCache(directory).get("shared-key")
        assert result is not None
        assert result.cycles in (101, 102)


class TestMonolithicMigration:
    def _write_monolith(self, directory, entries):
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, LEGACY_MONOLITHIC_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entries, handle)
        return path

    def test_entries_migrate_to_sharded_files(self, tmp_path):
        directory = str(tmp_path / "cache")
        entries = {
            f"legacy-{i}": {
                "schema": CACHE_SCHEMA_VERSION,
                "key": f"legacy-{i}",
                "job": {"tag": i},
                "result": result_to_dict(make_result(i)),
            }
            for i in range(3)
        }
        path = self._write_monolith(directory, entries)
        cache = ResultCache(directory)
        assert cache.migrated_entries == 3
        assert not os.path.exists(path)
        assert os.path.exists(path + ".migrated")
        assert cache.disk_entry_count() == 3
        # Migration must not warm the memory layer or the hit statistics.
        assert cache.stores == 0
        for i in range(3):
            result = cache.get(f"legacy-{i}")
            assert result is not None and result.cycles == 100 + i
        assert cache.disk_hits == 3

    def test_stale_schema_entries_are_dropped(self, tmp_path):
        directory = str(tmp_path / "cache")
        entries = {
            "stale": {
                "schema": CACHE_SCHEMA_VERSION - 1,
                "key": "stale",
                "result": result_to_dict(make_result(1)),
            },
            "good": {
                "schema": CACHE_SCHEMA_VERSION,
                "key": "good",
                "result": result_to_dict(make_result(2)),
            },
        }
        self._write_monolith(directory, entries)
        cache = ResultCache(directory)
        assert cache.migrated_entries == 1
        assert cache.get("stale") is None
        assert cache.get("good") is not None

    def test_migration_runs_once(self, tmp_path):
        directory = str(tmp_path / "cache")
        self._write_monolith(directory, {})
        ResultCache(directory)
        second = ResultCache(directory)
        assert second.migrated_entries == 0

    def test_corrupt_monolith_is_parked_not_fatal(self, tmp_path):
        directory = str(tmp_path / "cache")
        os.makedirs(directory)
        path = os.path.join(directory, LEGACY_MONOLITHIC_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        cache = ResultCache(directory)
        assert cache.migrated_entries == 0
        assert os.path.exists(path + ".migrated")


class TestAbsorb:
    def test_absorb_populates_memory_only(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.absorb("k", make_result(5))
        assert cache.absorbed == 1
        assert cache.stores == 0
        assert cache.disk_entry_count() == 0  # the worker wrote it elsewhere
        assert cache.get("k").cycles == 105
        assert "stored" in cache.summary()


SMALL_SPEC = SweepSpec(
    mechanisms=("Chronus",),
    nrh_values=(1024,),
    mixes=(("429.mcf", "401.bzip2"), ("429.mcf",)),
    accesses_per_core=150,
)


class TestShardPlanning:
    def _jobs(self):
        base = paper_system_config()
        return [
            mechanism_job(base, ("429.mcf",), "Chronus", 1024, accesses, seed=seed)
            for seed, accesses in enumerate((100, 200, 400, 800, 1600, 3200))
        ]

    def test_longest_jobs_dispatch_first(self):
        shards = build_shards(self._jobs(), workers=2)
        costs = [sum(estimate_job_cost(job) for job in shard) for shard in shards]
        assert costs == sorted(costs, reverse=True)

    def test_shard_count_bounded(self):
        jobs = self._jobs()
        shards = build_shards(jobs, workers=2)
        assert sum(len(shard) for shard in shards) == len(jobs)
        assert len(shards) <= max(len(jobs), 2 * SHARDS_PER_WORKER)
        assert build_shards([], workers=4) == []

    def test_attack_probes_cost_more_than_benign_jobs(self):
        from repro.attacks.patterns import AttackSpec

        base = paper_system_config()
        benign = mechanism_job(base, ("429.mcf",), "Chronus", 1024, 500)
        probe = attack_search_job(
            base, "Chronus", 1024, AttackSpec.create("single_sided"),
            accesses_per_core=500,
        )
        assert estimate_job_cost(probe) > estimate_job_cost(benign)


class TestPersistentPoolEngine:
    def test_pool_persists_across_runs(self, tmp_path):
        engine = SweepEngine(
            cache=ResultCache(str(tmp_path / "cache")), workers=2
        )
        try:
            engine.run(SMALL_SPEC)
            pool = engine._pool
            assert pool is not None
            # A second run (new jobs via a different seed) reuses the pool.
            second = SweepSpec(
                mechanisms=("Chronus",),
                nrh_values=(1024,),
                mixes=(("429.mcf",),),
                accesses_per_core=150,
                seed=7,
            )
            engine.run(second)
            assert engine._pool is pool
        finally:
            engine.close()
        assert engine._pool is None

    def test_workers_stream_results_to_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        engine = SweepEngine(cache=cache, workers=2)
        try:
            results = engine.run(SMALL_SPEC)
        finally:
            engine.close()
        assert results
        # Every executed entry was written by a worker and only absorbed by
        # the parent -- no parent-side serialisation.
        assert cache.absorbed == engine.executed_jobs > 0
        assert cache.stores == 0
        assert cache.disk_entry_count() == engine.executed_jobs
        # A fresh engine over the same directory is served from disk.
        cold = SweepEngine(cache=ResultCache(str(tmp_path / "cache")), workers=0)
        cold.run(SMALL_SPEC)
        assert cold.executed_jobs == 0

    def test_run_report_records_shards_and_hits(self, tmp_path):
        engine = SweepEngine(
            cache=ResultCache(str(tmp_path / "cache")), workers=2
        )
        try:
            engine.run(SMALL_SPEC)
            report = engine.last_run_report
            assert report.executed_jobs == report.total_jobs > 0
            assert report.cached_jobs == 0
            assert sum(s.jobs for s in report.shards) == report.executed_jobs
            assert all(s.seconds >= 0.0 for s in report.shards)
            engine.run(SMALL_SPEC)
            warm = engine.last_run_report
            assert warm.executed_jobs == 0
            assert warm.cached_jobs == warm.total_jobs
            assert warm.shards == []
            lines = warm.summary_lines()
            assert any("cached" in line for line in lines)
        finally:
            engine.close()

    def test_serial_and_sharded_results_identical(self, tmp_path):
        serial = SweepEngine(workers=0).run(SMALL_SPEC)
        engine = SweepEngine(workers=2)
        try:
            sharded = engine.run(SMALL_SPEC)
        finally:
            engine.close()
        assert json.dumps(
            {k: result_to_dict(v) for k, v in sorted(serial.items())},
            sort_keys=True,
        ) == json.dumps(
            {k: result_to_dict(v) for k, v in sorted(sharded.items())},
            sort_keys=True,
        )