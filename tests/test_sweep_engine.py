"""Tests for the sweep engine: expansion, determinism, caching, CLI."""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweep import (
    WORKERS_ENV,
    SimJob,
    SweepEngine,
    SweepSpec,
    alone_job,
    attack_job,
    baseline_job,
    build_job_traces,
    default_workers,
    mechanism_job,
)
from repro.system.config import appendix_e_system_config, paper_system_config

ACCESSES = 200

SPEC = SweepSpec(
    mechanisms=("Chronus", "PRAC-4"),
    nrh_values=(1024, 128),
    mixes=(("429.mcf", "401.bzip2"), ("429.mcf",)),
    accesses_per_core=ACCESSES,
)


def results_digest(results) -> str:
    """Canonical JSON of a key->result mapping (byte-comparable)."""
    return json.dumps(
        {key: result_to_dict(result) for key, result in sorted(results.items())},
        sort_keys=True,
    )


class TestDefaultWorkers:
    """$REPRO_SWEEP_WORKERS parsing: loud on garbage, clamped on negatives."""

    def test_unset_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 0
        assert default_workers(auto=True) >= 1

    def test_valid_value_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3
        assert default_workers(auto=True) == 3

    def test_unparsable_value_raises_naming_the_text(self, monkeypatch):
        # Used to silently degrade to serial, hiding the typo entirely.
        monkeypatch.setenv(WORKERS_ENV, "eight")
        with pytest.raises(ValueError, match=r"REPRO_SWEEP_WORKERS.*'eight'"):
            default_workers()
        with pytest.raises(ValueError, match=r"REPRO_SWEEP_WORKERS.*'eight'"):
            default_workers(auto=True)

    def test_negative_value_clamped_to_serial(self, monkeypatch):
        # Negative counts used to flow through to the engine verbatim.
        monkeypatch.setenv(WORKERS_ENV, "-4")
        assert default_workers() == 0
        assert SweepEngine().workers == 0


class TestExpansion:
    def test_expand_counts_jobs(self):
        jobs = SPEC.expand()
        # 2 alone + 2 baselines + 2 mech x 2 nrh x 2 mixes = 12, minus the
        # single-application baseline that is identical to its alone run.
        assert len(jobs) == 11
        assert len({job.key for job in jobs}) == len(jobs)
        assert SPEC.num_points() == 8

    def test_applications_deduplicated_in_order(self):
        assert SPEC.applications == ("429.mcf", "401.bzip2")

    def test_alone_and_single_app_baseline_share_one_job(self):
        base = paper_system_config()
        alone = alone_job(base, "429.mcf", ACCESSES)
        baseline = baseline_job(base, ("429.mcf",), ACCESSES)
        assert alone.key == baseline.key

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            SweepSpec(mechanisms=("Nope",), nrh_values=(64,), mixes=(("429.mcf",),))

    def test_job_core_count_must_match_config(self):
        config = paper_system_config().with_overrides(num_cores=4)
        with pytest.raises(ValueError, match="cores"):
            SimJob(config=config, applications=("429.mcf",), accesses_per_core=ACCESSES)


class TestJobKeys:
    def test_key_ignores_workload_name(self):
        base = paper_system_config()
        a = mechanism_job(base, ("429.mcf",), "Chronus", 64, ACCESSES, workload_name="a")
        b = mechanism_job(base, ("429.mcf",), "Chronus", 64, ACCESSES, workload_name="b")
        assert a.key == b.key

    def test_key_covers_every_ipc_relevant_field(self):
        base = paper_system_config()
        reference = mechanism_job(base, ("429.mcf",), "Chronus", 64, ACCESSES)
        variants = [
            mechanism_job(base, ("429.mcf",), "Chronus", 32, ACCESSES),
            mechanism_job(base, ("429.mcf",), "PRAC-4", 64, ACCESSES),
            mechanism_job(base, ("429.mcf",), "Chronus", 64, ACCESSES + 1),
            mechanism_job(base, ("429.mcf",), "Chronus", 64, ACCESSES, seed=1),
            mechanism_job(base, ("401.bzip2",), "Chronus", 64, ACCESSES),
            mechanism_job(
                appendix_e_system_config().with_overrides(num_cores=1),
                ("429.mcf",), "Chronus", 64, ACCESSES,
            ),
        ]
        keys = {reference.key} | {job.key for job in variants}
        assert len(keys) == len(variants) + 1

    def test_baseline_key_depends_on_access_budget(self):
        """Regression: the old in-memory baseline cache keyed only on the
        application tuple, so changing IPC-relevant fields (e.g. the access
        budget) silently reused stale baselines."""
        base = paper_system_config()
        small = baseline_job(base, ("429.mcf", "401.bzip2"), 100)
        large = baseline_job(base, ("429.mcf", "401.bzip2"), 200)
        assert small.key != large.key

    def test_attack_job_traces_and_key(self):
        base = paper_system_config()
        job = attack_job(base, ("429.mcf", "401.bzip2", "403.gcc"), "PRAC-4", 64,
                         ACCESSES, attack_accesses=500)
        traces = build_job_traces(job)
        assert len(traces) == 4 == job.config.num_cores
        assert traces[0].name == "perf_attack"
        peaceful = mechanism_job(base, ("429.mcf", "401.bzip2", "403.gcc"),
                                 "PRAC-4", 64, ACCESSES)
        assert job.key != peaceful.key


class TestDeterminism:
    def test_same_spec_gives_byte_identical_results(self):
        first = SweepEngine().run(SPEC)
        second = SweepEngine().run(SPEC)
        assert results_digest(first) == results_digest(second)

    def test_two_worker_run_matches_serial(self):
        serial = SweepEngine(workers=0).run(SPEC)
        parallel = SweepEngine(workers=2).run(SPEC)
        assert results_digest(serial) == results_digest(parallel)


class TestCaching:
    def test_memory_cache_returns_identical_object(self):
        engine = SweepEngine()
        job = mechanism_job(paper_system_config(), ("429.mcf",), "Chronus", 64, ACCESSES)
        assert engine.run_job(job) is engine.run_job(job)
        assert engine.executed_jobs == 1

    def test_disk_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = SweepEngine(cache=ResultCache(cache_dir))
        results = first.run(SPEC)
        assert first.executed_jobs == len(SPEC.expand())

        second = SweepEngine(cache=ResultCache(cache_dir))
        again = second.run(SPEC)
        assert second.executed_jobs == 0
        assert second.cache.hit_rate() == 1.0
        assert second.cache.disk_hits == len(SPEC.expand())
        assert results_digest(results) == results_digest(again)

    def test_result_serialization_round_trip(self):
        engine = SweepEngine()
        job = mechanism_job(paper_system_config(), ("429.mcf",), "Chronus", 64, ACCESSES)
        result = engine.run_job(job)
        rebuilt = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert result_to_dict(rebuilt) == result_to_dict(result)

    def test_corrupted_entry_recovers(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        job = mechanism_job(paper_system_config(), ("429.mcf",), "Chronus", 64, ACCESSES)
        engine = SweepEngine(cache=ResultCache(cache_dir))
        expected = result_to_dict(engine.run_job(job))

        entry_path = os.path.join(cache_dir, job.key[:2], f"{job.key}.json")
        with open(entry_path, "w", encoding="utf-8") as handle:
            handle.write("{ truncated garbage")

        recovered = SweepEngine(cache=ResultCache(cache_dir))
        result = recovered.run_job(job)
        assert recovered.cache.corrupt_entries == 1
        assert recovered.executed_jobs == 1
        assert result_to_dict(result) == expected
        # The entry was rewritten and is valid again.
        fresh = SweepEngine(cache=ResultCache(cache_dir))
        assert result_to_dict(fresh.run_job(job)) == expected
        assert fresh.executed_jobs == 0

    def test_schema_mismatch_treated_as_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        job = mechanism_job(paper_system_config(), ("429.mcf",), "Chronus", 64, ACCESSES)
        engine = SweepEngine(cache=ResultCache(cache_dir))
        engine.run_job(job)

        entry_path = os.path.join(cache_dir, job.key[:2], f"{job.key}.json")
        with open(entry_path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        entry["schema"] = CACHE_SCHEMA_VERSION + 1
        with open(entry_path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)

        stale = SweepEngine(cache=ResultCache(cache_dir))
        stale.run_job(job)
        assert stale.cache.corrupt_entries == 1
        assert stale.executed_jobs == 1

    def test_cache_clear_and_contains(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        engine = SweepEngine(cache=cache)
        job = mechanism_job(paper_system_config(), ("429.mcf",), "Chronus", 64, ACCESSES)
        assert not cache.contains(job.key)
        engine.run_job(job)
        assert cache.contains(job.key)
        assert cache.disk_entry_count() == 1
        assert cache.clear() == 1
        assert not cache.contains(job.key)


class TestRunnerIntegration:
    def test_runners_share_engine_and_cache(self):
        engine = SweepEngine()
        first = ExperimentRunner(accesses_per_core=ACCESSES, engine=engine)
        second = ExperimentRunner(accesses_per_core=ACCESSES, engine=engine)
        a = first.baseline_result(("429.mcf", "401.bzip2"))
        b = second.baseline_result(("429.mcf", "401.bzip2"))
        assert a is b
        assert engine.executed_jobs == 1

    def test_baseline_distinguished_by_access_budget(self):
        engine = SweepEngine()
        small = ExperimentRunner(accesses_per_core=100, engine=engine)
        large = ExperimentRunner(accesses_per_core=200, engine=engine)
        a = small.baseline_result(("429.mcf",))
        b = large.baseline_result(("429.mcf",))
        assert a is not b
        assert engine.executed_jobs == 2

    def test_compare_uses_one_batched_engine_call(self):
        runner = ExperimentRunner(accesses_per_core=ACCESSES)
        comparisons = runner.compare(("Chronus",), (1024,), (("429.mcf",),))
        assert len(comparisons) == 1
        assert 0.0 < comparisons[0].mean_normalized_ws <= 1.2
        # alone/baseline (shared job) + mechanism run.
        assert runner.engine.executed_jobs == 2


class TestCli:
    def test_sweep_dry_run(self, capsys, tmp_path):
        code = cli_main([
            "sweep", "--dry-run", "--num-mixes", "1", "--nrh", "1024",
            "--accesses", "200", "--cache-dir", str(tmp_path / "cache"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "dry run:" in out
        assert "to simulate" in out

    def test_sweep_executes_and_caches(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        args = [
            "sweep", "--num-mixes", "1", "--nrh", "1024", "--accesses", "200",
            "--mechanisms", "Chronus", "--cache-dir", cache_dir,
        ]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert "normalized_ws" in first

        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert "0 jobs simulated" in second
        assert "100.0% hit rate" in second

    def test_cache_info_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cli_main([
            "sweep", "--num-mixes", "1", "--nrh", "1024", "--accesses", "200",
            "--mechanisms", "Chronus", "--cache-dir", cache_dir,
        ])
        capsys.readouterr()
        assert cli_main(["cache", "info", "--cache-dir", cache_dir]) == 0
        info = capsys.readouterr().out
        # One four-application mix: 4 alone runs + 1 baseline + 1 Chronus run.
        assert "entries: 6" in info
        assert cli_main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 6 entries" in capsys.readouterr().out

    def test_mechanisms_listing(self, capsys):
        assert cli_main(["mechanisms"]) == 0
        out = capsys.readouterr().out
        assert "Chronus" in out and "PRAC-4" in out
