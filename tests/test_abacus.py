"""Tests for ABACuS (all-bank sibling activation counters)."""

import pytest

from repro.core.abacus import ABACuS


def make_abacus(nrh=16, num_banks=4, table_entries=8):
    # The dict reference backend: these unit tests pin the update rules by
    # poking the internal table; tests/test_counter_backends.py pins the
    # array backend's observable equivalence against it.
    return ABACuS(
        nrh=nrh, num_banks=num_banks, table_entries=table_entries, backend="dict"
    )


class TestSiblingCounting:
    def test_different_banks_do_not_increment(self):
        abacus = make_abacus()
        abacus.on_activate(0, 7, 0)
        abacus.on_activate(1, 7, 1)
        abacus.on_activate(2, 7, 2)
        assert abacus._table[7].count == 0

    def test_same_bank_twice_increments(self):
        abacus = make_abacus()
        abacus.on_activate(0, 7, 0)
        abacus.on_activate(0, 7, 1)
        assert abacus._table[7].count == 1

    def test_counter_tracks_max_per_bank_count(self):
        abacus = make_abacus()
        # Bank 0 activates row 7 five times; siblings in other banks less.
        for cycle in range(5):
            abacus.on_activate(0, 7, cycle)
        assert abacus._table[7].count == 4

    def test_trigger_refreshes_rav_banks(self):
        abacus = make_abacus(nrh=4)  # trigger threshold 2
        abacus.on_activate(0, 9, 0)
        abacus.on_activate(1, 9, 1)
        abacus.on_activate(0, 9, 2)   # count -> 1, rav = {0}
        abacus.on_activate(0, 9, 3)   # count -> 2 == threshold, refresh
        banks = set(abacus.banks_with_pending_refreshes())
        assert banks, "a preventive refresh must be queued"
        for bank in banks:
            refresh = abacus.pending_refresh(bank)
            assert refresh.aggressor_row == 9

    def test_no_refresh_below_threshold(self):
        abacus = make_abacus(nrh=64)
        for cycle in range(10):
            abacus.on_activate(cycle % 4, 3, cycle)
        assert abacus.total_pending_rows() == 0


class TestTableManagement:
    def test_table_capacity_respected(self):
        abacus = make_abacus(table_entries=4)
        for row in range(20):
            abacus.on_activate(0, row, row)
        assert len(abacus._table) <= 4

    def test_refresh_window_resets(self):
        abacus = make_abacus()
        abacus.on_activate(0, 1, 0)
        abacus.on_refresh_window(100)
        assert not abacus._table
        assert abacus._spillover == 0

    def test_default_table_size_grows_as_nrh_shrinks(self):
        small_nrh = ABACuS(nrh=20, num_banks=64)
        large_nrh = ABACuS(nrh=1024, num_banks=64)
        assert small_nrh.table_entries > large_nrh.table_entries

    def test_storage_grows_as_nrh_shrinks(self):
        big = ABACuS(nrh=20, num_banks=64).storage_overhead_bits(64, 131072)["cam_bits"]
        small = ABACuS(nrh=1024, num_banks=64).storage_overhead_bits(64, 131072)["cam_bits"]
        assert big > 10 * small

    def test_storage_much_smaller_than_graphene(self):
        from repro.core.graphene import Graphene

        abacus_bits = ABACuS(nrh=64, num_banks=64).storage_overhead_bits(64, 131072)["cam_bits"]
        graphene_bits = Graphene(nrh=64, num_banks=64).storage_overhead_bits(64, 131072)["cam_bits"]
        assert abacus_bits * 10 < graphene_bits

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ABACuS(nrh=64, num_banks=0)
