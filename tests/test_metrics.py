"""Tests for performance metrics."""

import pytest

from repro.system.metrics import (
    SimulationResult,
    geometric_mean,
    harmonic_speedup,
    max_slowdown,
    normalized_weighted_speedup,
    standard_error,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_equal_ipcs_give_core_count(self):
        assert weighted_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_halved_ipcs_give_half(self):
        assert weighted_speedup([0.5, 0.5], [1.0, 1.0]) == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 1.0])

    def test_zero_alone_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])

    def test_normalized_to_baseline(self):
        value = normalized_weighted_speedup([0.5, 0.5], [1.0, 1.0], [1.0, 1.0])
        assert value == pytest.approx(0.5)

    def test_normalized_is_one_for_baseline_itself(self):
        assert normalized_weighted_speedup([0.7, 0.9], [1.0, 1.0], [0.7, 0.9]) == pytest.approx(1.0)


class TestOtherMetrics:
    def test_harmonic_speedup(self):
        assert harmonic_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_speedup([0.5, 1.0], [1.0, 1.0]) < 1.0

    def test_max_slowdown(self):
        assert max_slowdown([0.5, 0.9], [1.0, 1.0]) == pytest.approx(0.5)
        assert max_slowdown([1.0, 1.0], [1.0, 1.0]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])

    def test_standard_error(self):
        assert standard_error([1.0]) == 0.0
        assert standard_error([1.0, 1.0, 1.0]) == 0.0
        assert standard_error([0.0, 2.0]) > 0.0


class TestSimulationResult:
    def make_result(self, **overrides):
        values = dict(
            mechanism="Chronus",
            nrh=1024,
            workload="demo",
            cycles=1_000_000,
            core_ipcs=[1.0, 2.0],
            core_names=["a", "b"],
            command_counts={"ACT": 10},
            controller_stats={},
            mitigation_stats={"backoffs": 5},
            energy_nj=123.0,
            energy_breakdown={},
        )
        values.update(overrides)
        return SimulationResult(**values)

    def test_total_ipc(self):
        assert self.make_result().total_instructions_per_cycle == pytest.approx(3.0)

    def test_backoffs_per_million_cycles(self):
        assert self.make_result().backoffs_per_million_cycles() == pytest.approx(5.0)
        assert self.make_result(cycles=0).backoffs_per_million_cycles() == 0.0
