"""Tests for the Appendix A decrementer circuit."""

import pytest
from hypothesis import given, strategies as st

from repro.core.decrementer import (
    CRITICAL_PATH_DELAY_NS,
    DecrementerCircuit,
    GateCounts,
    TRANSISTORS_PER_GATE,
)


@pytest.fixture
def circuit():
    return DecrementerCircuit()


class TestFunctionalCorrectness:
    def test_exhaustive_truth_table(self, circuit):
        for value in range(256):
            assert circuit.evaluate(value) == (value - 1) % 256

    def test_zero_wraps_to_255(self, circuit):
        assert circuit.evaluate(0) == 255

    def test_out_of_range_rejected(self, circuit):
        with pytest.raises(ValueError):
            circuit.evaluate(256)
        with pytest.raises(ValueError):
            circuit.evaluate(-1)

    def test_decrement_alias(self, circuit):
        assert circuit.decrement(100) == 99


class TestHardwareCost:
    def test_gate_count_matches_paper(self, circuit):
        assert circuit.gate_count == 21

    def test_transistor_count_matches_paper(self, circuit):
        assert circuit.transistor_count == 96

    def test_static_gate_breakdown(self, circuit):
        gates = circuit.static_gates
        assert (gates.NOT, gates.MUX, gates.NAND, gates.NOR) == (8, 7, 5, 1)

    def test_critical_path_fits_in_row_cycle(self, circuit):
        assert circuit.critical_path_delay_ns == CRITICAL_PATH_DELAY_NS
        assert circuit.fits_within_row_cycle(trc_ns=47.0)
        assert not circuit.fits_within_row_cycle(trc_ns=0.1)

    def test_table_rows_sum_to_total_transistors(self, circuit):
        rows = circuit.table_rows()
        assert len(rows) == 8
        assert sum(row["transistors"] for row in rows) == 96
        assert sum(row["NOT"] for row in rows) == 8
        assert sum(row["MUX"] for row in rows) == 7
        assert sum(row["NAND"] for row in rows) == 5
        assert sum(row["NOR"] for row in rows) == 1

    def test_gate_counts_helper(self):
        counts = GateCounts(NOT=1, MUX=1, NAND=1, NOR=1)
        expected = sum(TRANSISTORS_PER_GATE.values())
        assert counts.total_transistors == expected
        assert counts.total_gates == 4


@given(st.integers(min_value=0, max_value=255))
def test_decrementer_matches_arithmetic(value):
    circuit = DecrementerCircuit()
    assert circuit.evaluate(value) == (value - 1) % 256


@given(st.integers(min_value=1, max_value=255))
def test_repeated_decrement_reaches_zero(start):
    circuit = DecrementerCircuit()
    value = start
    for _ in range(start):
        value = circuit.evaluate(value)
    assert value == 0
