"""Adversarial artifact suite: every corruption class must raise a *typed*
:class:`ArtifactError` -- truncation at any boundary, bit flips anywhere,
poisoned index offsets, unknown-field injection, marker smuggling -- and
``python -m repro artifact verify`` must exit nonzero on all of them.

The forgery helper below rebuilds a structurally valid artifact from
scratch with hooks to poison any single layer while keeping every *other*
hash consistent, so each test isolates exactly one defense.
"""

import dataclasses
import hashlib
import os
import pathlib

import pytest

from repro.artifacts import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactHeaderError,
    ArtifactIndexError,
    ArtifactMarkerError,
    ArtifactReader,
    ArtifactSignatureError,
    ArtifactTruncatedError,
    generate_key,
    write_artifact_bytes,
    write_key_file,
)
from repro.artifacts.integrity import sha256_hex
from repro.artifacts.spec import (
    Footer,
    IndexEntry,
    MagicHeader,
    RecordHeader,
    canonical_json_bytes,
    header_line,
)
from repro.cli import main as cli_main

RECORDS = [
    ("job", {"key": "alpha", "result": {"cycles": 100}}),
    ("job", {"key": "beta", "result": {"cycles": 200}}),
    ("report", {"wall_seconds": 1.5}),
]
META = {"artifact_format": 1, "run": "security-suite"}


def forge(
    records=None,
    meta=None,
    mutate_magic=None,
    mutate_meta_header=None,
    mutate_record_header=None,
    mutate_payload=None,
    mutate_entry=None,
    mutate_index_header=None,
    mutate_footer=None,
):
    """Build artifact bytes, optionally poisoning exactly one layer.

    Every hash *downstream* of a mutation is recomputed (an attacker can
    rewrite trailing bytes too), so the poisoned field itself is the only
    inconsistency the reader gets to catch.
    """
    out = bytearray()
    magic = {"format": "repro-artifact", "version": 1}
    if mutate_magic:
        magic = mutate_magic(magic)
    out += header_line("#!REPRO-ARTIFACT", magic)

    meta_blob = canonical_json_bytes(META if meta is None else meta)
    meta_header = {"length": len(meta_blob), "sha256": sha256_hex(meta_blob)}
    if mutate_meta_header:
        meta_header = mutate_meta_header(meta_header)
    out += header_line("#@meta", meta_header)
    out += meta_blob + b"\n"

    entries = []
    for seq, (kind, payload) in enumerate(RECORDS if records is None else records):
        blob = canonical_json_bytes(payload)
        if mutate_payload:
            blob = mutate_payload(blob, seq)
        digest = sha256_hex(blob)
        record_header = {
            "kind": kind, "length": len(blob), "seq": seq, "sha256": digest,
        }
        if mutate_record_header:
            record_header = mutate_record_header(record_header, seq)
        out += header_line("#@record", record_header)
        offset = len(out)
        out += blob + b"\n"
        entry = {
            "kind": kind, "length": len(blob), "offset": offset,
            "seq": seq, "sha256": digest,
        }
        if mutate_entry:
            entry = mutate_entry(entry, seq)
        entries.append(entry)

    index_blob = canonical_json_bytes({"entries": entries})
    index_header = {
        "count": len(entries),
        "length": len(index_blob),
        "sha256": sha256_hex(index_blob),
    }
    if mutate_index_header:
        index_header = mutate_index_header(index_header)
    out += header_line("#@index", index_header)
    out += index_blob + b"\n"

    footer = {
        "content_sha256": hashlib.sha256(bytes(out)).hexdigest(),
        "records": len(entries),
        "signature": None,
    }
    if mutate_footer:
        footer = mutate_footer(footer)
    out += header_line("#!END", footer)
    return bytes(out)


class TestForgeIsFaithful:
    """The forgery helper must track the real writer byte for byte --
    otherwise the poisoning tests would be exercising a strawman format."""

    def test_unmutated_forgery_matches_the_real_writer(self):
        assert forge() == write_artifact_bytes(META, RECORDS)

    def test_unmutated_forgery_verifies(self):
        reader = ArtifactReader(forge())
        assert reader.record_count == len(RECORDS)
        assert reader.meta == META


class TestTruncation:
    def test_every_strict_prefix_raises_a_typed_error(self):
        blob = forge()
        accepted, untyped = [], []
        for cut in range(len(blob)):
            try:
                ArtifactReader(blob[:cut])
            except ArtifactError:
                continue
            except Exception as error:  # noqa: BLE001 -- the point of the test
                untyped.append((cut, type(error).__name__))
            else:
                accepted.append(cut)
        assert accepted == [], f"truncated prefixes accepted at {accepted[:10]}"
        assert untyped == [], f"untyped errors leaked at {untyped[:10]}"

    def test_trailing_garbage_after_footer_is_rejected(self):
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(forge() + b"extra")

    def test_empty_file_is_truncated_not_crash(self):
        with pytest.raises(ArtifactTruncatedError):
            ArtifactReader(b"")


class TestBitFlips:
    def test_every_single_bit_flip_raises_a_typed_error(self):
        key = generate_key()
        blob = write_artifact_bytes(META, RECORDS, key=key)
        accepted, untyped = [], []
        for position in range(len(blob)):
            for bit in range(8):
                flipped = bytearray(blob)
                flipped[position] ^= 1 << bit
                try:
                    ArtifactReader(bytes(flipped), key=key)
                except ArtifactError:
                    continue
                except Exception as error:  # noqa: BLE001
                    untyped.append((position, bit, type(error).__name__))
                else:
                    accepted.append((position, bit))
        assert accepted == [], f"bit flips accepted: {accepted[:10]}"
        assert untyped == [], f"untyped errors leaked: {untyped[:10]}"


class TestIndexPoisoning:
    """Index offsets are attacker-controlled numbers; every out-of-contract
    value must be an :class:`ArtifactIndexError`, never a wild seek."""

    @staticmethod
    def _poison(field, value, seq=0):
        def mutate(entry, entry_seq):
            if entry_seq == seq:
                entry = dict(entry)
                entry[field] = value
            return entry
        return mutate

    def test_oversized_offset(self):
        blob = forge(mutate_entry=self._poison("offset", 10 ** 9))
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(blob)

    def test_offset_past_record_region(self):
        # Points inside the file but into the index/footer region.
        blob = forge(mutate_entry=self._poison("offset", len(forge()) - 8))
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(blob)

    def test_negative_offset(self):
        blob = forge(mutate_entry=self._poison("offset", -1))
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(blob)

    def test_negative_length(self):
        blob = forge(mutate_entry=self._poison("length", -5))
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(blob)

    def test_oversized_length(self):
        blob = forge(mutate_entry=self._poison("length", 1 << 40))
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(blob)

    def test_swapped_offsets_disagree_with_the_scan(self):
        real = forge()
        offsets = [entry.offset for entry in ArtifactReader(real).index_entries]

        def swap(entry, seq):
            entry = dict(entry)
            entry["offset"] = offsets[1] if seq == 0 else (
                offsets[0] if seq == 1 else entry["offset"]
            )
            return entry

        with pytest.raises(ArtifactIndexError):
            ArtifactReader(forge(mutate_entry=swap))

    def test_unknown_index_entry_field(self):
        blob = forge(mutate_entry=self._poison("__class__", "os.system"))
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(blob)

    def test_index_count_disagrees_with_entries(self):
        def inflate(header):
            header = dict(header)
            header["count"] += 1
            return header
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(forge(mutate_index_header=inflate))

    def test_footer_record_count_disagrees_with_stream(self):
        def inflate(footer):
            footer = dict(footer)
            footer["records"] += 1
            return footer
        with pytest.raises(ArtifactIndexError):
            ArtifactReader(forge(mutate_footer=inflate))


class TestHeaderInjection:
    """Unknown fields never become attributes: headers are parsed by
    whitelisted key sets, so injection is a typed error, not a setattr."""

    @staticmethod
    def _inject(field, value):
        def mutate(header, *_seq):
            header = dict(header)
            header[field] = value
            return header
        return mutate

    @pytest.mark.parametrize("field", ["__class__", "extra", "setattr"])
    def test_unknown_field_in_record_header(self, field):
        blob = forge(mutate_record_header=self._inject(field, "x"))
        with pytest.raises(ArtifactHeaderError):
            ArtifactReader(blob)

    def test_unknown_field_in_meta_header(self):
        blob = forge(mutate_meta_header=self._inject("__init__", 1))
        with pytest.raises(ArtifactHeaderError):
            ArtifactReader(blob)

    def test_unknown_field_in_magic_header(self):
        blob = forge(mutate_magic=self._inject("loader", "pickle"))
        with pytest.raises(ArtifactHeaderError):
            ArtifactReader(blob)

    def test_unknown_field_in_footer(self):
        blob = forge(mutate_footer=self._inject("trusted", True))
        with pytest.raises(ArtifactHeaderError):
            ArtifactReader(blob)

    def test_missing_record_header_field(self):
        def drop(header, _seq):
            header = dict(header)
            del header["sha256"]
            return header
        with pytest.raises(ArtifactHeaderError):
            ArtifactReader(forge(mutate_record_header=drop))

    def test_bool_smuggled_as_integer_length(self):
        # bool subclasses int; a type-confusion classic the whitelist blocks.
        def confuse(header, _seq):
            header = dict(header)
            header["length"] = True
            return header
        with pytest.raises(ArtifactHeaderError):
            ArtifactReader(forge(mutate_record_header=confuse))

    def test_record_seq_mismatch(self):
        def bump(header, seq):
            if seq == 1:
                header = dict(header)
                header["seq"] = 7
            return header
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(forge(mutate_record_header=bump))

    def test_unsupported_format_version(self):
        def bump(magic):
            magic = dict(magic)
            magic["version"] = 99
            return magic
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(forge(mutate_magic=bump))


class TestMarkerSmuggling:
    def test_marker_bytes_in_payload_region_with_corrected_sha(self):
        """An attacker embeds a fake ``#@record`` line inside a declared
        payload region *and* fixes every checksum to match -- the payload
        region's no-newline rule must still catch it."""
        fake = (
            b'{"key":"alpha"}\n'
            b'#@record {"kind":"job","length":9,"seq":9,"sha256":"'
            + b"0" * 64 + b'"}'
        )

        def smuggle(blob, seq):
            return fake if seq == 0 else blob

        with pytest.raises(ArtifactMarkerError):
            ArtifactReader(forge(mutate_payload=smuggle))

    def test_non_canonical_payload_is_rejected(self):
        # Same logical JSON, different bytes: malleability is a format error.
        def uglify(blob, seq):
            return blob.replace(b'":', b'": ') if seq == 0 else blob
        with pytest.raises(ArtifactFormatError):
            ArtifactReader(forge(mutate_payload=uglify))

    def test_payload_swap_between_records_is_caught(self):
        # Swap two payloads but keep each header's sha describing its own
        # original -- per-record checksums pin payloads to their headers.
        blobs = [canonical_json_bytes(payload) for _, payload in RECORDS]

        def swap(blob, seq):
            return blobs[1] if seq == 0 else (blobs[0] if seq == 1 else blob)

        def keep_original_header(header, seq):
            header = dict(header)
            original = blobs[header["seq"]]
            header["length"] = len(original)
            header["sha256"] = sha256_hex(original)
            return header

        with pytest.raises(ArtifactError):
            ArtifactReader(forge(
                mutate_payload=swap, mutate_record_header=keep_original_header
            ))


class TestSignatureStripping:
    def test_stripped_signature_is_detected(self):
        key = generate_key()
        signed = write_artifact_bytes(META, RECORDS, key=key)
        # Forge an unsigned footer over the same content.
        stripped = forge()
        assert signed[:stripped.rfind(b"#!END")] == stripped[:stripped.rfind(b"#!END")]
        with pytest.raises(ArtifactSignatureError):
            ArtifactReader(stripped, key=key)

    def test_resigned_with_attacker_key_is_detected(self):
        key = generate_key()
        resigned = write_artifact_bytes(META, RECORDS, key=generate_key())
        with pytest.raises(ArtifactSignatureError):
            ArtifactReader(resigned, key=key)


class TestNoReflection:
    """The PFM post-mortem class: parsed input must never drive setattr."""

    def test_no_reflection_rule_reports_zero_findings(self):
        """The AST-based reprolint rule replaces the old regex source scan.

        The rule sees aliased calls, ``object.__setattr__`` and ``__dict__``
        mutation that a ``"setattr(" in text`` scan misses, and does not
        false-positive on mentions inside comments or docstrings.
        """
        from repro.lint import manifest
        from repro.lint.framework import parse_project, run_rules
        from repro.lint.rules import NoReflectionRule

        repo_root = pathlib.Path(__file__).resolve().parent.parent
        project, parse_errors = parse_project(
            repo_root, manifest.NO_REFLECTION_TARGETS
        )
        assert project.files, "no-reflection target files not found"
        result = run_rules(project, [NoReflectionRule()], parse_errors)
        assert result.findings == [], "\n".join(
            finding.render() for finding in result.findings
        )

    @pytest.mark.parametrize("instance", [
        MagicHeader(format="repro-artifact", version=1),
        RecordHeader(kind="job", seq=0, length=2, sha256="0" * 64),
        IndexEntry(kind="job", seq=0, offset=0, length=2, sha256="0" * 64),
        Footer(content_sha256="0" * 64, records=0, signature=None),
    ])
    def test_parsed_headers_are_frozen(self, instance):
        with pytest.raises(dataclasses.FrozenInstanceError):
            instance.kind = "evil"  # type: ignore[misc]

    def test_dunder_keys_in_meta_stay_plain_data(self):
        blob = write_artifact_bytes(
            {"__class__": "os.system", "signature": "forged"}, [("job", {"key": "k"})]
        )
        reader = ArtifactReader(blob)
        assert type(reader.meta) is dict
        assert reader.meta["__class__"] == "os.system"
        # The meta "signature" field is inert data; the artifact is unsigned.
        assert reader.signed is False


class TestCliVerifyExitCodes:
    """``repro artifact verify`` must exit nonzero for every corruption
    class -- CI relies on the exit code, not on a human reading stderr."""

    def _write(self, tmp_path, name, blob):
        path = str(tmp_path / name)
        with open(path, "wb") as handle:
            handle.write(blob)
        return path

    def test_valid_artifact_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "ok.artifact", forge())
        assert cli_main(["artifact", "verify", path]) == 0
        assert "OK" in capsys.readouterr().out

    @pytest.mark.parametrize("name,blob_fn", [
        ("truncated", lambda: forge()[:200]),
        ("bitflip", lambda: forge()[:150] + bytes([forge()[150] ^ 1]) + forge()[151:]),
        ("badindex", lambda: forge(
            mutate_entry=lambda e, s: {**e, "offset": 10 ** 9})),
        ("injected", lambda: forge(
            mutate_record_header=lambda h, s: {**h, "__class__": "x"})),
        ("trailing", lambda: forge() + b"junk"),
    ])
    def test_corrupted_artifact_exits_nonzero(self, tmp_path, capsys, name, blob_fn):
        path = self._write(tmp_path, f"{name}.artifact", blob_fn())
        code = cli_main(["artifact", "verify", path])
        assert code != 0
        output = capsys.readouterr()
        assert "Artifact" in output.err or "error" in output.err.lower()

    def test_wrong_key_exits_nonzero(self, tmp_path, capsys):
        key_path = str(tmp_path / "signer.key")
        other_path = str(tmp_path / "other.key")
        key = write_key_file(key_path)
        write_key_file(other_path)
        path = self._write(
            tmp_path, "signed.artifact",
            write_artifact_bytes(META, RECORDS, key=key),
        )
        assert cli_main(["artifact", "verify", path, "--key", key_path]) == 0
        capsys.readouterr()
        assert cli_main(["artifact", "verify", path, "--key", other_path]) != 0

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(
            ["artifact", "verify", str(tmp_path / "missing.artifact")]
        ) != 0
