"""Streaming artifact writer: append records, finalize index + footer.

The writer is strictly append-only while open: every byte written feeds a
running SHA-256 (and HMAC when signing), so :meth:`ArtifactWriter.close`
can finalize without re-reading the file.  :meth:`ArtifactWriter.resume`
reopens a *finalized* artifact for further appends: the existing content is
fully re-verified, the old index + footer are truncated away, sequence
numbering continues gaplessly, and closing re-finalizes -- the resumed file
is byte-identical to one written in a single session.

:class:`ArtifactStore` is the multi-writer answer: concurrent producers
(processes, service jobs, distributed workers) each get their own
exclusively-created artifact file in a shared directory, so no byte-level
interleaving can ever occur and the no-lost-records property reduces to
POSIX ``O_EXCL`` semantics -- mirroring the sharded
:class:`~repro.experiments.cache.ResultCache` design.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
import io
import os
import secrets
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.artifacts import integrity
from repro.artifacts.spec import (
    ArtifactFormatError,
    ArtifactSignatureError,
    END_MARKER,
    FORMAT_NAME,
    FORMAT_VERSION,
    INDEX_MARKER,
    IndexEntry,
    MAGIC_MARKER,
    META_MARKER,
    RECORD_MARKER,
    canonical_json_bytes,
    header_line,
    validate_kind,
)

#: File suffix :class:`ArtifactStore` members use.
ARTIFACT_SUFFIX = ".artifact"


class ArtifactWriter:
    """Write one artifact: magic + meta up front, records streamed after.

    Use as a context manager (``close`` finalizes the index and footer)::

        with ArtifactWriter(path, meta=provenance(...), key=key) as writer:
            for payload in results:
                writer.append("job", payload)
    """

    def __init__(
        self,
        path: Union[str, os.PathLike, None],
        meta: Optional[Dict[str, object]] = None,
        key: Optional[bytes] = None,
        fileobj: Optional[io.BufferedIOBase] = None,
    ) -> None:
        if (path is None) == (fileobj is None):
            raise ValueError("pass exactly one of path or fileobj")
        self.path = None if path is None else os.fspath(path)
        self.key = key
        self._file = fileobj if fileobj is not None else open(self.path, "wb")
        self._hasher = hashlib.sha256()
        self._signer = (
            hmac_module.new(key, digestmod=hashlib.sha256)
            if key is not None else None
        )
        self._offset = 0
        self._entries: List[IndexEntry] = []
        self._closed = False
        self._write(header_line(
            MAGIC_MARKER, {"format": FORMAT_NAME, "version": FORMAT_VERSION}
        ))
        self._write_section(META_MARKER, canonical_json_bytes(meta or {}))

    # ------------------------------------------------------------------ #
    # Low-level writes (every byte feeds the running hashes)
    # ------------------------------------------------------------------ #
    def _write(self, data: bytes) -> None:
        self._file.write(data)
        self._hasher.update(data)
        if self._signer is not None:
            self._signer.update(data)
        self._offset += len(data)

    def _write_section(self, marker: str, payload: bytes,
                       extra: Optional[Dict[str, object]] = None) -> None:
        header: Dict[str, object] = {
            "length": len(payload),
            "sha256": integrity.sha256_hex(payload),
        }
        if extra:
            header.update(extra)
        self._write(header_line(marker, header))
        self._write(payload + b"\n")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def record_count(self) -> int:
        return len(self._entries)

    def append(self, kind: str, payload: Dict[str, object]) -> int:
        """Append one record; returns its sequence number."""
        if self._closed:
            raise ArtifactFormatError("artifact writer is closed")
        validate_kind(kind)
        if not isinstance(payload, dict):
            raise ArtifactFormatError(
                f"record payload must be a dict, got {type(payload).__name__}"
            )
        blob = canonical_json_bytes(payload)
        seq = len(self._entries)
        digest = integrity.sha256_hex(blob)
        self._write(header_line(RECORD_MARKER, {
            "kind": kind, "length": len(blob), "seq": seq, "sha256": digest,
        }))
        payload_offset = self._offset
        self._write(blob + b"\n")
        self._entries.append(IndexEntry(
            kind=kind, seq=seq, offset=payload_offset,
            length=len(blob), sha256=digest,
        ))
        return seq

    def extend(self, kind: str, payloads: Iterable[Dict[str, object]]) -> int:
        """Append many records of one kind; returns how many were added."""
        added = 0
        for payload in payloads:
            self.append(kind, payload)
            added += 1
        return added

    def close(self) -> None:
        """Finalize: write the index section and the integrity footer."""
        if self._closed:
            return
        index_payload = canonical_json_bytes(
            {"entries": [entry.as_dict() for entry in self._entries]}
        )
        self._write_section(
            INDEX_MARKER, index_payload, extra={"count": len(self._entries)}
        )
        footer = {
            "content_sha256": self._hasher.hexdigest(),
            "records": len(self._entries),
            "signature": (
                self._signer.hexdigest() if self._signer is not None else None
            ),
        }
        # The footer is outside the hashed content by definition; write it
        # without feeding the (now finalized) hashes.
        self._file.write(header_line(END_MARKER, footer))
        self._file.flush()
        if self.path is not None:
            os.fsync(self._file.fileno())
            self._file.close()
        self._closed = True

    def __enter__(self) -> "ArtifactWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self.path is not None and not self._closed:
            # A failed write session must not leave a half-valid file that
            # could be mistaken for a finalized artifact.
            self._file.close()
            self._closed = True
            try:
                os.unlink(self.path)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Resume (append-then-reopen)
    # ------------------------------------------------------------------ #
    @classmethod
    def resume(
        cls, path: Union[str, os.PathLike], key: Optional[bytes] = None
    ) -> "ArtifactWriter":
        """Reopen a finalized artifact and continue appending to it.

        The whole file is re-verified first (a corrupted artifact can never
        be silently "healed" by appending to it).  A signed artifact can
        only be resumed with its key -- resuming without one would finalize
        an unsigned footer, silently downgrading the integrity level.
        """
        from repro.artifacts.reader import ArtifactReader

        reader = ArtifactReader(path, key=key if key is not None else None)
        if reader.signed and key is None:
            raise ArtifactSignatureError(
                f"cannot resume signed artifact {path!s} without its key"
            )
        content = reader.content_bytes()[:reader.index_offset]
        writer = cls.__new__(cls)
        writer.path = os.fspath(path)
        writer.key = key
        writer._hasher = hashlib.sha256(content)
        writer._signer = (
            hmac_module.new(key, content, hashlib.sha256)
            if key is not None else None
        )
        writer._offset = len(content)
        writer._entries = list(reader.index_entries)
        writer._closed = False
        writer._file = open(writer.path, "r+b")
        writer._file.truncate(reader.index_offset)
        writer._file.seek(reader.index_offset)
        return writer


def write_artifact_bytes(
    meta: Optional[Dict[str, object]],
    records: Iterable[Tuple[str, Dict[str, object]]],
    key: Optional[bytes] = None,
) -> bytes:
    """Build a complete artifact in memory (the service's response body)."""
    buffer = io.BytesIO()
    writer = ArtifactWriter(None, meta=meta, key=key, fileobj=buffer)
    for kind, payload in records:
        writer.append(kind, payload)
    writer.close()
    return buffer.getvalue()


class ArtifactStore:
    """A directory of independently-written artifacts (one file per writer).

    Concurrent producers never share a file descriptor: :meth:`create`
    allocates a fresh member via ``O_CREAT | O_EXCL``, so two processes
    appending "to the same store" can drop records only if the filesystem
    loses a whole exclusively-created file.  Reading the store is the union
    of reading every member.
    """

    def __init__(
        self, directory: Union[str, os.PathLike], key: Optional[bytes] = None
    ) -> None:
        self.directory = os.fspath(directory)
        self.key = key
        os.makedirs(self.directory, exist_ok=True)

    def _allocate(self, name: str) -> Tuple[str, io.BufferedIOBase]:
        for _ in range(64):
            filename = (
                f"{name}-{os.getpid()}-{secrets.token_hex(6)}{ARTIFACT_SUFFIX}"
            )
            path = os.path.join(self.directory, filename)
            try:
                descriptor = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                continue
            return path, os.fdopen(descriptor, "wb")
        raise ArtifactFormatError(
            f"could not allocate a unique artifact name under {self.directory}"
        )

    def create(
        self, name: str = "run", meta: Optional[Dict[str, object]] = None
    ) -> ArtifactWriter:
        """A writer on a freshly (exclusively) created member file."""
        validate_kind(name)
        path, fileobj = self._allocate(name)
        writer = ArtifactWriter(None, meta=meta, key=self.key, fileobj=fileobj)
        writer.path = path  # context-manager cleanup + callers see the member
        return writer

    def append_records(
        self,
        kind: str,
        payloads: Iterable[Dict[str, object]],
        name: str = "run",
        meta: Optional[Dict[str, object]] = None,
    ) -> str:
        """Write one batch of records as a new member; returns its path."""
        with self.create(name=name, meta=meta) as writer:
            writer.extend(kind, payloads)
        return writer.path

    def paths(self) -> List[str]:
        return sorted(
            os.path.join(self.directory, entry)
            for entry in os.listdir(self.directory)
            if entry.endswith(ARTIFACT_SUFFIX)
        )

    def records(self) -> List[Tuple[str, object]]:
        """Every (member-path, record) across the store, members verified."""
        from repro.artifacts.reader import ArtifactReader

        collected: List[Tuple[str, object]] = []
        for path in self.paths():
            reader = ArtifactReader(path, key=self.key)
            for record in reader.records():
                collected.append((path, record))
        return collected

    def record_count(self) -> int:
        return len(self.records())
