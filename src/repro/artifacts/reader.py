"""Artifact reader: full structural + integrity verification, index seeks.

The reader is deliberately paranoid: *opening* an artifact performs a full
sequential parse that validates every structural rule of the format
(:mod:`repro.artifacts.spec`), every per-record checksum, the index
(bounds-checked and cross-checked against the scan), the whole-content
checksum, and -- when a key is supplied -- the HMAC signature in constant
time.  There is no lazy mode where a crafted file partially "works":
either the whole container verifies or a typed :class:`ArtifactError`
names what is wrong.

:meth:`ArtifactReader.record_at` then serves random access the fast way --
seek straight to the index offset, read exactly ``length`` bytes -- which
is safe precisely because the offsets were validated up front.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.artifacts import integrity
from repro.artifacts.spec import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactIndexError,
    ArtifactIntegrityError,
    ArtifactMarkerError,
    ArtifactTruncatedError,
    END_MARKER,
    Footer,
    INDEX_MARKER,
    IndexEntry,
    MAGIC_MARKER,
    META_MARKER,
    MagicHeader,
    RECORD_MARKER,
    RecordHeader,
    SectionHeader,
    parse_payload,
    split_header_line,
)


@dataclass(frozen=True)
class ArtifactRecord:
    """One verified record."""

    seq: int
    kind: str
    payload: Dict[str, object]
    offset: int
    length: int
    sha256: str


class ArtifactReader:
    """Parse + verify one artifact from a path or raw bytes."""

    def __init__(
        self,
        source: Union[str, os.PathLike, bytes],
        key: Optional[bytes] = None,
    ) -> None:
        if isinstance(source, bytes):
            self.path: Optional[str] = None
            self._data = source
        else:
            self.path = os.fspath(source)
            try:
                with open(self.path, "rb") as handle:
                    self._data = handle.read()
            except OSError as error:
                raise ArtifactTruncatedError(
                    f"cannot read artifact {self.path}: {error}"
                )
        self.key = key
        self.meta: Dict[str, object] = {}
        self.magic: Optional[MagicHeader] = None
        self.footer: Optional[Footer] = None
        self.index_entries: Tuple[IndexEntry, ...] = ()
        #: Byte offset of the ``#@index`` header line (resume truncates here).
        self.index_offset = 0
        self._records: List[ArtifactRecord] = []
        self._parse()

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #
    def _read_line(self, pos: int, what: str) -> Tuple[bytes, int]:
        end = self._data.find(b"\n", pos)
        if end < 0:
            raise ArtifactTruncatedError(
                f"artifact ends inside {what} (no line terminator)"
            )
        return self._data[pos:end], end + 1

    def _read_section_payload(
        self, pos: int, length: int, sha256: str, what: str
    ) -> Tuple[bytes, int]:
        """Read exactly ``length`` payload bytes + the terminating newline."""
        end = pos + length
        if end >= len(self._data):
            raise ArtifactTruncatedError(
                f"artifact ends inside {what} payload "
                f"(declared {length} bytes at offset {pos})"
            )
        blob = self._data[pos:end]
        if self._data[end:end + 1] != b"\n":
            raise ArtifactFormatError(
                f"{what} payload at offset {pos} is not newline-terminated "
                f"(length field disagrees with the stream)"
            )
        if b"\n" in blob or b"\r" in blob:
            raise ArtifactMarkerError(
                f"{what} payload at offset {pos} contains newline bytes "
                f"(possible embedded section marker)"
            )
        if integrity.sha256_hex(blob) != sha256:
            raise ArtifactIntegrityError(
                f"{what} payload checksum mismatch at offset {pos}"
            )
        return blob, end + 1

    def _parse(self) -> None:
        data = self._data
        if not data:
            raise ArtifactTruncatedError("artifact is empty")

        # Magic line.
        line, pos = self._read_line(0, "the magic line")
        marker, mapping = split_header_line(line, "magic")
        if marker != MAGIC_MARKER:
            raise ArtifactFormatError(
                f"not a repro artifact (first line starts with {marker!r})"
            )
        self.magic = MagicHeader.parse(mapping)

        # Meta section.
        line, pos = self._read_line(pos, "the meta header")
        marker, mapping = split_header_line(line, "meta")
        if marker != META_MARKER:
            raise ArtifactFormatError(f"expected {META_MARKER} line, got {marker!r}")
        meta_header = SectionHeader.parse_meta(mapping)
        blob, pos = self._read_section_payload(
            pos, meta_header.length, meta_header.sha256, "meta"
        )
        self.meta = parse_payload(blob, "meta")

        # Record sections until the index.
        index_header: Optional[SectionHeader] = None
        while True:
            line_start = pos
            line, pos = self._read_line(pos, "a section header")
            marker, mapping = split_header_line(line, "section")
            if marker == RECORD_MARKER:
                header = RecordHeader.parse(mapping)
                if header.seq != len(self._records):
                    raise ArtifactFormatError(
                        f"record at offset {line_start} declares seq "
                        f"{header.seq}, expected {len(self._records)}"
                    )
                payload_offset = pos
                blob, pos = self._read_section_payload(
                    pos, header.length, header.sha256,
                    f"record {header.seq}",
                )
                self._records.append(ArtifactRecord(
                    seq=header.seq, kind=header.kind,
                    payload=parse_payload(blob, f"record {header.seq}"),
                    offset=payload_offset, length=header.length,
                    sha256=header.sha256,
                ))
                continue
            if marker == INDEX_MARKER:
                self.index_offset = line_start
                index_header = SectionHeader.parse_index(mapping)
                break
            raise ArtifactFormatError(
                f"unexpected section marker {marker!r} at offset {line_start} "
                f"(expected {RECORD_MARKER} or {INDEX_MARKER})"
            )

        # Index section.
        assert index_header is not None
        blob, pos = self._read_section_payload(
            pos, index_header.length, index_header.sha256, "index"
        )
        content_length = pos  # footer checksums cover [0, here)
        index_payload = parse_payload(blob, "index")
        if set(index_payload) != {"entries"}:
            raise ArtifactIndexError(
                f"index payload must hold exactly 'entries', "
                f"got {sorted(index_payload)}"
            )
        raw_entries = index_payload["entries"]
        if not isinstance(raw_entries, list):
            raise ArtifactIndexError("index entries must be a list")
        entries = tuple(IndexEntry.parse(entry) for entry in raw_entries)
        if index_header.count != len(entries):
            raise ArtifactIndexError(
                f"index header declares {index_header.count} entries, "
                f"payload holds {len(entries)}"
            )
        self._validate_index(entries)
        self.index_entries = entries

        # Footer.
        line, pos = self._read_line(pos, "the footer")
        marker, mapping = split_header_line(line, "footer")
        if marker != END_MARKER:
            raise ArtifactFormatError(f"expected {END_MARKER} line, got {marker!r}")
        self.footer = Footer.parse(mapping)
        if pos != len(data):
            raise ArtifactFormatError(
                f"{len(data) - pos} trailing bytes after the {END_MARKER} line"
            )
        if self.footer.records != len(self._records):
            raise ArtifactIndexError(
                f"footer declares {self.footer.records} records, "
                f"stream holds {len(self._records)}"
            )
        content = data[:content_length]
        if integrity.sha256_hex(content) != self.footer.content_sha256:
            raise ArtifactIntegrityError("artifact content checksum mismatch")
        if self.key is not None:
            integrity.verify_signature(self.key, content, self.footer.signature)
        self._content_length = content_length

    def _validate_index(self, entries: Tuple[IndexEntry, ...]) -> None:
        """Bounds-check every offset, then cross-check against the scan."""
        if len(entries) != len(self._records):
            raise ArtifactIndexError(
                f"index holds {len(entries)} entries, "
                f"stream holds {len(self._records)} records"
            )
        for entry in entries:
            # IndexEntry.parse already rejected negative ints; re-assert the
            # invariant here so a future parser change cannot silently drop
            # the bounds check, then cap against the record region.
            if entry.offset < 0 or entry.length < 0:
                raise ArtifactIndexError(
                    f"index entry {entry.seq} has negative offset/length"
                )
            if entry.offset + entry.length > self.index_offset:
                raise ArtifactIndexError(
                    f"index entry {entry.seq} points past the record region "
                    f"({entry.offset}+{entry.length} > {self.index_offset})"
                )
            if not 0 <= entry.seq < len(self._records):
                raise ArtifactIndexError(
                    f"index entry seq {entry.seq} out of range"
                )
            record = self._records[entry.seq]
            actual = (record.kind, record.offset, record.length, record.sha256)
            declared = (entry.kind, entry.offset, entry.length, entry.sha256)
            if actual != declared:
                raise ArtifactIndexError(
                    f"index entry {entry.seq} disagrees with the record "
                    f"stream: declared {declared}, scanned {actual}"
                )

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def signed(self) -> bool:
        return self.footer is not None and self.footer.signature is not None

    @property
    def signature_verified(self) -> bool:
        return self.signed and self.key is not None

    @property
    def record_count(self) -> int:
        return len(self._records)

    def records(self) -> List[ArtifactRecord]:
        return list(self._records)

    def records_of_kind(self, kind: str) -> List[ArtifactRecord]:
        return [record for record in self._records if record.kind == kind]

    def content_bytes(self) -> bytes:
        return self._data

    def record_at(self, seq: int) -> ArtifactRecord:
        """Random access through the index: seek, read, re-verify.

        This intentionally goes back to the raw bytes (not the parsed list)
        so the index offsets themselves are what is exercised.
        """
        if not 0 <= seq < len(self.index_entries):
            raise ArtifactIndexError(
                f"no record {seq} (artifact holds {len(self.index_entries)})"
            )
        entry = self.index_entries[seq]
        if self.path is not None:
            with open(self.path, "rb") as handle:
                handle.seek(entry.offset)
                blob = handle.read(entry.length)
        else:
            stream = io.BytesIO(self._data)
            stream.seek(entry.offset)
            blob = stream.read(entry.length)
        if len(blob) != entry.length:
            raise ArtifactTruncatedError(
                f"seek to record {seq} at offset {entry.offset} ran off the "
                f"end of the artifact"
            )
        if integrity.sha256_hex(blob) != entry.sha256:
            raise ArtifactIntegrityError(
                f"record {seq} checksum mismatch after index seek"
            )
        return ArtifactRecord(
            seq=seq, kind=entry.kind,
            payload=parse_payload(blob, f"record {seq}"),
            offset=entry.offset, length=entry.length, sha256=entry.sha256,
        )

    def verify_summary(self) -> Dict[str, object]:
        """What ``python -m repro artifact verify`` prints on success."""
        kinds: Dict[str, int] = {}
        for record in self._records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        assert self.footer is not None
        return {
            "path": self.path,
            "bytes": len(self._data),
            "records": len(self._records),
            "kinds": kinds,
            "signed": self.signed,
            "signature_verified": self.signature_verified,
            "content_sha256": self.footer.content_sha256,
            "repro_version": self.meta.get("repro_version"),
            "cache_schema_version": self.meta.get("cache_schema_version"),
        }


def verify_artifact(
    source: Union[str, os.PathLike, bytes], key: Optional[bytes] = None
) -> Dict[str, object]:
    """Open + fully verify ``source``; returns the verification summary."""
    return ArtifactReader(source, key=key).verify_summary()
