"""Job-by-job comparison of two artifacts: the cross-PR result-diff tool.

Records are matched by identity -- the ``key`` field their payload carries
(content-addressed :class:`~repro.experiments.sweep.SimJob` keys for sweep
artifacts) falling back to ``kind#seq`` -- and compared field by field.
Volatile kinds (timing reports) are skipped by default so two identical
sweeps diff clean even though their wall-clock differs; ``--all`` compares
everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.artifacts.reader import ArtifactReader, ArtifactRecord
from repro.artifacts.spec import VOLATILE_KINDS


@dataclass(frozen=True)
class FieldChange:
    path: str
    left: object
    right: object


@dataclass
class ArtifactDiff:
    """The outcome of comparing artifact ``a`` (left) with ``b`` (right)."""

    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: Dict[str, List[FieldChange]] = field(default_factory=dict)
    compared: int = 0
    skipped_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def summary_lines(self) -> List[str]:
        lines: List[str] = []
        for identity in self.removed:
            lines.append(f"- {identity} (only in left artifact)")
        for identity in self.added:
            lines.append(f"+ {identity} (only in right artifact)")
        for identity, changes in self.changed.items():
            lines.append(f"~ {identity}")
            for change in changes:
                lines.append(
                    f"    {change.path}: {change.left!r} -> {change.right!r}"
                )
        status = "identical" if self.is_empty else "different"
        skipped = sum(self.skipped_kinds.values())
        suffix = (
            f", {skipped} volatile record(s) skipped" if skipped else ""
        )
        lines.append(
            f"{status}: {self.compared} record(s) compared, "
            f"{len(self.added)} added, {len(self.removed)} removed, "
            f"{len(self.changed)} changed{suffix}"
        )
        return lines


def _identity(record: ArtifactRecord) -> str:
    key = record.payload.get("key")
    if isinstance(key, str) and key:
        return f"{record.kind}:{key}"
    return f"{record.kind}#{record.seq}"


def _walk(
    path: str, left: object, right: object, changes: List[FieldChange]
) -> None:
    if type(left) is not type(right):
        changes.append(FieldChange(path, left, right))
        return
    if isinstance(left, dict):
        for key in sorted(set(left) | set(right)):
            child = f"{path}.{key}" if path else str(key)
            if key not in left:
                changes.append(FieldChange(child, None, right[key]))
            elif key not in right:
                changes.append(FieldChange(child, left[key], None))
            else:
                _walk(child, left[key], right[key], changes)
        return
    if isinstance(left, list):
        if len(left) != len(right):
            changes.append(
                FieldChange(f"{path}.length", len(left), len(right))
            )
            return
        for position, (lv, rv) in enumerate(zip(left, right)):
            _walk(f"{path}[{position}]", lv, rv, changes)
        return
    if left != right:
        changes.append(FieldChange(path, left, right))


def diff_artifacts(
    left: ArtifactReader,
    right: ArtifactReader,
    include_volatile: bool = False,
    kinds: Optional[Tuple[str, ...]] = None,
) -> ArtifactDiff:
    """Compare two verified artifacts record by record."""
    result = ArtifactDiff()

    def select(reader: ArtifactReader) -> Dict[str, ArtifactRecord]:
        selected: Dict[str, ArtifactRecord] = {}
        for record in reader.records():
            if kinds is not None and record.kind not in kinds:
                continue
            if not include_volatile and record.kind in VOLATILE_KINDS:
                result.skipped_kinds[record.kind] = (
                    result.skipped_kinds.get(record.kind, 0) + 1
                )
                continue
            selected[_identity(record)] = record
        return selected

    left_records = select(left)
    right_records = select(right)
    result.removed = sorted(set(left_records) - set(right_records))
    result.added = sorted(set(right_records) - set(left_records))
    for identity in sorted(set(left_records) & set(right_records)):
        result.compared += 1
        changes: List[FieldChange] = []
        _walk("", left_records[identity].payload,
              right_records[identity].payload, changes)
        if changes:
            result.changed[identity] = changes
    return result
