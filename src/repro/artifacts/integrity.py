"""Hashing, signing and key-file handling for artifacts.

The integrity model is layered (weakest to strongest):

* per-record SHA-256 -- catches corruption and lets index seeks validate
  the bytes they land on;
* whole-content SHA-256 in the footer -- catches any tampering *including*
  of headers and the index, but an attacker who can rewrite the file can
  recompute it;
* HMAC-SHA256 over the same content bytes, keyed by a secret file --
  unforgeable without the key, verified with :func:`hmac.compare_digest`
  so the check leaks no timing information.

The same key doubles as the service's client-auth secret
(``repro serve --auth-key``): a client proves key possession by sending
``HMAC(key, client_id)`` and the server compares in constant time.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import secrets
from typing import Optional, Union

from repro.artifacts.spec import ArtifactKeyError, ArtifactSignatureError

#: Keys below this many bytes are refused outright.
MIN_KEY_BYTES = 16

#: Size of freshly generated keys.
DEFAULT_KEY_BYTES = 32


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def hmac_hex(key: bytes, data: bytes) -> str:
    return hmac.new(key, data, hashlib.sha256).hexdigest()


def sign_content(key: bytes, content: bytes) -> str:
    """The artifact footer signature for ``content``."""
    return hmac_hex(key, content)


def verify_signature(key: bytes, content: bytes, signature: Optional[str]) -> None:
    """Constant-time signature check; raises :class:`ArtifactSignatureError`."""
    if signature is None:
        raise ArtifactSignatureError(
            "artifact is unsigned but a verification key was provided"
        )
    expected = sign_content(key, content)
    if not hmac.compare_digest(expected, signature):
        raise ArtifactSignatureError("artifact signature does not match the key")


def auth_token(key: bytes, client_id: str) -> str:
    """The ``X-Auth-Token`` value proving possession of ``key``."""
    return hmac_hex(key, client_id.encode("utf-8"))


def verify_auth_token(key: bytes, client_id: str, token: str) -> bool:
    """Constant-time client-auth check (bool: HTTP layer answers 401)."""
    if not client_id or not token:
        return False
    return hmac.compare_digest(auth_token(key, client_id), token)


# --------------------------------------------------------------------------- #
# Key files
# --------------------------------------------------------------------------- #

def generate_key(num_bytes: int = DEFAULT_KEY_BYTES) -> bytes:
    return secrets.token_bytes(num_bytes)


def write_key_file(
    path: Union[str, os.PathLike], key: Optional[bytes] = None
) -> bytes:
    """Write ``key`` (or a fresh one) as hex, owner-read-only."""
    if key is None:
        key = generate_key()
    if len(key) < MIN_KEY_BYTES:
        raise ArtifactKeyError(
            f"refusing to write a {len(key)}-byte key (minimum {MIN_KEY_BYTES})"
        )
    descriptor = os.open(
        os.fspath(path), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600
    )
    with os.fdopen(descriptor, "w", encoding="ascii") as handle:
        handle.write(key.hex() + "\n")
    return key


def load_key_file(path: Union[str, os.PathLike]) -> bytes:
    """Read and validate a hex key file; raises :class:`ArtifactKeyError`."""
    try:
        with open(os.fspath(path), "r", encoding="ascii") as handle:
            text = handle.read().strip()
    except OSError as error:
        raise ArtifactKeyError(f"cannot read key file {path!s}: {error}")
    except UnicodeDecodeError:
        raise ArtifactKeyError(f"key file {path!s} is not ASCII hex")
    try:
        key = bytes.fromhex(text)
    except ValueError:
        raise ArtifactKeyError(f"key file {path!s} is not valid hex")
    if len(key) < MIN_KEY_BYTES:
        raise ArtifactKeyError(
            f"key file {path!s} holds only {len(key)} bytes "
            f"(minimum {MIN_KEY_BYTES})"
        )
    return key
