"""Bridges from the experiment/service layers into artifact records.

These helpers define the *record shapes* the rest of the repo emits, so
every producer (``repro sweep --artifact``, the red-team search, the
service's ``GET /jobs/{id}/artifact``, the benches) and every consumer
(``repro artifact verify|show|diff``) agrees on one schema:

``job`` records
    ``{"key": <SimJob.key>, "label": ..., "job": SimJob.cache_payload(),
    "result": result_to_dict(...)}`` -- the full per-job result next to the
    exact content-addressed payload that produced it, so a diff pinpoints
    *which* configuration moved.

``probe`` records
    One red-team probe outcome (mechanism, N_RH, spec, escaped...).

``report`` records
    ``RunReport.as_dict()`` -- timings; volatile by design, skipped by
    ``artifact diff`` unless asked.

``bench`` records
    A committed ``BENCH_*.json`` trajectory, wrapped verbatim.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.artifacts.spec import provenance
from repro.artifacts.writer import ArtifactWriter
from repro.experiments.cache import config_payload, result_to_dict


def run_meta(
    base_config=None, extra: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Provenance meta for a run artifact (full SystemConfig included)."""
    payload = config_payload(base_config) if base_config is not None else None
    return provenance(config_payload=payload, extra=extra)


def job_record(job, result) -> Dict[str, object]:
    return {
        "key": job.key,
        "label": job.label,
        "job": job.cache_payload(),
        "result": result_to_dict(result),
    }


def probe_record(probe) -> Dict[str, object]:
    """One :class:`~repro.attacks.redteam.ProbeResult` as a record payload."""
    return {
        "key": probe.job_key or f"probe:{probe.mechanism}:{probe.nrh}:{probe.spec_label}",
        "mechanism": probe.mechanism,
        "nrh": probe.nrh,
        "spec": probe.spec_label,
        "configured": probe.configured,
        "secure_config": probe.secure_config,
        "escaped": probe.escaped,
        "max_disturbance": probe.max_disturbance,
        "first_escape_cycle": probe.first_escape_cycle,
    }


def emit_run_artifact(
    path: Union[str, os.PathLike],
    jobs: Iterable,
    results: Dict[str, object],
    report=None,
    base_config=None,
    key: Optional[bytes] = None,
    extra_meta: Optional[Dict[str, object]] = None,
) -> int:
    """Write one sweep/batch run as an artifact; returns the record count.

    ``results`` maps ``SimJob.key`` to :class:`SimulationResult`; jobs whose
    result is missing (e.g. cancelled mid-run) are skipped rather than
    emitted half-empty.
    """
    with ArtifactWriter(
        path, meta=run_meta(base_config, extra=extra_meta), key=key
    ) as writer:
        for job in jobs:
            result = results.get(job.key)
            if result is not None:
                writer.append("job", job_record(job, result))
        if report is not None:
            writer.append("report", report.as_dict())
        count = writer.record_count
    return count


def emit_probe_artifact(
    path: Union[str, os.PathLike],
    probes: Iterable,
    base_config=None,
    key: Optional[bytes] = None,
    extra_meta: Optional[Dict[str, object]] = None,
) -> int:
    """Write one red-team search as an artifact of ``probe`` records."""
    with ArtifactWriter(
        path, meta=run_meta(base_config, extra=extra_meta), key=key
    ) as writer:
        for probe in probes:
            writer.append("probe", probe_record(probe))
        count = writer.record_count
    return count


def emit_bench_artifact(
    bench_json_path: Union[str, os.PathLike],
    artifact_path: Union[str, os.PathLike, None] = None,
    key: Optional[bytes] = None,
) -> str:
    """Record a committed ``BENCH_*.json`` as a verifiable artifact.

    The artifact lands next to the JSON (``BENCH_x.json`` ->
    ``BENCH_x.artifact``) and wraps the trajectory verbatim, so the bench
    history itself becomes checkable with ``repro artifact verify`` and
    comparable across machines with ``repro artifact diff``.
    """
    bench_json_path = os.fspath(bench_json_path)
    with open(bench_json_path, "r", encoding="utf-8") as handle:
        bench = json.load(handle)
    if artifact_path is None:
        stem, _ = os.path.splitext(bench_json_path)
        artifact_path = stem + ".artifact"
    name = os.path.basename(bench_json_path)
    with ArtifactWriter(
        artifact_path,
        meta=provenance(extra={"source": name}),
        key=key,
    ) as writer:
        writer.append("bench", {"key": name, "bench": bench})
    return os.fspath(artifact_path)


def service_job_records(
    record, cache
) -> Tuple[Dict[str, object], Iterable[Tuple[str, Dict[str, object]]]]:
    """(meta, records) for one finished service job.

    Full results come from the shared cache (the job just executed through
    it); a job whose entry was evicted between completion and the request
    falls back to the compact summary the ``done`` event carried.
    """
    meta = provenance(extra={
        "job_id": record.id,
        "kind": record.kind,
        "client": record.client,
        "submission": record.payload,
    })
    summaries = {}
    if isinstance(record.result, dict):
        for summary in record.result.get("results", []):
            if isinstance(summary, dict) and "key" in summary:
                summaries[summary["key"]] = summary

    def records() -> Iterable[Tuple[str, Dict[str, object]]]:
        for job in record.jobs:
            result = cache.get(job.key)
            if result is not None:
                yield "job", job_record(job, result)
            elif job.key in summaries:
                yield "summary", dict(summaries[job.key])
        if isinstance(record.result, dict):
            report = record.result.get("report")
            if isinstance(report, dict):
                yield "report", dict(report)

    return meta, records()
