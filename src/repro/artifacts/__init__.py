"""Signed, self-describing result artifacts with provenance.

A streaming-appendable, indexed container every result producer in the
repo can emit (sweeps, batch runs, red-team searches, service jobs,
benches) and every consumer can verify byte-for-byte:

* :mod:`repro.artifacts.spec` -- the format, its typed error hierarchy,
  and the whitelist header parsers (no reflection, no ``setattr``);
* :mod:`repro.artifacts.integrity` -- SHA-256 / HMAC-SHA256 helpers, key
  files, constant-time verification;
* :mod:`repro.artifacts.writer` -- :class:`ArtifactWriter` (streaming
  append + resume) and :class:`ArtifactStore` (exclusive-file multi-writer
  directory);
* :mod:`repro.artifacts.reader` -- :class:`ArtifactReader` (full
  verification on open, index-seek random access);
* :mod:`repro.artifacts.diff` -- job-by-job artifact comparison;
* :mod:`repro.artifacts.emit` -- record shapes the experiment / service /
  bench layers emit.

See ``docs/ARTIFACTS.md`` for the format and threat model.
"""

from repro.artifacts.diff import ArtifactDiff, diff_artifacts
from repro.artifacts.emit import (
    emit_bench_artifact,
    emit_probe_artifact,
    emit_run_artifact,
)
from repro.artifacts.integrity import (
    auth_token,
    generate_key,
    load_key_file,
    verify_auth_token,
    write_key_file,
)
from repro.artifacts.reader import ArtifactReader, ArtifactRecord, verify_artifact
from repro.artifacts.spec import (
    ArtifactError,
    ArtifactFormatError,
    ArtifactHeaderError,
    ArtifactIndexError,
    ArtifactIntegrityError,
    ArtifactKeyError,
    ArtifactMarkerError,
    ArtifactSignatureError,
    ArtifactTruncatedError,
    FORMAT_VERSION,
    provenance,
)
from repro.artifacts.writer import (
    ARTIFACT_SUFFIX,
    ArtifactStore,
    ArtifactWriter,
    write_artifact_bytes,
)

__all__ = [
    "ARTIFACT_SUFFIX",
    "ArtifactDiff",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactHeaderError",
    "ArtifactIndexError",
    "ArtifactIntegrityError",
    "ArtifactKeyError",
    "ArtifactMarkerError",
    "ArtifactReader",
    "ArtifactRecord",
    "ArtifactSignatureError",
    "ArtifactStore",
    "ArtifactTruncatedError",
    "ArtifactWriter",
    "FORMAT_VERSION",
    "auth_token",
    "diff_artifacts",
    "emit_bench_artifact",
    "emit_probe_artifact",
    "emit_run_artifact",
    "generate_key",
    "load_key_file",
    "provenance",
    "verify_artifact",
    "verify_auth_token",
    "write_artifact_bytes",
    "write_key_file",
]
