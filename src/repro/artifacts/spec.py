"""The artifact container format: constants, typed errors, header parsing.

An artifact is a **text container** holding an append-only stream of JSON
records plus an index and an integrity footer::

    #!REPRO-ARTIFACT {"format":"repro-artifact","version":1}
    #@meta {"length":L,"sha256":H}
    {...provenance JSON...}
    #@record {"kind":"job","length":L,"seq":0,"sha256":H}
    {...payload JSON...}
    ...
    #@index {"count":N,"length":L,"sha256":H}
    {"entries":[{"kind":...,"length":...,"offset":...,"seq":...,"sha256":...}]}
    #!END {"content_sha256":H,"records":N,"signature":null}

Design rules, each the direct answer to a known container-format exploit
class (see ``docs/ARTIFACTS.md``):

* **Every payload is exactly one line of canonical JSON** (sorted keys,
  no whitespace, ASCII-only).  Canonical JSON can never contain a raw
  newline, so section markers cannot be smuggled inside a payload; the
  reader independently rejects any declared payload region containing a
  newline byte (:class:`ArtifactMarkerError`).
* **Headers are parsed by whitelist, never by reflection.**  Each header
  kind has a frozen dataclass whose ``parse`` classmethod checks the key
  set exactly and type-checks every value explicitly -- there is no
  ``setattr`` loop anywhere in this package, so unknown fields are a typed
  error (:class:`ArtifactHeaderError`), not an attribute injection.
* **Offsets are untrusted.**  Index entries are bounds-checked and
  cross-checked against a full sequential scan before any seek uses them
  (:class:`ArtifactIndexError`).
* **Integrity is layered**: per-record SHA-256, a whole-content SHA-256 in
  the footer, and an optional HMAC-SHA256 signature verified in constant
  time (:mod:`repro.artifacts.integrity`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro import __version__ as REPRO_VERSION
from repro.experiments.cache import CACHE_SCHEMA_VERSION

#: Bytes that open the first and last line of every artifact.
MAGIC_MARKER = "#!REPRO-ARTIFACT"
END_MARKER = "#!END"

#: Bytes that open every section header line.
SECTION_PREFIX = "#@"
META_MARKER = "#@meta"
RECORD_MARKER = "#@record"
INDEX_MARKER = "#@index"

#: Format version written by this code; readers reject anything else.
FORMAT_VERSION = 1
FORMAT_NAME = "repro-artifact"

#: Record/section kinds must look like identifiers (no markers, no spaces).
_KIND_RE = re.compile(r"^[a-z][a-z0-9_-]{0,63}$")
_SHA256_RE = re.compile(r"^[0-9a-f]{64}$")
_SIGNATURE_RE = _SHA256_RE  # HMAC-SHA256 hex digests share the shape.

#: Upper bound on a single payload line (headers included the container
#: stays strictly line-oriented; 64 MiB is far above any real record).
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024


# --------------------------------------------------------------------------- #
# Typed errors
# --------------------------------------------------------------------------- #

class ArtifactError(Exception):
    """Base class: anything wrong with an artifact raises a subclass."""


class ArtifactFormatError(ArtifactError):
    """Structurally malformed artifact (bad magic, grammar, non-canonical)."""


class ArtifactHeaderError(ArtifactFormatError):
    """A section header carries unknown fields or ill-typed values."""


class ArtifactMarkerError(ArtifactFormatError):
    """Section-marker / newline bytes embedded inside a declared payload."""


class ArtifactTruncatedError(ArtifactError):
    """The file ends before its declared structure does."""


class ArtifactIndexError(ArtifactError):
    """Index offsets/lengths out of bounds or disagreeing with the stream."""


class ArtifactIntegrityError(ArtifactError):
    """A checksum (per-record or whole-content) does not match."""


class ArtifactSignatureError(ArtifactError):
    """The HMAC signature is missing, malformed, or fails verification."""


class ArtifactKeyError(ArtifactError):
    """A signing key file is missing, malformed, or too weak."""


# --------------------------------------------------------------------------- #
# Canonical JSON
# --------------------------------------------------------------------------- #

def canonical_json(payload: object) -> str:
    """The one serialization every artifact byte derives from.

    Sorted keys + no whitespace + ASCII-only means a given value has
    exactly one byte representation, payloads can never contain a raw
    newline, and re-writing a parsed artifact is byte-stable.
    """
    try:
        text = json.dumps(
            payload, sort_keys=True, separators=(",", ":"),
            ensure_ascii=True, allow_nan=False,
        )
    except (TypeError, ValueError) as error:
        raise ArtifactFormatError(f"payload is not canonical-JSON encodable: {error}")
    return text


def canonical_json_bytes(payload: object) -> bytes:
    return canonical_json(payload).encode("ascii")


def parse_payload(blob: bytes, what: str) -> Dict[str, object]:
    """Decode one payload line back into a dict, enforcing canonical form.

    Rejecting non-canonical bytes (anything ``json.loads`` accepts but
    ``canonical_json`` would not re-emit identically) closes malleability:
    two byte-different artifacts can never carry the same logical content.
    """
    if b"\n" in blob or b"\r" in blob:
        raise ArtifactMarkerError(
            f"{what} payload contains newline bytes (possible embedded "
            f"section marker)"
        )
    try:
        payload = json.loads(blob.decode("ascii"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ArtifactFormatError(f"{what} payload is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ArtifactFormatError(
            f"{what} payload must be a JSON object, got {type(payload).__name__}"
        )
    if canonical_json_bytes(payload) != blob:
        raise ArtifactFormatError(f"{what} payload is not canonical JSON")
    return payload


# --------------------------------------------------------------------------- #
# Whitelist field readers (no reflection, no setattr -- ever)
# --------------------------------------------------------------------------- #

def _require_exact_keys(
    mapping: Mapping[str, object], allowed: frozenset, what: str
) -> None:
    if not isinstance(mapping, dict):
        raise ArtifactHeaderError(f"{what} header must be a JSON object")
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise ArtifactHeaderError(f"{what} header has unknown fields: {unknown}")
    missing = sorted(allowed - set(mapping))
    if missing:
        raise ArtifactHeaderError(f"{what} header is missing fields: {missing}")


def _read_int(mapping: Mapping[str, object], key: str, what: str,
              minimum: int = 0) -> int:
    value = mapping[key]
    # bool is an int subclass; an attacker sending true/false must not pass.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ArtifactHeaderError(f"{what}.{key} must be an integer")
    if value < minimum:
        raise ArtifactHeaderError(f"{what}.{key} must be >= {minimum}, got {value}")
    return value


def _read_kind(mapping: Mapping[str, object], key: str, what: str) -> str:
    value = mapping[key]
    if not isinstance(value, str) or not _KIND_RE.match(value):
        raise ArtifactHeaderError(
            f"{what}.{key} must match {_KIND_RE.pattern!r}, got {value!r}"
        )
    return value


def _read_sha256(mapping: Mapping[str, object], key: str, what: str) -> str:
    value = mapping[key]
    if not isinstance(value, str) or not _SHA256_RE.match(value):
        raise ArtifactHeaderError(f"{what}.{key} must be 64 lowercase hex chars")
    return value


def _read_length(mapping: Mapping[str, object], key: str, what: str) -> int:
    value = _read_int(mapping, key, what, minimum=1)
    if value > MAX_PAYLOAD_BYTES:
        raise ArtifactHeaderError(
            f"{what}.{key} of {value} bytes exceeds {MAX_PAYLOAD_BYTES}"
        )
    return value


# --------------------------------------------------------------------------- #
# Header dataclasses
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class MagicHeader:
    """``#!REPRO-ARTIFACT`` line: format self-description."""

    format: str
    version: int

    _FIELDS = frozenset({"format", "version"})

    @classmethod
    def parse(cls, mapping: Mapping[str, object]) -> "MagicHeader":
        _require_exact_keys(mapping, cls._FIELDS, "magic")
        name = mapping["format"]
        if name != FORMAT_NAME:
            raise ArtifactFormatError(f"not a repro artifact (format={name!r})")
        version = _read_int(mapping, "version", "magic", minimum=1)
        if version != FORMAT_VERSION:
            raise ArtifactFormatError(
                f"unsupported artifact format version {version} "
                f"(this reader speaks {FORMAT_VERSION})"
            )
        return cls(format=name, version=version)

    def as_dict(self) -> Dict[str, object]:
        return {"format": self.format, "version": self.version}


@dataclass(frozen=True)
class SectionHeader:
    """``#@meta`` / ``#@index`` line: one checksummed payload section."""

    length: int
    sha256: str
    count: Optional[int] = None  # index only

    _META_FIELDS = frozenset({"length", "sha256"})
    _INDEX_FIELDS = frozenset({"count", "length", "sha256"})

    @classmethod
    def parse_meta(cls, mapping: Mapping[str, object]) -> "SectionHeader":
        _require_exact_keys(mapping, cls._META_FIELDS, "meta")
        return cls(
            length=_read_length(mapping, "length", "meta"),
            sha256=_read_sha256(mapping, "sha256", "meta"),
        )

    @classmethod
    def parse_index(cls, mapping: Mapping[str, object]) -> "SectionHeader":
        _require_exact_keys(mapping, cls._INDEX_FIELDS, "index")
        return cls(
            length=_read_length(mapping, "length", "index"),
            sha256=_read_sha256(mapping, "sha256", "index"),
            count=_read_int(mapping, "count", "index"),
        )


@dataclass(frozen=True)
class RecordHeader:
    """``#@record`` line: one appended record."""

    kind: str
    seq: int
    length: int
    sha256: str

    _FIELDS = frozenset({"kind", "length", "seq", "sha256"})

    @classmethod
    def parse(cls, mapping: Mapping[str, object]) -> "RecordHeader":
        _require_exact_keys(mapping, cls._FIELDS, "record")
        return cls(
            kind=_read_kind(mapping, "kind", "record"),
            seq=_read_int(mapping, "seq", "record"),
            length=_read_length(mapping, "length", "record"),
            sha256=_read_sha256(mapping, "sha256", "record"),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "length": self.length,
            "seq": self.seq, "sha256": self.sha256,
        }


@dataclass(frozen=True)
class IndexEntry:
    """One row of the index payload: where record ``seq`` lives."""

    kind: str
    seq: int
    offset: int
    length: int
    sha256: str

    _FIELDS = frozenset({"kind", "length", "offset", "seq", "sha256"})

    @classmethod
    def parse(cls, mapping: Mapping[str, object]) -> "IndexEntry":
        if not isinstance(mapping, dict):
            raise ArtifactIndexError("index entry must be a JSON object")
        unknown = sorted(set(mapping) - cls._FIELDS)
        if unknown:
            raise ArtifactIndexError(f"index entry has unknown fields: {unknown}")
        missing = sorted(cls._FIELDS - set(mapping))
        if missing:
            raise ArtifactIndexError(f"index entry is missing fields: {missing}")
        try:
            return cls(
                kind=_read_kind(mapping, "kind", "index entry"),
                seq=_read_int(mapping, "seq", "index entry"),
                offset=_read_int(mapping, "offset", "index entry"),
                length=_read_length(mapping, "length", "index entry"),
                sha256=_read_sha256(mapping, "sha256", "index entry"),
            )
        except ArtifactHeaderError as error:
            # Field-level problems inside the index are index poisoning.
            raise ArtifactIndexError(str(error))

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "length": self.length, "offset": self.offset,
            "seq": self.seq, "sha256": self.sha256,
        }


@dataclass(frozen=True)
class Footer:
    """``#!END`` line: whole-content checksum + optional signature."""

    content_sha256: str
    records: int
    signature: Optional[str]

    _FIELDS = frozenset({"content_sha256", "records", "signature"})

    @classmethod
    def parse(cls, mapping: Mapping[str, object]) -> "Footer":
        _require_exact_keys(mapping, cls._FIELDS, "footer")
        signature = mapping["signature"]
        if signature is not None and (
            not isinstance(signature, str) or not _SIGNATURE_RE.match(signature)
        ):
            raise ArtifactHeaderError(
                "footer.signature must be null or 64 lowercase hex chars"
            )
        return cls(
            content_sha256=_read_sha256(mapping, "content_sha256", "footer"),
            records=_read_int(mapping, "records", "footer"),
            signature=signature,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "content_sha256": self.content_sha256,
            "records": self.records,
            "signature": self.signature,
        }


def validate_kind(kind: str) -> str:
    """Writer-side check mirroring the reader's whitelist."""
    if not isinstance(kind, str) or not _KIND_RE.match(kind):
        raise ArtifactFormatError(
            f"record kind must match {_KIND_RE.pattern!r}, got {kind!r}"
        )
    return kind


# --------------------------------------------------------------------------- #
# Provenance
# --------------------------------------------------------------------------- #

def provenance(
    config_payload: Optional[Dict[str, object]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The self-description every artifact's meta section starts from.

    ``config_payload`` is a :func:`repro.experiments.cache.config_payload`
    dict (the same canonical form the cache keys hash), so an artifact
    pins exactly which system it measured; ``extra`` merges caller context
    (command line, job id, ...) -- it is plain data, never reflected.
    """
    meta: Dict[str, object] = {
        "artifact_format": FORMAT_VERSION,
        "repro_version": REPRO_VERSION,
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "config": config_payload,
    }
    if extra:
        for key, value in extra.items():
            if not isinstance(key, str):
                raise ArtifactFormatError("meta keys must be strings")
            meta[key] = value
    return meta


#: Record kinds whose payloads are expected to vary between otherwise
#: identical runs (timings); ``artifact diff`` skips them by default.
VOLATILE_KINDS = frozenset({"report"})


def header_line(marker: str, payload: Dict[str, object]) -> bytes:
    """Serialise one ``#@...``/``#!...`` header line."""
    return marker.encode("ascii") + b" " + canonical_json_bytes(payload) + b"\n"


def split_header_line(line: bytes, what: str) -> tuple:
    """Split ``b"#@x {json}"`` into (marker, parsed-json-dict)."""
    marker, separator, rest = line.partition(b" ")
    if not separator:
        raise ArtifactFormatError(f"malformed {what} line: {line[:64]!r}")
    try:
        marker_text = marker.decode("ascii")
    except UnicodeDecodeError:
        raise ArtifactFormatError(f"malformed {what} line: {line[:64]!r}")
    try:
        mapping = json.loads(rest.decode("ascii"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ArtifactFormatError(f"{what} header is not valid JSON: {error}")
    if not isinstance(mapping, dict):
        raise ArtifactFormatError(f"{what} header must be a JSON object")
    return marker_text, mapping
