"""Project manifests the reprolint rules are configured with.

This module is the one place where the lint rules learn *which* parts of
the tree carry which invariant.  Adding a new hot-path function, event
source or protected package means editing a manifest here (and, for event
sources, documenting the class in ``docs/ARCHITECTURE.md``) -- the rules
themselves stay generic.

Paths are repo-relative POSIX strings; entries ending in ``/`` name a
subtree, otherwise an exact file.
"""

from __future__ import annotations

#: Packages whose parsers must never reflect parsed input into attribute
#: writes (the artifact container and the service submission whitelist --
#: see the threat model in docs/ARTIFACTS.md).
NO_REFLECTION_TARGETS = (
    "src/repro/artifacts/",
    "src/repro/service/specs.py",
)

#: Packages whose payload bytes must all derive from the canonical JSON
#: helper so a value has exactly one byte representation.
CANONICAL_JSON_TARGETS = (
    "src/repro/artifacts/",
    "src/repro/service/",
)

#: The one module allowed to call ``json.dumps``: the canonical helper
#: itself (everything else routes through it).
CANONICAL_JSON_ALLOWED = ("src/repro/artifacts/spec.py",)

#: Simulation packages that must stay deterministic run-to-run: the
#: content-addressed ResultCache and every byte-identity pin
#: (test_event_horizon.py, test_batch_equivalence.py, the golden
#: regression) silently depend on it.
DETERMINISM_TARGETS = (
    "src/repro/dram/",
    "src/repro/controller/",
    "src/repro/core/",
    "src/repro/system/",
    "src/repro/cpu/",
    "src/repro/attacks/",
)

#: The allocation-free data plane (PRs 4-6): functions that run once per
#: DRAM command, per dispatched access or per idle wake.  Python-level
#: allocation constructs (comprehensions, closures, f-strings, */**
#: expansion) in these bodies regress the measured hot-path wins.
#: Maps file -> frozenset of dotted qualnames within that file.
HOT_PATH_FUNCTIONS = {
    "src/repro/controller/controller.py": frozenset({
        "MemoryController.tick",
        "MemoryController._next_event_hint",
        "MemoryController._fold_bank_hint",
        "MemoryController._demand_ready_cycle",
        "MemoryController._service_demand",
        # The structure-of-arrays twins (the array bank backend's kernels).
        "MemoryController._next_event_hint_array",
        "MemoryController._fold_bank_hint_array",
        "MemoryController._bank_demand_ready_array",
        "MemoryController._demand_ready_cycle_array",
        "MemoryController._demand_ready_cycle_vector",
        "MemoryController._fold_stream",
        "MemoryController._service_demand_array",
        "MemoryController._serve_request_array",
    }),
    "src/repro/controller/scheduler.py": frozenset({
        "FrFcfsCapScheduler.choose",
        "FrFcfsCapScheduler.choose_from_buckets",
        "FrFcfsCapScheduler.choose_from_buckets_array",
        "FrFcfsCapScheduler._arbitrate",
        "FrFcfsCapScheduler._arbitrate_bucketed",
        "FrFcfsCapScheduler.on_scheduled",
        "FrFcfsCapScheduler.on_row_closed",
    }),
    "src/repro/dram/bank.py": frozenset({
        # The array bank view's per-command path: one memoryview indexing
        # operation per register access, nothing allocated per call.
        "_ArrayBank.activate",
        "_ArrayBank.precharge",
        "_ArrayBank.read",
        "_ArrayBank.write",
        "_ArrayBank.can_activate",
        "_ArrayBank.can_precharge",
        "_ArrayBank.can_read",
        "_ArrayBank.can_write",
    }),
    "src/repro/core/counters.py": frozenset({
        "_DictPerRowCounters.increment",
        "_DictPerRowCounters.get",
        "_DictPerRowCounters.reset_row",
        "_ArrayPerRowCounters.increment",
        "_ArrayPerRowCounters.get",
        "_ArrayPerRowCounters.reset_row",
    }),
    "src/repro/dram/refresh.py": frozenset({
        "RefreshScheduler.tick",
        "RefreshScheduler.next_due_cycle",
    }),
    "src/repro/cpu/core.py": frozenset({
        "Core.next_event_cycle",
    }),
}

#: Method names that look like event-horizon wake hints.  Any class
#: defining one is an event source under the "early, never late" contract
#: and must be registered below.
HINT_METHOD_PATTERN = r"(?:^|_)next_(?:event_(?:hint|cycle)|due_cycle)$"

#: The hint-contract registry: every (file, class, method) that feeds the
#: event horizon.  Each class must also be named in docs/ARCHITECTURE.md's
#: event-horizon section -- the doc *is* the contract's specification.
HINT_EVENT_SOURCES = frozenset({
    ("src/repro/controller/controller.py", "MemoryController", "_next_event_hint"),
    ("src/repro/controller/controller.py", "MemoryController", "next_event_cycle"),
    ("src/repro/cpu/core.py", "Core", "next_event_cycle"),
    ("src/repro/dram/refresh.py", "RefreshScheduler", "next_due_cycle"),
})

#: Where the hint contract is documented (checked for each source class).
ARCHITECTURE_DOC = "docs/ARCHITECTURE.md"

#: The cache-key completeness cross-check (the exact bug PR 1 fixed: a new
#: SystemConfig knob silently missing from the cache key).
CONFIG_MODULE = "src/repro/system/config.py"
CONFIG_CLASS = "SystemConfig"
PAYLOAD_MODULE = "src/repro/experiments/cache.py"
PAYLOAD_FUNCTION = "config_payload"
GROUP_KEY_MODULE = "src/repro/experiments/batch.py"
GROUP_FREE_FIELDS_CONST = "GROUP_FREE_CONFIG_FIELDS"

#: Default scan scope of ``python -m repro lint``.
DEFAULT_SCAN_PATHS = ("src/repro",)

#: Default committed baseline location.
DEFAULT_BASELINE = "tools/reprolint_baseline.json"
