"""The committed findings baseline.

Pre-existing, reviewed findings live in a committed JSON file (default
``tools/reprolint_baseline.json``).  A lint run partitions its findings
against it:

* **accepted** -- matched by a baseline entry; does not fail CI,
* **new** -- not in the baseline; fails CI,
* **stale** -- baseline entries no findings match any more (the code was
  fixed); reported so the baseline gets pruned, but non-fatal.

Matching is by the ``(rule, path, message)`` fingerprint with
multiplicity -- line numbers shift on every unrelated edit and would churn
the baseline.  Every entry carries a mandatory ``reason`` explaining why
the finding is accepted rather than fixed; ``--write-baseline`` refuses to
run when it would have to invent one (it stamps a placeholder that the
meta check in :func:`load_baseline` rejects on the next load), so
accepting a finding is always an explicit, reviewed act.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.framework import Finding

BASELINE_VERSION = 1

#: Stamped by ``--write-baseline`` for entries that need a human reason;
#: entries still carrying it fail the next load.
PLACEHOLDER_REASON = "TODO: justify or fix"


class BaselineError(ValueError):
    """The baseline file is malformed (a usage error, not a lint finding)."""


@dataclass
class BaselineEntry:
    rule: str
    path: str
    message: str
    reason: str
    line: int = 0  #: informational only; not part of the match

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "reason": self.reason,
        }


@dataclass
class Partition:
    """A lint run's findings split against the baseline."""

    new: List[Finding] = field(default_factory=list)
    accepted: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Load and validate the baseline; a missing file is an empty baseline."""
    if not path.is_file():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise BaselineError(f"{path}: baseline is not valid JSON: {error}")
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected a baseline object with version={BASELINE_VERSION}"
        )
    entries_raw = data.get("entries")
    if not isinstance(entries_raw, list):
        raise BaselineError(f"{path}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(entries_raw):
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: entry {index} is not an object")
        try:
            entry = BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                message=str(raw["message"]),
                reason=str(raw["reason"]),
                line=int(raw.get("line", 0)),
            )
        except KeyError as error:
            raise BaselineError(
                f"{path}: entry {index} is missing the {error.args[0]!r} field"
            )
        if not entry.reason.strip() or entry.reason == PLACEHOLDER_REASON:
            raise BaselineError(
                f"{path}: entry {index} ({entry.rule} in {entry.path}) has no "
                f"justification -- every accepted finding needs a written reason"
            )
        entries.append(entry)
    return entries


def partition(
    findings: Sequence[Finding], baseline: Sequence[BaselineEntry]
) -> Partition:
    """Split findings into new/accepted and detect stale baseline entries."""
    remaining: Dict[Tuple[str, str, str], List[BaselineEntry]] = {}
    for entry in baseline:
        remaining.setdefault(entry.fingerprint, []).append(entry)
    result = Partition()
    for finding in findings:
        bucket = remaining.get(finding.fingerprint)
        if bucket:
            bucket.pop()
            result.accepted.append(finding)
        else:
            result.new.append(finding)
    for bucket in remaining.values():
        result.stale.extend(bucket)
    result.stale.sort(key=lambda e: (e.path, e.rule, e.message))
    return result


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    previous: Sequence[BaselineEntry] = (),
) -> int:
    """Write the current findings as the new baseline.

    Reasons are carried over from matching entries of the previous
    baseline; findings without one get :data:`PLACEHOLDER_REASON`, which
    the next :func:`load_baseline` rejects -- forcing the author to either
    fix the finding or justify it before the baseline is usable.
    """
    reasons: Dict[Tuple[str, str, str], List[str]] = {}
    for entry in previous:
        reasons.setdefault(entry.fingerprint, []).append(entry.reason)
    entries = []
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.rule, f.message)
    ):
        carried = reasons.get(finding.fingerprint)
        reason = carried.pop(0) if carried else PLACEHOLDER_REASON
        entries.append(
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                message=finding.message,
                reason=reason,
                line=finding.line,
            )
        )
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.as_dict() for entry in entries],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
