"""The ``python -m repro lint`` command (and ``tools/reprolint.py``).

Exit codes follow the CI contract:

* ``0`` -- no findings beyond the committed baseline,
* ``1`` -- at least one new finding (or a parse error),
* ``2`` -- usage/configuration error (bad root, malformed baseline).

``--write-baseline`` regenerates the baseline from the current findings,
carrying over the written reasons of entries that still match; brand-new
entries get a placeholder reason the next load *rejects*, so accepting a
finding always requires writing down why.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint import manifest
from repro.lint.baseline import (
    BaselineError,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.framework import parse_project, run_rules
from repro.lint.reporters import render_human, render_json
from repro.lint.rules import default_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``lint`` options (shared by repro.cli and tools/reprolint.py)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=(
            f"files or directories to lint, relative to --root "
            f"(default: {' '.join(manifest.DEFAULT_SCAN_PATHS)}); partial "
            f"scans skip cross-file rules whose inputs are out of scope"
        ),
    )
    parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repository root the scan paths and manifests are relative to "
             "(default: the current directory)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: <root>/{manifest.DEFAULT_BASELINE}; "
             f"a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human",
        help="report format (json is what CI uploads)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings into the baseline (reasons of "
             "still-matching entries are carried over; new entries get a "
             "placeholder that must be edited before the baseline loads)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0

    root = Path(args.root).resolve()
    paths = list(args.paths) if args.paths else list(manifest.DEFAULT_SCAN_PATHS)
    if not any((root / p).exists() for p in paths):
        print(
            f"error: nothing to lint under {root} "
            f"(paths: {', '.join(paths)})",
            file=sys.stderr,
        )
        return 2

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / manifest.DEFAULT_BASELINE
    )

    project, parse_errors = parse_project(root, paths)
    result = run_rules(project, rules, parse_errors)

    if args.write_baseline:
        try:
            previous = load_baseline(baseline_path)
        except BaselineError:
            previous = []  # a malformed baseline is rebuilt from scratch
        count = write_baseline(baseline_path, result.findings, previous)
        print(f"baseline written to {baseline_path}: {count} entr(y/ies)")
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    split = partition(result.findings, baseline)

    shown_baseline = str(baseline_path)
    if args.format == "json":
        print(json.dumps(render_json(result, split, shown_baseline),
                         indent=2, sort_keys=True))
    else:
        for line in render_human(result, split, shown_baseline):
            print(line)
    return 1 if split.new else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``tools/reprolint.py``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Project-aware static contract checker for the "
                    "Chronus reproduction (see docs/LINTING.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
