"""Rule ``no-reflection``: parsed input must never drive attribute writes.

Generalizes the regex source scan that ``tests/test_artifacts_security.py``
used to pin the artifact parsers' no-``setattr`` posture into a real AST
rule.  In the protected zones (the artifact container and the service
submission whitelist) it flags every construct that can turn attacker data
into an attribute write or code execution:

* ``setattr`` / ``delattr`` / ``eval`` / ``exec`` calls,
* any ``.__setattr__``/``.__delattr__`` call (including
  ``object.__setattr__``, the classic frozen-dataclass bypass),
* writes through ``vars(...)[...]`` / ``globals()[...]``,
* ``__dict__`` mutation: subscript writes, whole-``__dict__`` assignment,
  and mutating method calls (``update`` / ``setdefault`` / ``pop`` /
  ``clear``) on a ``__dict__``.

The AST form also sees what a regex cannot: aliased calls are still direct
``Name``/``Attribute`` nodes, while a mention inside a comment or string
no longer false-positives.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.framework import FileContext, Finding, Rule
from repro.lint import manifest

_BANNED_CALLS = {
    "setattr": "setattr() turns parsed input into attribute writes",
    "delattr": "delattr() lets parsed input remove attributes",
    "eval": "eval() executes parsed input",
    "exec": "exec() executes parsed input",
}

_BANNED_DUNDER_CALLS = {
    "__setattr__": "__setattr__ bypasses the frozen-dataclass guarantee",
    "__delattr__": "__delattr__ bypasses the frozen-dataclass guarantee",
}

_DICT_MUTATORS = ("update", "setdefault", "pop", "popitem", "clear")


def _is_dict_proxy(node: ast.AST) -> bool:
    """True for ``x.__dict__`` and for ``vars(...)`` / ``globals()`` calls."""
    if isinstance(node, ast.Attribute) and node.attr == "__dict__":
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("vars", "globals")
    return False


class NoReflectionRule(Rule):
    name = "no-reflection"
    description = (
        "no setattr/eval/__dict__ mutation in the artifact and submission "
        "parsers: parsed input must never drive attribute writes"
    )
    targets = manifest.NO_REFLECTION_TARGETS

    def __init__(self, targets=None) -> None:
        if targets is not None:
            self.targets = tuple(targets)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Optional[List[Finding]]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _BANNED_CALLS:
            return [self.finding(ctx, node, _BANNED_CALLS[func.id])]
        if isinstance(func, ast.Attribute):
            if func.attr in _BANNED_DUNDER_CALLS:
                return [self.finding(ctx, node, _BANNED_DUNDER_CALLS[func.attr])]
            if func.attr in _DICT_MUTATORS and _is_dict_proxy(func.value):
                return [
                    self.finding(
                        ctx, node,
                        f"__dict__.{func.attr}() mutates instance state behind "
                        f"the frozen-header guarantee",
                    )
                ]
        return None

    def _check_targets(self, targets, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                findings.extend(self._check_targets(target.elts, ctx))
                continue
            if isinstance(target, ast.Subscript) and _is_dict_proxy(target.value):
                findings.append(
                    self.finding(
                        ctx, target,
                        "subscript write through vars()/__dict__ is a "
                        "setattr in disguise",
                    )
                )
            elif isinstance(target, ast.Attribute) and target.attr == "__dict__":
                findings.append(
                    self.finding(
                        ctx, target,
                        "assigning to __dict__ replaces instance state wholesale",
                    )
                )
        return findings

    def visit_Assign(self, node: ast.Assign, ctx: FileContext):
        return self._check_targets(node.targets, ctx) or None

    def visit_AugAssign(self, node: ast.AugAssign, ctx: FileContext):
        return self._check_targets([node.target], ctx) or None

    def visit_AnnAssign(self, node: ast.AnnAssign, ctx: FileContext):
        return self._check_targets([node.target], ctx) or None
