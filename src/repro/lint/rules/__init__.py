"""The reprolint rule catalogue.

``default_rules()`` builds the six project rules with their manifests from
:mod:`repro.lint.manifest`; tests construct individual rules with fixture
manifests instead.
"""

from __future__ import annotations

from typing import List

from repro.lint.framework import Rule
from repro.lint.rules.cache_key import CacheKeyCompletenessRule
from repro.lint.rules.canonical_json import CanonicalJsonRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.event_source import EventSourceRegistryRule
from repro.lint.rules.hotpath import HotPathAllocationRule
from repro.lint.rules.security import NoReflectionRule

__all__ = [
    "CacheKeyCompletenessRule",
    "CanonicalJsonRule",
    "DeterminismRule",
    "EventSourceRegistryRule",
    "HotPathAllocationRule",
    "NoReflectionRule",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """All six project rules with their committed manifests."""
    return [
        NoReflectionRule(),
        HotPathAllocationRule(),
        DeterminismRule(),
        CanonicalJsonRule(),
        CacheKeyCompletenessRule(),
        EventSourceRegistryRule(),
    ]
