"""Rule ``cache-key-completeness``: every config knob reaches the cache key.

The exact bug PR 1 fixed: the old baseline cache keyed on a hand-written
subset of the config, so adding an IPC-relevant knob silently served stale
results.  Today ``config_payload`` uses ``dataclasses.asdict`` (complete
by construction) and the batch engine *subtracts* a short list of
simulation-behaviour-free fields -- both of which can rot:

* if ``config_payload`` is ever rewritten as an explicit dict, a missing
  ``SystemConfig`` field resurrects the stale-cache bug (and a key that is
  not a field serves nothing);
* if a field named in ``GROUP_FREE_CONFIG_FIELDS`` is renamed on
  ``SystemConfig``, the batch grouping's ``pop(name, None)`` silently
  no-ops and jobs stop sharing groups (or worse, share wrongly).

This rule parses the three modules and cross-checks the names statically.
It is a :class:`ProjectRule`: the invariant spans files, so it runs once
over the parsed project rather than per node.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.framework import FileContext, Finding, Project, ProjectRule
from repro.lint import manifest


def _dataclass_fields(tree: ast.Module, class_name: str) -> Optional[Set[str]]:
    """Field names of a (frozen) dataclass: annotated class-level targets."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = set()
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    fields.add(statement.target.id)
            return fields
    return None


def _find_function(tree: ast.Module, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _uses_asdict(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id == "asdict":
                return True
            if isinstance(callee, ast.Attribute) and callee.attr == "asdict":
                return True
    return False


def _explicit_payload_keys(func: ast.FunctionDef) -> Set[str]:
    """String keys an explicit payload builder mentions.

    Covers dict displays (``{"nrh": ...}``), ``dict(nrh=...)`` keyword
    calls and ``payload["nrh"] = ...`` subscript stores.
    """
    keys: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
        elif isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id == "dict":
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        keys.add(keyword.arg)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys


def _string_tuple_const(tree: ast.Module, const_name: str):
    """The ``(node, names)`` of a module-level tuple/list-of-str constant."""
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == const_name:
                if isinstance(value, (ast.Tuple, ast.List)):
                    names = [
                        e.value
                        for e in value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    ]
                    return node, names
    return None, None


class CacheKeyCompletenessRule(ProjectRule):
    name = "cache-key-completeness"
    description = (
        "SystemConfig fields, the cache config_payload keys and the batch "
        "group-key field subtraction must agree"
    )

    def __init__(
        self,
        config_module: str = manifest.CONFIG_MODULE,
        config_class: str = manifest.CONFIG_CLASS,
        payload_module: str = manifest.PAYLOAD_MODULE,
        payload_function: str = manifest.PAYLOAD_FUNCTION,
        group_key_module: str = manifest.GROUP_KEY_MODULE,
        free_fields_const: str = manifest.GROUP_FREE_FIELDS_CONST,
    ) -> None:
        self.config_module = config_module
        self.config_class = config_class
        self.payload_module = payload_module
        self.payload_function = payload_function
        self.group_key_module = group_key_module
        self.free_fields_const = free_fields_const

    def check_project(self, project: Project) -> List[Finding]:
        payload_ctx = project.get(self.payload_module)
        group_ctx = project.get(self.group_key_module)
        if payload_ctx is None and group_ctx is None:
            return []  # partial scan: nothing to cross-check

        config_ctx = project.get(self.config_module)
        if config_ctx is None:
            # The consumers are in scope but the config module is not: the
            # cross-check cannot run, which is itself worth surfacing.
            anchor = payload_ctx or group_ctx
            return [
                Finding(
                    rule=self.name, path=anchor.rel_path, line=1, col=0,
                    message=(
                        f"cannot cross-check the cache key: "
                        f"{self.config_module} is not in the scanned set"
                    ),
                )
            ]
        fields = _dataclass_fields(config_ctx.tree, self.config_class)
        if fields is None:
            return [
                Finding(
                    rule=self.name, path=config_ctx.rel_path, line=1, col=0,
                    message=(
                        f"class {self.config_class} not found in "
                        f"{self.config_module}"
                    ),
                )
            ]

        findings: List[Finding] = []
        if payload_ctx is not None:
            findings.extend(self._check_payload(payload_ctx, fields))
        if group_ctx is not None:
            findings.extend(self._check_group_key(group_ctx, fields))
        return findings

    def _check_payload(self, ctx: FileContext, fields: Set[str]) -> List[Finding]:
        func = _find_function(ctx.tree, self.payload_function)
        if func is None:
            return [
                Finding(
                    rule=self.name, path=ctx.rel_path, line=1, col=0,
                    message=(
                        f"cache key builder {self.payload_function}() not "
                        f"found in {ctx.rel_path}"
                    ),
                )
            ]
        if _uses_asdict(func):
            return []  # asdict covers every field by construction
        keys = _explicit_payload_keys(func)
        findings: List[Finding] = []
        for missing in sorted(fields - keys):
            findings.append(
                Finding(
                    rule=self.name, path=ctx.rel_path,
                    line=func.lineno, col=func.col_offset,
                    message=(
                        f"{self.payload_function}() omits "
                        f"{self.config_class}.{missing}: a run with a "
                        f"different {missing} would be served a stale "
                        f"cached result"
                    ),
                )
            )
        for stale in sorted(keys - fields):
            findings.append(
                Finding(
                    rule=self.name, path=ctx.rel_path,
                    line=func.lineno, col=func.col_offset,
                    message=(
                        f"{self.payload_function}() key {stale!r} is not a "
                        f"{self.config_class} field (renamed or removed?)"
                    ),
                )
            )
        return findings

    def _check_group_key(self, ctx: FileContext, fields: Set[str]) -> List[Finding]:
        node, names = _string_tuple_const(ctx.tree, self.free_fields_const)
        if node is None:
            return []  # the batch engine may legitimately not exist in scans
        findings: List[Finding] = []
        for name in names:
            if name not in fields:
                findings.append(
                    Finding(
                        rule=self.name, path=ctx.rel_path,
                        line=node.lineno, col=node.col_offset,
                        message=(
                            f"{self.free_fields_const} names "
                            f"{name!r}, which is not a {self.config_class} "
                            f"field: the group-key subtraction silently "
                            f"no-ops"
                        ),
                    )
                )
        return findings
