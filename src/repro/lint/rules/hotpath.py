"""Rule ``hot-path-alloc``: the registered data plane stays allocation-free.

PRs 4-6 made the per-command / per-access / per-idle-wake path
allocation-free in steady state (slot recycling, array backends, cached
hints) and the committed benches gate the wins.  A future edit that drops
a comprehension or an f-string into one of those bodies compiles fine,
behaves identically -- and quietly regresses the measured throughput.

For every function registered in the hot-path manifest
(:data:`repro.lint.manifest.HOT_PATH_FUNCTIONS`) this rule flags the
Python constructs that allocate per call:

* list / set / dict comprehensions and generator expressions,
* ``lambda`` and nested ``def`` (closure objects per call),
* f-strings and ``.format()`` calls (string building),
* ``*args`` / ``**kwargs`` call expansion (packs a fresh tuple/dict).

Constructs inside a ``raise`` statement are exempt: exception paths run
once and then unwind, so building a precise message there is free.

It is a :class:`ProjectRule` so it can also detect *stale manifest
entries*: a registered qualname that no longer exists (the function was
renamed or moved) would otherwise silently stop being checked.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional

from repro.lint.framework import FileContext, Finding, Project, ProjectRule
from repro.lint import manifest


class HotPathAllocationRule(ProjectRule):
    name = "hot-path-alloc"
    description = (
        "no per-call allocation constructs (comprehensions, closures, "
        "f-strings, */** expansion) in manifest-registered hot-path functions"
    )

    def __init__(self, functions: Optional[Dict[str, FrozenSet[str]]] = None) -> None:
        self.functions = (
            dict(manifest.HOT_PATH_FUNCTIONS) if functions is None else dict(functions)
        )

    def check_project(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for rel_path in sorted(self.functions):
            registered = self.functions[rel_path]
            ctx = project.get(rel_path)
            if ctx is None:
                continue  # partial scan: the file is out of scope
            defined = self._collect_functions(ctx.tree)
            for qualname in sorted(registered):
                node = defined.get(qualname)
                if node is None:
                    findings.append(
                        Finding(
                            rule=self.name, path=rel_path, line=1, col=0,
                            message=(
                                f"stale hot-path manifest entry: {qualname} "
                                f"not found in {rel_path}; update "
                                f"HOT_PATH_FUNCTIONS in repro/lint/manifest.py"
                            ),
                        )
                    )
                    continue
                for child in ast.iter_child_nodes(node):
                    self._scan(child, ctx, qualname, findings)
        return findings

    def _collect_functions(self, tree: ast.Module) -> Dict[str, ast.AST]:
        """Dotted qualname -> def node, for every (nested) def in the file."""
        defined: Dict[str, ast.AST] = {}

        def walk(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    qualname = f"{prefix}{child.name}" if prefix else child.name
                    if not isinstance(child, ast.ClassDef):
                        defined[qualname] = child
                    walk(child, qualname + ".")
                else:
                    walk(child, prefix)

        walk(tree, "")
        return defined

    def _scan(self, node, ctx: FileContext, qualname: str, findings: List[Finding]):
        if isinstance(node, ast.Raise):
            return  # cold error path: precise messages are free there
        label = None
        if isinstance(node, ast.ListComp):
            label = "a list comprehension allocates a fresh list"
        elif isinstance(node, ast.SetComp):
            label = "a set comprehension allocates a fresh set"
        elif isinstance(node, ast.DictComp):
            label = "a dict comprehension allocates a fresh dict"
        elif isinstance(node, ast.GeneratorExp):
            label = "a generator expression allocates a generator object"
        elif isinstance(node, ast.Lambda):
            label = "a lambda builds a closure object"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            label = "a nested def builds a closure object"
        elif isinstance(node, ast.JoinedStr):
            label = "an f-string builds a fresh string"
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and node.func.attr == "format":
                label = ".format() builds a fresh string"
            elif any(isinstance(arg, ast.Starred) for arg in node.args) or any(
                kw.arg is None for kw in node.keywords
            ):
                label = "*/** call expansion packs a fresh tuple/dict"
        if label is not None:
            findings.append(
                Finding(
                    rule=self.name,
                    path=ctx.rel_path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=(
                        f"{label} on every call of hot-path function {qualname}"
                    ),
                )
            )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return  # the nested scope is its own (cold) world
        for child in ast.iter_child_nodes(node):
            self._scan(child, ctx, qualname, findings)
