"""Rule ``determinism``: simulation code must be reproducible run-to-run.

The content-addressed ResultCache, the byte-identity pins
(``test_event_horizon.py``, ``test_batch_equivalence.py``) and the golden
regression all assume that a ``(config, trace seed)`` pair produces the
same bytes on every run.  Three constructs silently break that:

* wall-clock reads (``time.time`` / ``perf_counter`` / ``monotonic`` and
  their ``_ns`` variants) leaking into simulated state,
* the process-global ``random`` module (``random.random()``,
  ``random.shuffle()``, ...) whose state any import can perturb, and
  unseeded ``random.Random()`` / any ``random.SystemRandom`` instances,
* iterating a ``set``/``frozenset`` of strings: ``str`` hashing is
  randomized per process (PYTHONHASHSEED), so the iteration order -- and
  everything derived from it -- changes between runs.

Seeded ``random.Random(seed)`` instances are the sanctioned randomness
source and stay quiet.  The set-iteration check is deliberately narrow
(literal string sets and ``set()``/``frozenset()`` over literal string
collections) to avoid guessing types.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.framework import FileContext, Finding, Rule
from repro.lint import manifest

_CLOCK_ATTRS = {
    "time", "perf_counter", "monotonic",
    "time_ns", "perf_counter_ns", "monotonic_ns",
}


def _is_str_literal_collection(node: ast.AST) -> bool:
    """A literal ``{...}`` / ``[...]`` / ``(...)`` whose elements are str."""
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        return bool(node.elts) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts
        )
    return False


class DeterminismRule(Rule):
    name = "determinism"
    description = (
        "no wall clocks, global random state, or str-set iteration in "
        "simulation packages (byte-identity depends on it)"
    )
    targets = manifest.DETERMINISM_TARGETS

    def __init__(self, targets=None) -> None:
        if targets is not None:
            self.targets = tuple(targets)

    def begin_file(self, ctx: FileContext) -> None:
        self._time_modules = set()
        self._random_modules = set()
        #: local name -> original name imported from time/random
        self._from_time = {}
        self._from_random = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "time":
                        self._time_modules.add(local)
                    elif alias.name == "random":
                        self._random_modules.add(local)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        self._from_time[alias.asname or alias.name] = alias.name
                elif node.module == "random":
                    for alias in node.names:
                        self._from_random[alias.asname or alias.name] = alias.name

    # ------------------------------------------------------------------ #
    # clocks and random state
    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Optional[List[Finding]]:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner in self._time_modules and func.attr in _CLOCK_ATTRS:
                return [
                    self.finding(
                        ctx, node,
                        f"time.{func.attr}() is a wall-clock read; simulated "
                        f"behaviour must depend only on the cycle count",
                    )
                ]
            if owner in self._random_modules:
                return self._check_random(node, func.attr, ctx)
        elif isinstance(func, ast.Name):
            original = self._from_time.get(func.id)
            if original in _CLOCK_ATTRS:
                return [
                    self.finding(
                        ctx, node,
                        f"time.{original}() is a wall-clock read; simulated "
                        f"behaviour must depend only on the cycle count",
                    )
                ]
            original = self._from_random.get(func.id)
            if original is not None:
                return self._check_random(node, original, ctx)
        return None

    def _check_random(
        self, node: ast.Call, attr: str, ctx: FileContext
    ) -> Optional[List[Finding]]:
        if attr == "Random":
            if node.args or node.keywords:
                return None  # seeded: the sanctioned randomness source
            return [
                self.finding(
                    ctx, node,
                    "unseeded random.Random() seeds from the OS; pass the "
                    "run's seed explicitly",
                )
            ]
        if attr == "SystemRandom":
            return [
                self.finding(
                    ctx, node,
                    "random.SystemRandom is OS entropy and can never replay",
                )
            ]
        return [
            self.finding(
                ctx, node,
                f"random.{attr}() uses the process-global generator; use a "
                f"seeded random.Random(seed) instance",
            )
        ]

    # ------------------------------------------------------------------ #
    # str-set iteration order
    # ------------------------------------------------------------------ #
    def _check_iterable(self, node: ast.AST, ctx: FileContext) -> Optional[List[Finding]]:
        suspect = None
        if isinstance(node, ast.Set) and _is_str_literal_collection(node):
            suspect = node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
            and len(node.args) == 1
            and _is_str_literal_collection(node.args[0])
        ):
            suspect = node
        if suspect is None:
            return None
        return [
            self.finding(
                ctx, suspect,
                "iterating a set of strings: the order depends on per-process "
                "hash randomization; iterate a sorted() copy or a tuple",
            )
        ]

    def visit_For(self, node: ast.For, ctx: FileContext):
        return self._check_iterable(node.iter, ctx)

    def _check_comprehension(self, node, ctx: FileContext):
        findings: List[Finding] = []
        for generator in node.generators:
            produced = self._check_iterable(generator.iter, ctx)
            if produced:
                findings.extend(produced)
        return findings or None

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext):
        return self._check_comprehension(node, ctx)

    def visit_SetComp(self, node: ast.SetComp, ctx: FileContext):
        return self._check_comprehension(node, ctx)

    def visit_DictComp(self, node: ast.DictComp, ctx: FileContext):
        return self._check_comprehension(node, ctx)

    def visit_GeneratorExp(self, node: ast.GeneratorExp, ctx: FileContext):
        return self._check_comprehension(node, ctx)
