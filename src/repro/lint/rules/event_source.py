"""Rule ``event-source-registry``: every wake hint is a registered contract.

The event-horizon engine (docs/ARCHITECTURE.md, "Event-horizon time
skipping") jumps simulated time to the minimum of every component's wake
hint.  A hint may be early but **never late** -- and the contract only
holds if every hint source is known, reviewed and documented.  A new
component that quietly grows a ``*_next_event_hint`` / ``next_event_cycle``
/ ``next_due_cycle`` method is a new event source; if it is not folded
into the horizon (and its invariants documented), skips can jump past its
events and silently change simulated behaviour.

This rule cross-checks three artefacts:

* the **code**: every class in the scanned tree defining a hint-shaped
  method (``HINT_METHOD_PATTERN``),
* the **registry**: ``repro.lint.manifest.HINT_EVENT_SOURCES`` -- the
  reviewed list of (file, class, method) hint sources,
* the **doc**: each registered class must be named in
  ``docs/ARCHITECTURE.md`` so the contract's prose stays complete.

An unregistered hint method, a stale registry entry, and an undocumented
source class are each findings.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.lint.framework import Finding, Project, ProjectRule
from repro.lint import manifest


class EventSourceRegistryRule(ProjectRule):
    name = "event-source-registry"
    description = (
        "classes with *_next_event_hint-shaped methods must be registered "
        "in the hint-contract registry and named in ARCHITECTURE.md"
    )

    def __init__(
        self,
        registry=None,
        pattern: str = manifest.HINT_METHOD_PATTERN,
        scope: Tuple[str, ...] = ("src/repro/",),
        architecture_doc: Optional[str] = manifest.ARCHITECTURE_DOC,
    ) -> None:
        self.registry = frozenset(
            manifest.HINT_EVENT_SOURCES if registry is None else registry
        )
        self.pattern = re.compile(pattern)
        self.scope = tuple(scope)
        self.architecture_doc = architecture_doc

    def _in_scope(self, rel_path: str) -> bool:
        return any(rel_path.startswith(prefix) for prefix in self.scope)

    def check_project(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        found = {}  # (path, class, method) -> def node line
        for rel_path in sorted(project.files):
            if not self._in_scope(rel_path):
                continue
            tree = project.files[rel_path].tree
            for node in ast.walk(tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for statement in node.body:
                    if not isinstance(
                        statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if self.pattern.search(statement.name):
                        found[(rel_path, node.name, statement.name)] = (
                            statement.lineno, statement.col_offset,
                        )

        architecture = (
            project.read_text(self.architecture_doc)
            if self.architecture_doc
            else None
        )

        for entry, (line, col) in sorted(found.items()):
            rel_path, class_name, method = entry
            if entry not in self.registry:
                findings.append(
                    Finding(
                        rule=self.name, path=rel_path, line=line, col=col,
                        message=(
                            f"{class_name}.{method} looks like an event-"
                            f"horizon wake hint but is not in the hint-"
                            f"contract registry "
                            f"(repro/lint/manifest.py HINT_EVENT_SOURCES); "
                            f"register it and document the source in "
                            f"{self.architecture_doc or 'the architecture doc'}"
                        ),
                    )
                )
            elif architecture is not None and class_name not in architecture:
                findings.append(
                    Finding(
                        rule=self.name, path=rel_path, line=line, col=col,
                        message=(
                            f"registered event source {class_name} is not "
                            f"named in {self.architecture_doc}: the hint "
                            f"contract's documentation is incomplete"
                        ),
                    )
                )

        scanned_scope = any(self._in_scope(p) for p in project.files)
        if scanned_scope:
            for entry in sorted(self.registry):
                rel_path, class_name, method = entry
                if rel_path in project.files and entry not in found:
                    findings.append(
                        Finding(
                            rule=self.name, path=rel_path, line=1, col=0,
                            message=(
                                f"stale registry entry: "
                                f"{class_name}.{method} no longer exists in "
                                f"{rel_path}; update HINT_EVENT_SOURCES"
                            ),
                        )
                    )
        return findings
