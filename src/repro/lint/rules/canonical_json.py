"""Rule ``canonical-json``: one serializer for every persisted payload.

Within the artifact and service packages every JSON byte must derive from
``repro.artifacts.spec.canonical_json`` (sorted keys, no whitespace,
ASCII-only, ``allow_nan=False``) so a value has exactly one byte
representation and record markers can never be smuggled through a payload.
A stray ``json.dumps`` elsewhere in those packages reintroduces a second
encoding -- this rule flags every ``json.dumps``/``json.dump`` call (and
``from json import dumps`` aliases) outside the canonical helper module.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.framework import FileContext, Finding, Rule
from repro.lint import manifest


class CanonicalJsonRule(Rule):
    name = "canonical-json"
    description = (
        "json.dumps in repro.artifacts / repro.service must route through "
        "the canonical helper in artifacts/spec.py"
    )
    targets = manifest.CANONICAL_JSON_TARGETS

    def __init__(self, targets=None, allowed=None) -> None:
        if targets is not None:
            self.targets = tuple(targets)
        self.allowed = tuple(
            manifest.CANONICAL_JSON_ALLOWED if allowed is None else allowed
        )

    def begin_file(self, ctx: FileContext) -> None:
        # Names bound to the json module / its dump functions in this file.
        self._json_modules = set()
        self._dump_aliases = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "json":
                        self._json_modules.add(alias.asname or "json")
            elif isinstance(node, ast.ImportFrom) and node.module == "json":
                for alias in node.names:
                    if alias.name in ("dumps", "dump"):
                        self._dump_aliases.add(alias.asname or alias.name)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> Optional[List[Finding]]:
        if ctx.rel_path in self.allowed:
            return None
        func = node.func
        hit = False
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("dumps", "dump")
            and isinstance(func.value, ast.Name)
            and func.value.id in self._json_modules
        ):
            hit = True
        elif isinstance(func, ast.Name) and func.id in self._dump_aliases:
            hit = True
        if not hit:
            return None
        return [
            self.finding(
                ctx, node,
                "json.dumps outside the canonical helper: use "
                "repro.artifacts.spec.canonical_json so payload bytes have "
                "exactly one representation",
            )
        ]
