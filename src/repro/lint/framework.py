"""The reprolint core: findings, the Rule API, suppressions, the engine.

reprolint is a *project-aware* static checker: its rules encode invariants
of **this** codebase (the no-reflection posture of the artifact parsers,
the allocation-free hot path, run-to-run determinism, canonical-JSON-only
payloads, cache-key completeness, the event-horizon hint registry) that
generic linters cannot know about.  The framework is deliberately small:

* :class:`Finding` -- one diagnostic, identified for baseline matching by
  its ``(rule, path, message)`` fingerprint (line numbers shift too easily
  to key on).
* :class:`Rule` -- an AST-visitor rule.  Subclasses declare ``name`` /
  ``description`` and implement ``visit_<NodeType>`` methods; the engine
  parses each file once and dispatches every node to every applicable
  rule.  ``applies_to`` scopes a rule to path prefixes.
* :class:`ProjectRule` -- a whole-tree rule (cross-file invariants such as
  the cache-key completeness check) run once over the parsed project.
* Inline suppressions -- ``# reprolint: disable=RULE -- reason`` silences
  the named rule(s) on that line, ``disable-file=RULE -- reason`` for the
  whole file.  The reason text is **mandatory**: a reasonless or unknown
  suppression is itself a finding (rule ``bad-suppression``), so every
  accepted exception carries its justification in the source.

The engine never imports the code it checks -- everything is
``ast.parse`` -- so linting cannot execute side effects and works on trees
that do not import (a syntax error becomes a ``parse-error`` finding).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Rules the engine itself emits (not suppressible, not baselineable by
#: accident -- they guard the suppression mechanism).
META_RULE_BAD_SUPPRESSION = "bad-suppression"
META_RULE_PARSE_ERROR = "parse-error"

#: Directive grammar (in a comment): ``reprolint: disable=RULE[,RULE...]
#: -- reason`` for one line, ``disable-file=`` for the whole file.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,-]+)"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)

#: Directories never scanned.
_SKIPPED_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a source location."""

    rule: str
    path: str  #: repo-relative POSIX path
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers shift, messages rarely do."""
        return (self.rule, self.path, self.message)

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class Suppression:
    """One parsed ``# reprolint:`` directive.

    ``applies_to`` is the line the directive silences: the directive's own
    line for a trailing comment, or the next statement line for a
    comment-only line (so long reasons can sit above the code they cover).
    """

    line: int
    applies_to: int
    scope: str  #: "disable" | "disable-file"
    rules: Tuple[str, ...]
    reason: str


class FileContext:
    """One parsed source file plus its suppression directives."""

    def __init__(self, rel_path: str, source: str, tree: ast.Module) -> None:
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.suppressions: List[Suppression] = _parse_suppressions(source)
        #: line -> set of rule names disabled on that line
        self.line_disables: Dict[int, set] = {}
        #: rule names disabled for the whole file
        self.file_disables: set = set()
        for directive in self.suppressions:
            if not directive.reason:
                continue  # reasonless directives are findings, not suppressions
            if directive.scope == "disable-file":
                self.file_disables.update(directive.rules)
            else:
                self.line_disables.setdefault(directive.applies_to, set()).update(
                    directive.rules
                )

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in (META_RULE_BAD_SUPPRESSION, META_RULE_PARSE_ERROR):
            return False
        if finding.rule in self.file_disables:
            return True
        return finding.rule in self.line_disables.get(finding.line, set())


def _parse_suppressions(source: str) -> List[Suppression]:
    """Directives from real ``#`` comments only.

    Tokenizing (rather than regexing raw lines) means a directive quoted
    inside a docstring or string literal -- e.g. documentation *about*
    suppressions -- is never treated as one.
    """
    directives: List[Suppression] = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []  # unparsable files surface as parse-error findings instead

    def _is_comment_only(lineno: int) -> bool:
        text = lines[lineno - 1].strip() if lineno <= len(lines) else ""
        return not text or text.startswith("#")

    for lineno, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        applies_to = lineno
        if _is_comment_only(lineno):
            # A standalone directive covers the next statement line (a
            # multi-line reason block may sit between them).
            cursor = lineno + 1
            while cursor <= len(lines) and _is_comment_only(cursor):
                cursor += 1
            applies_to = cursor
        directives.append(
            Suppression(
                line=lineno,
                applies_to=applies_to,
                scope=match.group("scope"),
                rules=rules,
                reason=(match.group("reason") or "").strip(),
            )
        )
    return directives


class Project:
    """The parsed file set a lint run operates on."""

    def __init__(self, root: Path, files: Dict[str, FileContext]) -> None:
        self.root = root
        self.files = files  #: rel_path -> FileContext

    def get(self, rel_path: str) -> Optional[FileContext]:
        return self.files.get(rel_path)

    def read_text(self, rel_path: str) -> Optional[str]:
        """Read a non-Python project file (e.g. a Markdown doc)."""
        path = self.root / rel_path
        if not path.is_file():
            return None
        return path.read_text(encoding="utf-8")


class Rule:
    """An AST-visitor rule: implement ``visit_<NodeType>(node, ctx)``.

    ``ctx`` is the :class:`FileContext`; report diagnostics by returning a
    list of :class:`Finding` from a visit method (or ``None``).  Use
    :meth:`finding` to build one with the rule name and location filled in.
    ``begin_file`` runs before dispatch and may prescan (e.g. imports).
    """

    name: str = ""
    description: str = ""

    #: Path prefixes (POSIX, repo-relative) the rule applies to.  An entry
    #: ending in "/" matches the subtree; otherwise the exact file.
    targets: Tuple[str, ...] = ()

    def applies_to(self, rel_path: str) -> bool:
        if not self.targets:
            return True
        for target in self.targets:
            if target.endswith("/"):
                if rel_path.startswith(target):
                    return True
            elif rel_path == target:
                return True
        return False

    def begin_file(self, ctx: FileContext) -> None:
        """Hook run once per file before node dispatch."""

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def _dispatch_table(self) -> Dict[type, str]:
        """node type -> visit method name, resolved once per rule instance."""
        table: Dict[type, str] = {}
        for attr in dir(self):
            if not attr.startswith("visit_"):
                continue
            node_type = getattr(ast, attr[len("visit_"):], None)
            if isinstance(node_type, type) and issubclass(node_type, ast.AST):
                table[node_type] = attr
        return table


class ProjectRule(Rule):
    """A whole-tree rule: one pass over the parsed project."""

    def check_project(self, project: Project) -> List[Finding]:
        raise NotImplementedError


@dataclass
class LintResult:
    """Everything a lint run produced (pre-baseline)."""

    root: Path
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules: Tuple[str, ...] = ()


def discover_files(root: Path, paths: Sequence[str]) -> List[Path]:
    """Every ``*.py`` file under ``root`` restricted to ``paths``."""
    seen = {}
    for entry in paths:
        base = root / entry
        if base.is_file() and base.suffix == ".py":
            seen[base] = None
            continue
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if any(part in _SKIPPED_DIRS for part in path.parts):
                continue
            seen[path] = None
    return list(seen)


def parse_project(
    root: Path, paths: Sequence[str]
) -> Tuple[Project, List[Finding]]:
    """Parse every discovered file; syntax errors become findings."""
    root = root.resolve()
    files: Dict[str, FileContext] = {}
    errors: List[Finding] = []
    for path in discover_files(root, paths):
        rel_path = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as error:
            errors.append(
                Finding(
                    rule=META_RULE_PARSE_ERROR,
                    path=rel_path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        files[rel_path] = FileContext(rel_path, source, tree)
    return Project(root, files), errors


def _suppression_findings(ctx: FileContext, known_rules: set) -> List[Finding]:
    findings: List[Finding] = []
    for directive in ctx.suppressions:
        if not directive.reason:
            findings.append(
                Finding(
                    rule=META_RULE_BAD_SUPPRESSION,
                    path=ctx.rel_path,
                    line=directive.line,
                    col=0,
                    message=(
                        "suppression without a reason: write "
                        "'# reprolint: disable=RULE -- why this is safe'"
                    ),
                )
            )
        for rule_name in directive.rules:
            if rule_name not in known_rules:
                findings.append(
                    Finding(
                        rule=META_RULE_BAD_SUPPRESSION,
                        path=ctx.rel_path,
                        line=directive.line,
                        col=0,
                        message=f"suppression names unknown rule {rule_name!r}",
                    )
                )
    return findings


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    parse_errors: Iterable[Finding] = (),
) -> LintResult:
    """Dispatch every node of every file to every applicable rule."""
    findings: List[Finding] = list(parse_errors)
    known_rules = {rule.name for rule in rules}
    node_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    tables = {rule.name: rule._dispatch_table() for rule in node_rules}

    for rel_path in sorted(project.files):
        ctx = project.files[rel_path]
        findings.extend(_suppression_findings(ctx, known_rules))
        active = [r for r in node_rules if r.applies_to(rel_path)]
        if not active:
            continue
        for rule in active:
            rule.begin_file(ctx)
        raw: List[Finding] = []
        for node in ast.walk(ctx.tree):
            for rule in active:
                method = tables[rule.name].get(type(node))
                if method is None:
                    continue
                produced = getattr(rule, method)(node, ctx)
                if produced:
                    raw.extend(produced)
        findings.extend(f for f in raw if not ctx.suppressed(f))

    for rule in project_rules:
        for finding in rule.check_project(project):
            ctx = project.get(finding.path)
            if ctx is not None and ctx.suppressed(finding):
                continue
            findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return LintResult(
        root=project.root,
        findings=findings,
        files_scanned=len(project.files),
        rules=tuple(sorted(known_rules)),
    )


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """child -> parent links for rules that need enclosing-scope context."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
