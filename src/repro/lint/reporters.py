"""Human-readable and JSON reporters for a lint run."""

from __future__ import annotations

from typing import Dict, List

from repro.lint.baseline import Partition
from repro.lint.framework import LintResult


def render_human(
    result: LintResult, split: Partition, baseline_path: str
) -> List[str]:
    """The terminal report, one line per finding plus a summary."""
    lines: List[str] = []
    for finding in split.new:
        lines.append(finding.render())
    if split.accepted:
        lines.append(
            f"{len(split.accepted)} baselined finding(s) accepted "
            f"(see {baseline_path})"
        )
    for entry in split.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} in {entry.path} "
            f"({entry.message!r}) no longer fires -- prune it from "
            f"{baseline_path}"
        )
    lines.append(
        f"reprolint: {result.files_scanned} file(s), "
        f"{len(result.rules)} rule(s), "
        f"{len(split.new)} new finding(s), "
        f"{len(split.accepted)} baselined, {len(split.stale)} stale"
    )
    return lines


def render_json(
    result: LintResult, split: Partition, baseline_path: str
) -> Dict[str, object]:
    """The machine-readable report CI uploads as an artifact."""
    return {
        "version": 1,
        "files_scanned": result.files_scanned,
        "rules": list(result.rules),
        "baseline": baseline_path,
        "new": [finding.as_dict() for finding in split.new],
        "baselined": [finding.as_dict() for finding in split.accepted],
        "stale_baseline": [entry.as_dict() for entry in split.stale],
        "summary": {
            "new": len(split.new),
            "baselined": len(split.accepted),
            "stale": len(split.stale),
        },
    }
