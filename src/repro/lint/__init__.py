"""reprolint: the project-aware static contract checker.

The repo's correctness invariants -- the no-reflection posture of the
artifact parsers, the allocation-free hot path, run-to-run determinism,
canonical-JSON-only payloads, cache-key completeness and the
event-horizon hint registry -- are enforced at review time by AST rules
instead of (only) probabilistically by runtime tests.

Run it as ``python -m repro lint`` (or ``python tools/reprolint.py`` in
CI).  See docs/LINTING.md for the rule catalogue, the suppression policy
(``# reprolint: disable=RULE -- reason``) and the baseline workflow.
"""

from repro.lint.baseline import (
    BaselineEntry,
    BaselineError,
    load_baseline,
    partition,
    write_baseline,
)
from repro.lint.framework import (
    FileContext,
    Finding,
    LintResult,
    Project,
    ProjectRule,
    Rule,
    parse_project,
    run_rules,
)
from repro.lint.rules import default_rules

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "Finding",
    "LintResult",
    "Project",
    "ProjectRule",
    "Rule",
    "default_rules",
    "load_baseline",
    "parse_project",
    "partition",
    "run_rules",
    "write_baseline",
]
