"""The full-system simulator.

:class:`SystemSimulator` wires the trace-driven cores, the shared LLC, the
per-channel memory controllers, the DRAM devices and the selected
read-disturbance mitigation mechanism together, and runs them to completion.
The simulator is cycle-accurate at DRAM-command granularity but event-driven
in time: it skips cycles in which no component can make progress, which keeps
pure-Python simulations tractable while preserving command-level timing
fidelity.

The memory system scales out horizontally: ``config.organization.channels``
independent channels are built, each with its own
:class:`~repro.controller.controller.MemoryController`,
:class:`~repro.dram.device.DramDevice` and mitigation-mechanism instance
(mitigation state is per-channel hardware, so each channel tracks only its
own activations).  The LLC miss path routes each request to its channel
through a :class:`~repro.controller.router.ChannelRouter`; every channel owns
an independent command bus, which is what makes aggregate bandwidth scale
with the channel count.  A single-channel system behaves bit-identically to
the original hardwired design (pinned by the golden regression tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.controller.address_mapping import mapping_by_name
from repro.controller.controller import MemoryController
from repro.controller.request import RequestPool, RequestType

#: Hoisted enum member for the completion-drain loop (attribute lookups on
#: the enum class are surprisingly costly on this path).
_READ = RequestType.READ
from repro.controller.router import ChannelRouter
from repro.core.factory import MechanismSetup, build_mechanism
from repro.cpu.cache import Cache
from repro.cpu.core import Core
from repro.cpu.trace import Trace
from repro.dram.device import DramDevice
from repro.dram.timing import ddr5_3200an
from repro.dram.timing_plane import BankArrayTiming
from repro.energy.drampower import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.system.config import SystemConfig
from repro.system.metrics import (
    CHANNEL_COUNTER_KEYS,
    SimulationResult,
    aggregate_channel_stats,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (attacks -> sweep)
    from repro.attacks.oracle import DisturbanceOracle

#: Sentinel "no event" value used by the event hints.
FAR_FUTURE = 1 << 62


class SystemSimulator:
    """One simulated multi-core system running one workload."""

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        workload_name: Optional[str] = None,
        energy_model: Optional[EnergyModel] = None,
        oracle: Optional["DisturbanceOracle"] = None,
        strict_tick: bool = False,
        llc: Optional[Cache] = None,
        decode_cache: Optional[Dict[int, tuple]] = None,
        core_trace_data: Optional[Sequence[tuple]] = None,
        fast_kernels: bool = False,
        timing_planes: Optional[Sequence["BankArrayTiming"]] = None,
    ) -> None:
        if len(traces) != config.num_cores:
            raise ValueError(
                f"expected {config.num_cores} traces, got {len(traces)}"
            )
        self.config = config
        self.traces = list(traces)
        self.workload_name = workload_name or "+".join(trace.name for trace in traces)
        self.energy_model = energy_model or DEFAULT_ENERGY_MODEL
        self.oracle = oracle
        #: Debug flag: when True, time advances one cycle at a time (the
        #: cycle-stepped reference path) instead of skipping to the next
        #: event horizon.  Slow but trivially correct; the determinism
        #: harness asserts the event-driven path is byte-identical to it.
        self.strict_tick = strict_tick
        # Batch-mode hooks (see repro.experiments.batch): a pooled LLC, a
        # shared address-decode table, pre-decomposed per-core trace arrays
        # and the controllers' gated fast kernels.  All observably identical
        # to the defaults -- the batch equivalence tests pin byte-equal
        # results -- so scalar runs simply leave them unset.
        if llc is not None and (
            llc.size_bytes != config.llc_size_bytes
            or llc.associativity != config.llc_associativity
            or llc.line_size != config.llc_line_size
        ):
            raise ValueError("pooled LLC geometry does not match the config")
        if core_trace_data is not None and len(core_trace_data) != len(traces):
            raise ValueError(
                f"expected {len(traces)} per-core trace arrays, "
                f"got {len(core_trace_data)}"
            )
        self.fast_kernels = fast_kernels

        organization = config.organization
        self.num_channels = organization.channels
        # One mechanism instance per channel: counter tables, back-off state
        # and (for PARA) the RNG are per-channel hardware.  Channel seeds are
        # decorrelated; channel 0 keeps the config seed, so single-channel
        # systems are unchanged.
        self.setups: List[MechanismSetup] = [
            build_mechanism(
                config.mechanism,
                nrh=config.nrh,
                num_banks=organization.total_banks,
                seed=config.seed + channel,
            )
            for channel in range(self.num_channels)
        ]
        self.setup: MechanismSetup = self.setups[0]
        timing = ddr5_3200an(
            prac=self.setup.use_prac_timings,
            legacy_prac_timings=(
                config.legacy_prac_timings and self.setup.use_prac_timings
            ),
        )
        # Batch-mode hook: pre-allocated per-channel timing planes (pooled
        # like counter buffers).  Passing a plane implies the array backend;
        # DramDevice resets it, so pooled history can never leak in.
        if timing_planes is not None and len(timing_planes) != self.num_channels:
            raise ValueError(
                f"expected {self.num_channels} timing planes, "
                f"got {len(timing_planes)}"
            )
        self.devices: List[DramDevice] = [
            DramDevice(
                organization,
                timing,
                mitigation=setup.on_die,
                timing_plane=(
                    timing_planes[channel] if timing_planes is not None else None
                ),
            )
            for channel, setup in enumerate(self.setups)
        ]
        mapping = mapping_by_name(config.address_mapping, organization)
        self.controllers: List[MemoryController] = [
            MemoryController(
                device=device,
                mapping=mapping,
                mechanism=setup.controller,
                read_queue_size=config.read_queue_size,
                write_queue_size=config.write_queue_size,
                scheduler_cap=config.scheduler_cap,
                fast_kernels=fast_kernels,
            )
            for device, setup in zip(self.devices, self.setups)
        ]
        self.router = ChannelRouter(mapping, self.controllers, decode_cache=decode_cache)
        self.llc = llc if llc is not None else Cache(
            size_bytes=config.llc_size_bytes,
            associativity=config.llc_associativity,
            line_size=config.llc_line_size,
        )
        # One request pool for the whole system: requests are recycled as
        # soon as their completion is drained, so the steady-state request
        # path allocates nothing.
        self._request_pool = RequestPool()
        self.cores = [
            Core(
                core_id=index,
                trace=trace,
                llc=self.llc,
                clock_ratio=config.clock_ratio,
                issue_width=config.issue_width,
                window_size=config.window_size,
                max_outstanding=config.max_outstanding,
                llc_hit_latency=config.llc_hit_latency,
                bypass_llc=index in config.attacker_cores,
                request_pool=self._request_pool,
                trace_data=(
                    core_trace_data[index] if core_trace_data is not None else None
                ),
                pooled_hits=fast_kernels,
            )
            for index, trace in enumerate(self.traces)
        ]
        self.cycle = 0

        if self.oracle is not None:
            if self.oracle.num_channels != self.num_channels:
                raise ValueError(
                    f"oracle tracks {self.oracle.num_channels} channel(s) but "
                    f"the system has {self.num_channels}; construct it with "
                    f"num_channels=config.organization.channels"
                )
            # Ground-truth observation: every ACT, plus every victim refresh
            # any installed mechanism performs or requests -- tagged with the
            # originating channel so cross-channel isolation is provable.
            for channel, device in enumerate(self.devices):
                device.add_activation_listener(self._oracle_act_sink(channel))
            for channel, setup in enumerate(self.setups):
                for mechanism in setup.mechanisms():
                    mechanism.add_mitigation_listener(
                        self._oracle_refresh_sink(channel)
                    )

    def _oracle_act_sink(self, channel: int) -> Callable[[int, int, int], None]:
        oracle = self.oracle
        if channel == 0:
            # Pre-bound method: ``on_activate`` defaults to channel 0, so the
            # per-ACT closure frame is dropped from the single-channel (and
            # channel-0) fan-out path.
            return oracle.on_activate

        def sink(bank_id: int, row: int, cycle: int) -> None:
            oracle.on_activate(bank_id, row, cycle, channel=channel)

        return sink

    def _oracle_refresh_sink(self, channel: int) -> Callable[..., None]:
        oracle = self.oracle

        def sink(bank_id: int, aggressor_row, num_rows: int, cycle: int) -> None:
            oracle.on_victims_refreshed(
                bank_id, aggressor_row, num_rows, cycle, channel=channel
            )

        return sink

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run the simulation until every core retires its target.

        Time is event-driven: when no component issued anything, the loop
        advances to the exact minimum of every component's next-event hint
        (controller command readiness, refresh due cycles, back-off
        deadlines, core retire/issue events).  With ``strict_tick=True`` it
        instead advances one cycle at a time -- the reference path the
        determinism tests compare against.
        """
        cycle = self.cycle
        cores = self.cores
        router = self.router
        router_tick = router.tick
        router_drain = router.drain_completed
        pool = self._request_pool
        release = pool.release
        max_cycles = self.config.max_cycles
        strict = self.strict_tick
        # Whether the previous loop iteration issued a DRAM command: queue
        # space only frees on issue events, so queue-blocked cores retry
        # exactly then (matching the ungated schedule cycle for cycle).
        prev_issued = True

        while True:
            finished_all = True
            for core in cores:
                # Issue gating: a call is skipped only when the core's own
                # wake bookkeeping proves it would be a no-op -- the blocked
                # state can change at ``_wake_cycle`` (front-end readiness /
                # a known completion), on a completion notification (which
                # resets the wake), or -- for queue-blocked cores -- after an
                # issue event.  Strict-tick keeps the ungated reference path.
                if (
                    strict
                    or cycle >= core._wake_cycle
                    or (prev_issued and core._retry_on_issue)
                ):
                    while core.try_issue(cycle, router):
                        pass
                # Finish state only changes inside try_issue (retirement),
                # which has run for this iteration, so the check fuses here.
                if core.finish_cycle is None:
                    finished_all = False
            issued, hint = router_tick(cycle, force=strict)
            completed = router_drain()
            if completed:
                for request in completed:
                    if request.request_type is _READ:
                        cores[request.core_id].notify_completion(request, cycle)
                    # The request is dead: nothing references it any more
                    # (cores drop theirs during notification), so it can be
                    # recycled for the next dispatch.
                    release(request)

            if finished_all:
                break
            if cycle >= max_cycles:
                break

            prev_issued = issued
            if completed and not issued:
                # Completions that land on the current cycle unblock the
                # cores immediately; give them a chance to react before
                # advancing time (otherwise a final same-cycle completion
                # would look like a deadlock).
                continue
            if issued or strict:
                cycle += 1
                continue
            wake = hint
            for core in cores:
                # Finished cores participate too: they keep replaying their
                # trace to preserve memory contention (weighted-speedup
                # methodology), so their issue events are real events -- a
                # skip over them would make the background traffic depend on
                # the wake pattern instead of on simulated time.  The cached
                # wake is exact: it was computed when the core last blocked
                # and nothing has changed it since (else the core would have
                # been eligible above and refreshed it).
                event = core._wake_cycle
                if event < wake:
                    wake = event
            if wake <= cycle:
                # Defensive only: hints are precise, so an idle tick always
                # yields a strictly future wake cycle.
                cycle += 1
            elif wake >= FAR_FUTURE:
                raise RuntimeError(
                    f"simulation deadlock at cycle {cycle} "
                    f"({self.workload_name}, {self.config.mechanism})"
                )
            else:
                cycle = min(wake, max_cycles)

        self.cycle = cycle
        return self._build_result(cycle)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _channel_record(self, channel: int, cycles: int) -> Dict[str, object]:
        """The per-channel stats record of one channel."""
        setup = self.setups[channel]
        device = self.devices[channel]
        stats = self.controllers[channel].stats
        channel_mitigation: Dict[str, int] = {}
        borrowed_rows = 0
        for mechanism in setup.mechanisms():
            for key, value in mechanism.stats.as_dict().items():
                channel_mitigation[key] = channel_mitigation.get(key, 0) + value
            borrowed_rows += mechanism.stats.borrowed_refreshes
        breakdown = self.energy_model.compute(
            command_counts=device.command_counts,
            cycles=cycles,
            act_energy_multiplier=setup.act_energy_multiplier,
            internal_victim_rows=device.internal_victim_rows,
            borrowed_refresh_rows=borrowed_rows,
        )
        return {
            "channel": channel,
            "reads_served": stats.reads_served,
            "writes_served": stats.writes_served,
            "row_hits": stats.row_hits,
            "row_misses": stats.row_misses,
            "row_conflicts": stats.row_conflicts,
            "refreshes": stats.refreshes,
            "rfms": stats.rfms,
            "backoffs_observed": stats.backoffs_observed,
            "preventive_refresh_rows": stats.preventive_refresh_rows,
            "total_read_latency": stats.total_read_latency,
            "average_read_latency": stats.average_read_latency(),
            "command_counts": dict(device.command_counts),
            "mitigation_stats": channel_mitigation,
            "energy_nj": breakdown.total,
            "energy_breakdown": breakdown.as_dict(),
        }

    def _build_result(self, cycles: int) -> SimulationResult:
        channel_records = [
            self._channel_record(channel, cycles)
            for channel in range(self.num_channels)
        ]
        totals = aggregate_channel_stats(channel_records)

        mitigation_stats: Dict[str, int] = {}
        for record in channel_records:
            for key, value in record["mitigation_stats"].items():
                mitigation_stats[key] = mitigation_stats.get(key, 0) + value
        if self.oracle is not None:
            mitigation_stats.update(self.oracle.stats_dict())

        # The raw latency sum stays per-channel only; system-wide it is
        # reported as the read-weighted average (matching the seed layout).
        controller_stats = {
            key: totals[key]
            for key in CHANNEL_COUNTER_KEYS
            if key != "total_read_latency"
        }
        controller_stats["average_read_latency"] = totals["average_read_latency"]
        controller_stats["llc_miss_rate"] = self.llc.stats.miss_rate
        return SimulationResult(
            mechanism=self.config.mechanism,
            nrh=self.config.nrh,
            workload=self.workload_name,
            cycles=cycles,
            core_ipcs=[core.ipc() for core in self.cores],
            core_names=[trace.name for trace in self.traces],
            command_counts=totals["command_counts"],
            controller_stats=controller_stats,
            mitigation_stats=mitigation_stats,
            energy_nj=totals["energy_nj"],
            energy_breakdown=totals["energy_breakdown"],
            is_secure=self.setup.is_secure,
            channel_stats=channel_records,
        )


def simulate(
    config: SystemConfig,
    traces: Sequence[Trace],
    workload_name: Optional[str] = None,
    oracle: Optional["DisturbanceOracle"] = None,
    strict_tick: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SystemSimulator` and run it.

    When ``oracle`` (a :class:`~repro.attacks.oracle.DisturbanceOracle`) is
    given, its ground-truth disturbance statistics are merged into the
    result's ``mitigation_stats`` under ``oracle_*`` keys.  ``strict_tick``
    selects the cycle-stepped debug path (see :class:`SystemSimulator`).
    """
    return SystemSimulator(
        config, traces, workload_name=workload_name, oracle=oracle,
        strict_tick=strict_tick,
    ).run()
