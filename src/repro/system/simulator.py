"""The full-system simulator.

:class:`SystemSimulator` wires the trace-driven cores, the shared LLC, the
memory controller, the DRAM device and the selected read-disturbance
mitigation mechanism together, and runs them to completion.  The simulator is
cycle-accurate at DRAM-command granularity but event-driven in time: it skips
cycles in which no component can make progress, which keeps pure-Python
simulations tractable while preserving command-level timing fidelity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.controller.address_mapping import mapping_by_name
from repro.controller.controller import MemoryController
from repro.core.factory import MechanismSetup, build_mechanism
from repro.cpu.cache import Cache
from repro.cpu.core import Core
from repro.cpu.trace import Trace
from repro.dram.device import DramDevice
from repro.dram.timing import ddr5_3200an
from repro.energy.drampower import DEFAULT_ENERGY_MODEL, EnergyModel
from repro.system.config import SystemConfig
from repro.system.metrics import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (attacks -> sweep)
    from repro.attacks.oracle import DisturbanceOracle

#: Sentinel "no event" value used by the event hints.
FAR_FUTURE = 1 << 62


class SystemSimulator:
    """One simulated multi-core system running one workload."""

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        workload_name: Optional[str] = None,
        energy_model: Optional[EnergyModel] = None,
        oracle: Optional["DisturbanceOracle"] = None,
    ) -> None:
        if len(traces) != config.num_cores:
            raise ValueError(
                f"expected {config.num_cores} traces, got {len(traces)}"
            )
        self.config = config
        self.traces = list(traces)
        self.workload_name = workload_name or "+".join(trace.name for trace in traces)
        self.energy_model = energy_model or DEFAULT_ENERGY_MODEL
        self.oracle = oracle

        organization = config.organization
        self.setup: MechanismSetup = build_mechanism(
            config.mechanism,
            nrh=config.nrh,
            num_banks=organization.total_banks,
            seed=config.seed,
        )
        timing = ddr5_3200an(
            prac=self.setup.use_prac_timings,
            legacy_prac_timings=(
                config.legacy_prac_timings and self.setup.use_prac_timings
            ),
        )
        self.device = DramDevice(organization, timing, mitigation=self.setup.on_die)
        mapping = mapping_by_name(config.address_mapping, organization)
        self.controller = MemoryController(
            device=self.device,
            mapping=mapping,
            mechanism=self.setup.controller,
            read_queue_size=config.read_queue_size,
            write_queue_size=config.write_queue_size,
            scheduler_cap=config.scheduler_cap,
        )
        self.llc = Cache(
            size_bytes=config.llc_size_bytes,
            associativity=config.llc_associativity,
            line_size=config.llc_line_size,
        )
        self.cores = [
            Core(
                core_id=index,
                trace=trace,
                llc=self.llc,
                clock_ratio=config.clock_ratio,
                issue_width=config.issue_width,
                window_size=config.window_size,
                max_outstanding=config.max_outstanding,
                llc_hit_latency=config.llc_hit_latency,
                bypass_llc=index in config.attacker_cores,
            )
            for index, trace in enumerate(self.traces)
        ]
        self.cycle = 0

        if self.oracle is not None:
            # Ground-truth observation: every ACT, plus every victim refresh
            # any installed mechanism performs or requests.
            self.device.add_activation_listener(self.oracle.on_activate)
            for mechanism in self.setup.mechanisms():
                mechanism.add_mitigation_listener(self.oracle.on_victims_refreshed)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run the simulation until every core retires its target."""
        cycle = self.cycle
        cores = self.cores
        controller = self.controller
        max_cycles = self.config.max_cycles

        while True:
            for core in cores:
                while core.try_issue(cycle, controller):
                    pass
            issued, hint = controller.tick(cycle)
            completed = controller.drain_completed()
            for request in completed:
                if request.is_read:
                    cores[request.core_id].notify_completion(request, cycle)

            if all(core.finished for core in cores):
                break
            if cycle >= max_cycles:
                break

            if completed and not issued:
                # Completions that land on the current cycle unblock the
                # cores immediately; give them a chance to react before
                # advancing time (otherwise a final same-cycle completion
                # would look like a deadlock).
                continue
            if issued:
                cycle += 1
                continue
            wake = hint
            for core in cores:
                if not core.finished:
                    wake = min(wake, core.next_event_cycle(cycle))
            if wake <= cycle:
                cycle += 1
            elif wake >= FAR_FUTURE:
                raise RuntimeError(
                    f"simulation deadlock at cycle {cycle} "
                    f"({self.workload_name}, {self.config.mechanism})"
                )
            else:
                cycle = min(wake, max_cycles)

        self.cycle = cycle
        return self._build_result(cycle)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _build_result(self, cycles: int) -> SimulationResult:
        mitigation_stats: Dict[str, int] = {}
        borrowed_rows = 0
        for mechanism in self.setup.mechanisms():
            for key, value in mechanism.stats.as_dict().items():
                mitigation_stats[key] = mitigation_stats.get(key, 0) + value
            borrowed_rows += mechanism.stats.borrowed_refreshes
        if self.oracle is not None:
            mitigation_stats.update(self.oracle.stats_dict())

        breakdown = self.energy_model.compute(
            command_counts=self.device.command_counts,
            cycles=cycles,
            act_energy_multiplier=self.setup.act_energy_multiplier,
            internal_victim_rows=self.device.internal_victim_rows,
            borrowed_refresh_rows=borrowed_rows,
        )
        stats = self.controller.stats
        controller_stats = {
            "reads_served": stats.reads_served,
            "writes_served": stats.writes_served,
            "row_hits": stats.row_hits,
            "row_misses": stats.row_misses,
            "row_conflicts": stats.row_conflicts,
            "refreshes": stats.refreshes,
            "rfms": stats.rfms,
            "backoffs_observed": stats.backoffs_observed,
            "preventive_refresh_rows": stats.preventive_refresh_rows,
            "average_read_latency": stats.average_read_latency(),
            "llc_miss_rate": self.llc.stats.miss_rate,
        }
        return SimulationResult(
            mechanism=self.config.mechanism,
            nrh=self.config.nrh,
            workload=self.workload_name,
            cycles=cycles,
            core_ipcs=[core.ipc() for core in self.cores],
            core_names=[trace.name for trace in self.traces],
            command_counts=dict(self.device.command_counts),
            controller_stats=controller_stats,
            mitigation_stats=mitigation_stats,
            energy_nj=breakdown.total,
            energy_breakdown=breakdown.as_dict(),
            is_secure=self.setup.is_secure,
        )


def simulate(
    config: SystemConfig,
    traces: Sequence[Trace],
    workload_name: Optional[str] = None,
    oracle: Optional["DisturbanceOracle"] = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SystemSimulator` and run it.

    When ``oracle`` (a :class:`~repro.attacks.oracle.DisturbanceOracle`) is
    given, its ground-truth disturbance statistics are merged into the
    result's ``mitigation_stats`` under ``oracle_*`` keys.
    """
    return SystemSimulator(
        config, traces, workload_name=workload_name, oracle=oracle
    ).run()
