"""Performance metrics and the simulation result record.

The paper evaluates system performance with the *weighted speedup* metric
(normalised to a baseline without any read-disturbance mitigation) and the
performance-attack study additionally reports the *maximum slowdown* of a
single application.

Multi-channel systems additionally report one stats record per channel
(:data:`SimulationResult.channel_stats`); :func:`aggregate_channel_stats`
folds those into system totals and is the single place the aggregation
identities (``sum(per-channel) == system total``) are defined, so the
simulator and the tests cannot drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


def weighted_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Weighted speedup: sum over cores of IPC_shared / IPC_alone."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists must have the same length")
    if not shared_ipcs:
        raise ValueError("at least one core is required")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def normalized_weighted_speedup(
    shared_ipcs: Sequence[float],
    alone_ipcs: Sequence[float],
    baseline_shared_ipcs: Sequence[float],
) -> float:
    """Weighted speedup normalised to the no-mitigation baseline run."""
    mechanism_ws = weighted_speedup(shared_ipcs, alone_ipcs)
    baseline_ws = weighted_speedup(baseline_shared_ipcs, alone_ipcs)
    if baseline_ws <= 0:
        raise ValueError("baseline weighted speedup must be positive")
    return mechanism_ws / baseline_ws


def harmonic_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Harmonic mean of per-core speedups (fairness-oriented metric)."""
    if len(shared_ipcs) != len(alone_ipcs) or not shared_ipcs:
        raise ValueError("shared and alone IPC lists must match and be non-empty")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if shared <= 0:
            return 0.0
        total += alone / shared
    return len(shared_ipcs) / total


def max_slowdown(shared_ipcs: Sequence[float], baseline_ipcs: Sequence[float]) -> float:
    """Maximum per-core slowdown relative to a baseline run (0..1)."""
    if len(shared_ipcs) != len(baseline_ipcs) or not shared_ipcs:
        raise ValueError("IPC lists must match and be non-empty")
    worst = 0.0
    for shared, baseline in zip(shared_ipcs, baseline_ipcs):
        if baseline <= 0:
            continue
        worst = max(worst, 1.0 - shared / baseline)
    return worst


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean (as used for the paper's error bars)."""
    n = len(values)
    if n <= 1:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance / n)


#: Additive per-channel controller counters (summed by the aggregation; the
#: non-additive ``average_read_latency`` is recomputed from the sums).
CHANNEL_COUNTER_KEYS = (
    "reads_served",
    "writes_served",
    "row_hits",
    "row_misses",
    "row_conflicts",
    "refreshes",
    "rfms",
    "backoffs_observed",
    "preventive_refresh_rows",
    "total_read_latency",
)


def aggregate_channel_stats(
    channel_stats: Sequence[Mapping[str, object]],
) -> Dict[str, float]:
    """Fold per-channel stats records into system totals.

    Args:
        channel_stats: one record per channel, as produced by the simulator
            (see :data:`SimulationResult.channel_stats`): the
            :data:`CHANNEL_COUNTER_KEYS` counters plus ``command_counts``,
            ``energy_nj`` and ``energy_breakdown``.

    Returns:
        A flat dict with every counter summed, ``command_counts`` and
        ``energy_breakdown`` merged key-wise, total ``energy_nj``, and the
        recomputed system-wide ``average_read_latency``.
    """
    if not channel_stats:
        raise ValueError("at least one channel record is required")
    totals: Dict[str, float] = {key: 0 for key in CHANNEL_COUNTER_KEYS}
    command_counts: Dict[str, int] = {}
    energy_breakdown: Dict[str, float] = {}
    energy_nj = 0.0
    for record in channel_stats:
        for key in CHANNEL_COUNTER_KEYS:
            totals[key] += record[key]
        for mnemonic, count in record.get("command_counts", {}).items():
            command_counts[mnemonic] = command_counts.get(mnemonic, 0) + count
        for component, value in record.get("energy_breakdown", {}).items():
            energy_breakdown[component] = energy_breakdown.get(component, 0.0) + value
        energy_nj += record.get("energy_nj", 0.0)
    totals["average_read_latency"] = (
        totals["total_read_latency"] / totals["reads_served"]
        if totals["reads_served"]
        else 0.0
    )
    totals["command_counts"] = command_counts
    totals["energy_breakdown"] = energy_breakdown
    totals["energy_nj"] = energy_nj
    return totals


@dataclass
class SimulationResult:
    """Everything a single system simulation produces."""

    mechanism: str
    nrh: int
    workload: str
    cycles: int
    core_ipcs: List[float]
    core_names: List[str]
    command_counts: Dict[str, int]
    controller_stats: Dict[str, float]
    mitigation_stats: Dict[str, int]
    energy_nj: float
    energy_breakdown: Dict[str, float]
    is_secure: bool = True
    #: One record per memory channel (None on results recorded before the
    #: multi-channel scale-out; those deserialise from cache unchanged).
    channel_stats: Optional[List[Dict[str, object]]] = None

    @property
    def num_channels(self) -> int:
        """Memory channels of the simulated system."""
        return len(self.channel_stats) if self.channel_stats else 1

    @property
    def total_instructions_per_cycle(self) -> float:
        """Aggregate IPC across all cores (in core cycles)."""
        return sum(self.core_ipcs)

    def read_bandwidth_bytes_per_cycle(self, line_bytes: int = 64) -> float:
        """Aggregate read bandwidth in bytes per DRAM cycle."""
        if self.cycles == 0:
            return 0.0
        return self.controller_stats.get("reads_served", 0) * line_bytes / self.cycles

    def backoffs_per_million_cycles(self) -> float:
        """Back-off rate, matching the paper's reporting unit."""
        backoffs = self.mitigation_stats.get("backoffs", 0)
        if self.cycles == 0:
            return 0.0
        return backoffs * 1_000_000 / self.cycles
