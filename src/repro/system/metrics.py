"""Performance metrics and the simulation result record.

The paper evaluates system performance with the *weighted speedup* metric
(normalised to a baseline without any read-disturbance mitigation) and the
performance-attack study additionally reports the *maximum slowdown* of a
single application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def weighted_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Weighted speedup: sum over cores of IPC_shared / IPC_alone."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists must have the same length")
    if not shared_ipcs:
        raise ValueError("at least one core is required")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
        total += shared / alone
    return total


def normalized_weighted_speedup(
    shared_ipcs: Sequence[float],
    alone_ipcs: Sequence[float],
    baseline_shared_ipcs: Sequence[float],
) -> float:
    """Weighted speedup normalised to the no-mitigation baseline run."""
    mechanism_ws = weighted_speedup(shared_ipcs, alone_ipcs)
    baseline_ws = weighted_speedup(baseline_shared_ipcs, alone_ipcs)
    if baseline_ws <= 0:
        raise ValueError("baseline weighted speedup must be positive")
    return mechanism_ws / baseline_ws


def harmonic_speedup(shared_ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Harmonic mean of per-core speedups (fairness-oriented metric)."""
    if len(shared_ipcs) != len(alone_ipcs) or not shared_ipcs:
        raise ValueError("shared and alone IPC lists must match and be non-empty")
    total = 0.0
    for shared, alone in zip(shared_ipcs, alone_ipcs):
        if shared <= 0:
            return 0.0
        total += alone / shared
    return len(shared_ipcs) / total


def max_slowdown(shared_ipcs: Sequence[float], baseline_ipcs: Sequence[float]) -> float:
    """Maximum per-core slowdown relative to a baseline run (0..1)."""
    if len(shared_ipcs) != len(baseline_ipcs) or not shared_ipcs:
        raise ValueError("IPC lists must match and be non-empty")
    worst = 0.0
    for shared, baseline in zip(shared_ipcs, baseline_ipcs):
        if baseline <= 0:
            continue
        worst = max(worst, 1.0 - shared / baseline)
    return worst


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def standard_error(values: Sequence[float]) -> float:
    """Standard error of the mean (as used for the paper's error bars)."""
    n = len(values)
    if n <= 1:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return math.sqrt(variance / n)


@dataclass
class SimulationResult:
    """Everything a single system simulation produces."""

    mechanism: str
    nrh: int
    workload: str
    cycles: int
    core_ipcs: List[float]
    core_names: List[str]
    command_counts: Dict[str, int]
    controller_stats: Dict[str, float]
    mitigation_stats: Dict[str, int]
    energy_nj: float
    energy_breakdown: Dict[str, float]
    is_secure: bool = True

    @property
    def total_instructions_per_cycle(self) -> float:
        """Aggregate IPC across all cores (in core cycles)."""
        return sum(self.core_ipcs)

    def backoffs_per_million_cycles(self) -> float:
        """Back-off rate, matching the paper's reporting unit."""
        backoffs = self.mitigation_stats.get("backoffs", 0)
        if self.cycles == 0:
            return 0.0
        return backoffs * 1_000_000 / self.cycles
