"""System configuration.

:class:`SystemConfig` bundles every knob of the simulated system, defaulting
to the paper's configuration (Table 2):

* 4.2 GHz, 4-core, 4-wide issue, 128-entry instruction window;
* 8 MiB, 8-way shared LLC with 64 B lines;
* 64-entry read/write queues, FR-FCFS + Cap-4 scheduling, MOP mapping;
* single-channel DDR5, 2 ranks x 8 bank groups x 4 banks, 64 K rows per bank.

``appendix_e_system_config`` reproduces the configuration Appendix E uses to
compare against the real-hardware study of Kim et al.: an eight-core system
with a 4.5x larger LLC, which makes SPEC-2017-like workloads mostly cache
resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.dram.organization import DramOrganization, PAPER_ORGANIZATION


@dataclass(frozen=True)
class SystemConfig:
    """All configuration of one simulated system."""

    # --- processor --------------------------------------------------------
    num_cores: int = 4
    clock_ratio: float = 2.625
    issue_width: int = 4
    window_size: int = 128
    max_outstanding: int = 16

    # --- last-level cache --------------------------------------------------
    llc_size_bytes: int = 8 * 1024 * 1024
    llc_associativity: int = 8
    llc_line_size: int = 64
    llc_hit_latency: int = 16

    # --- memory controller -------------------------------------------------
    read_queue_size: int = 64
    write_queue_size: int = 64
    scheduler_cap: int = 4
    address_mapping: str = "MOP"

    # --- DRAM ---------------------------------------------------------------
    organization: DramOrganization = field(default_factory=lambda: PAPER_ORGANIZATION)

    # --- read-disturbance mitigation ----------------------------------------
    mechanism: str = "None"
    nrh: int = 1024
    blast_radius: int = 2

    #: Core indices that bypass the LLC (used for the §11 performance-attack
    #: study, where the malicious core flushes its own lines).
    attacker_cores: tuple = ()

    #: Use the pre-erratum PRAC timing parameters (Appendix E / Table 4):
    #: tRP and tRC grow but tRAS / tRTP / tWR are not reduced.
    legacy_prac_timings: bool = False

    # --- run control ---------------------------------------------------------
    seed: int = 0
    #: Hard limit on simulated DRAM cycles (safety net for runaway configs).
    max_cycles: int = 200_000_000

    @property
    def channels(self) -> int:
        """Number of independent memory channels of the simulated system.

        The knob lives on the DRAM organization (which the cache key already
        covers), so exposing it here adds no new config field and keeps every
        pre-existing single-channel cache key byte-identical.
        """
        return self.organization.channels

    def with_mechanism(self, mechanism: str, nrh: Optional[int] = None) -> "SystemConfig":
        """Return a copy configured for another mechanism / threshold."""
        return replace(self, mechanism=mechanism, nrh=self.nrh if nrh is None else nrh)

    def with_channels(self, channels: int) -> "SystemConfig":
        """Return a copy scaled to ``channels`` memory channels."""
        return replace(self, organization=self.organization.with_channels(channels))

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy with arbitrary fields replaced.

        ``channels`` is accepted as a virtual field and forwarded to
        :meth:`with_channels`, so sweep and CLI override paths can scale the
        channel count without knowing it lives on the organization.
        """
        channels = kwargs.pop("channels", None)
        config = replace(self, **kwargs) if kwargs else self
        if channels is not None:
            config = config.with_channels(channels)
        return config


def paper_system_config(mechanism: str = "None", nrh: int = 1024, **overrides) -> SystemConfig:
    """The main-evaluation system configuration (Table 2)."""
    return SystemConfig(mechanism=mechanism, nrh=nrh).with_overrides(**overrides)


def appendix_e_system_config(mechanism: str = "None", nrh: int = 1024, **overrides) -> SystemConfig:
    """The Appendix E configuration: 8 cores and a 4.5x larger LLC."""
    config = SystemConfig(
        mechanism=mechanism,
        nrh=nrh,
        num_cores=8,
        llc_size_bytes=36 * 1024 * 1024,
        address_mapping="MOP",
    )
    return config.with_overrides(**overrides)
