"""Full-system simulation: configuration, the simulator and metrics."""

from repro.system.config import SystemConfig, paper_system_config, appendix_e_system_config
from repro.system.metrics import (
    SimulationResult,
    weighted_speedup,
    normalized_weighted_speedup,
    max_slowdown,
)
from repro.system.simulator import SystemSimulator, simulate

__all__ = [
    "SystemConfig",
    "paper_system_config",
    "appendix_e_system_config",
    "SimulationResult",
    "weighted_speedup",
    "normalized_weighted_speedup",
    "max_slowdown",
    "SystemSimulator",
    "simulate",
]
