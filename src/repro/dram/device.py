"""DRAM device model.

:class:`DramDevice` aggregates the per-bank state machines, enforces the
rank-level activation constraints (tRRD, tFAW), counts commands for the
energy model, and hosts an optional *on-DRAM-die* mitigation mechanism
(PRAC or Chronus).  On-die mechanisms observe activations and precharges,
assert the ``alert_n`` back-off signal, and perform victim refreshes when the
memory controller grants them time with an RFM command.

The device exposes explicit, type-safe methods (``activate``, ``precharge``,
``read`` ...) rather than a single opaque command entry point; the memory
controller is responsible for consulting the ``can_*`` predicates before
issuing, and the device raises :class:`~repro.dram.bank.TimingViolation` if a
command is illegal, which the test-suite relies on.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.mitigation import OnDieMitigation
from repro.dram.bank import Bank, BankState, TimingViolation
from repro.dram.organization import DramOrganization
from repro.dram.timing import TimingParams


@dataclass(slots=True)
class RankState:
    """Rank-level activation window state (tRRD / tFAW)."""

    last_act_cycle: int = -(10**9)
    act_window: Deque[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.act_window is None:
            self.act_window = deque(maxlen=4)


class DramDevice:
    """A single-channel DRAM device (all ranks and banks of the channel)."""

    def __init__(
        self,
        organization: DramOrganization,
        timing: TimingParams,
        mitigation: Optional[OnDieMitigation] = None,
    ) -> None:
        if mitigation is not None and mitigation.side != "dram":
            raise ValueError(
                f"DramDevice only hosts on-die mechanisms, got {mitigation.name!r}"
            )
        self.organization = organization
        self.timing = timing
        self.mitigation = mitigation
        self.banks: List[Bank] = [
            Bank(bank_id, timing) for bank_id in range(organization.total_banks)
        ]
        self._ranks: Dict[int, RankState] = {
            rank: RankState() for rank in range(organization.ranks)
        }
        # Flat bank ids per rank, cached (the hot path asks every tick).
        # Tuples: the cache is handed out by banks_in_rank, so it must be
        # immutable -- a caller mutating it would corrupt the rank geometry.
        per_rank = organization.banks_per_rank
        self._rank_bank_ids: List[Tuple[int, ...]] = [
            tuple(range(rank * per_rank, (rank + 1) * per_rank))
            for rank in range(organization.ranks)
        ]
        #: Command counts, keyed by command mnemonic, for the energy model.
        self.command_counts: Counter = Counter()
        #: Victim rows refreshed internally by the on-die mechanism.
        self.internal_victim_rows = 0
        #: Cycle at which the back-off signal was last asserted (or None).
        self._backoff_observed_cycle: Optional[int] = None
        #: External ACT observers ``(bank_id, row, cycle)`` (e.g. the
        #: red-team disturbance oracle); independent of any mitigation.
        self._activation_listeners: List[Callable[[int, int, int], None]] = []
        # Flattened event fan-out: the mitigation hook and every listener in
        # one pre-bound list, so ``activate``/``precharge`` run a single
        # truthiness check plus direct calls instead of re-testing the
        # registry shape on every command.
        self._act_hooks: List[Callable[[int, int, int], None]] = []
        self._pre_hooks: List[Callable[[int, int, int], None]] = []
        self._rebuild_hooks()

    def _rebuild_hooks(self) -> None:
        """Re-flatten the ACT/PRE fan-out lists (mitigation first)."""
        act_hooks: List[Callable[[int, int, int], None]] = []
        pre_hooks: List[Callable[[int, int, int], None]] = []
        if self.mitigation is not None:
            act_hooks.append(self.mitigation.on_activate)
            pre_hooks.append(self.mitigation.on_precharge)
        act_hooks.extend(self._activation_listeners)
        self._act_hooks = act_hooks
        self._pre_hooks = pre_hooks

    def add_activation_listener(
        self, listener: Callable[[int, int, int], None]
    ) -> None:
        """Subscribe to every ACT issued to this device."""
        self._activation_listeners.append(listener)
        self._rebuild_hooks()

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def rank_of_bank(self, bank_id: int) -> int:
        """Return the rank index that contains flat bank ``bank_id``."""
        return bank_id // self.organization.banks_per_rank

    def banks_in_rank(self, rank: int) -> Tuple[int, ...]:
        """The flat bank ids belonging to ``rank`` (shared cached tuple)."""
        return self._rank_bank_ids[rank]

    # ------------------------------------------------------------------ #
    # Rank-level activation constraints
    # ------------------------------------------------------------------ #
    def _rank_act_allowed(self, rank: int, cycle: int) -> bool:
        state = self._ranks[rank]
        if cycle < state.last_act_cycle + self.timing.tRRD:
            return False
        if len(state.act_window) == state.act_window.maxlen:
            oldest = state.act_window[0]
            if cycle < oldest + self.timing.tFAW:
                return False
        return True

    def _record_rank_act(self, rank: int, cycle: int) -> None:
        state = self._ranks[rank]
        state.last_act_cycle = cycle
        state.act_window.append(cycle)

    def rank_act_ready_cycle(self, rank: int) -> int:
        """Earliest cycle at which the rank-level constraints allow an ACT.

        Used by the event-horizon wake hints: an ACT to a bank may be legal
        at ``max(bank.ready_cycle_for_activate(), rank_act_ready_cycle(rank))``
        at the earliest, so time skips never jump past a tRRD/tFAW release.
        """
        state = self._ranks[rank]
        ready = state.last_act_cycle + self.timing.tRRD
        window = state.act_window
        if len(window) == window.maxlen:
            faw_ready = window[0] + self.timing.tFAW
            if faw_ready > ready:
                ready = faw_ready
        return ready

    # ------------------------------------------------------------------ #
    # Command legality
    # ------------------------------------------------------------------ #
    def can_activate(self, bank_id: int, cycle: int) -> bool:
        bank = self.banks[bank_id]
        rank = self.rank_of_bank(bank_id)
        return bank.can_activate(cycle) and self._rank_act_allowed(rank, cycle)

    def can_precharge(self, bank_id: int, cycle: int) -> bool:
        return self.banks[bank_id].can_precharge(cycle)

    def can_read(self, bank_id: int, cycle: int) -> bool:
        return self.banks[bank_id].can_read(cycle)

    def can_write(self, bank_id: int, cycle: int) -> bool:
        return self.banks[bank_id].can_write(cycle)

    def can_refresh(self, rank: int, cycle: int) -> bool:
        """True if every bank in ``rank`` is precharged and ACT-ready."""
        banks = self.banks
        # Direct state/ready access: this predicate runs every controller
        # tick while a refresh is owed, so the per-bank method calls of the
        # naive formulation dominate idle-loop time.
        for bank_id in self._rank_bank_ids[rank]:
            bank = banks[bank_id]
            if bank.state is not BankState.IDLE or cycle < bank._next_act:
                return False
        return True

    def can_rfm(self, bank_ids: Sequence[int], cycle: int) -> bool:
        """True if all target banks are precharged and ready for maintenance."""
        banks = self.banks
        for bank_id in bank_ids:
            bank = banks[bank_id]
            if bank.state is not BankState.IDLE or cycle < bank._next_act:
                return False
        return True

    def can_victim_refresh(self, bank_id: int, cycle: int) -> bool:
        bank = self.banks[bank_id]
        return bank.state is BankState.IDLE and bank.can_activate(cycle)

    # ------------------------------------------------------------------ #
    # Command issue
    # ------------------------------------------------------------------ #
    def activate(self, bank_id: int, row: int, cycle: int) -> None:
        """Issue an ACT to ``bank_id`` opening ``row``."""
        rank = self.rank_of_bank(bank_id)
        if not self._rank_act_allowed(rank, cycle):
            raise TimingViolation(
                f"rank {rank}: ACT at cycle {cycle} violates tRRD/tFAW"
            )
        self.banks[bank_id].activate(row, cycle)
        self._record_rank_act(rank, cycle)
        self.command_counts["ACT"] += 1
        if self._act_hooks:
            for hook in self._act_hooks:
                hook(bank_id, row, cycle)

    def precharge(self, bank_id: int, cycle: int) -> int:
        """Issue a PRE to ``bank_id``.  Returns the closed row."""
        closed_row = self.banks[bank_id].precharge(cycle)
        self.command_counts["PRE"] += 1
        if self._pre_hooks:
            for hook in self._pre_hooks:
                hook(bank_id, closed_row, cycle)
        return closed_row

    def read(self, bank_id: int, cycle: int) -> int:
        """Issue a RD; return the data-ready cycle."""
        ready = self.banks[bank_id].read(cycle)
        self.command_counts["RD"] += 1
        return ready

    def write(self, bank_id: int, cycle: int) -> int:
        """Issue a WR; return the completion cycle."""
        done = self.banks[bank_id].write(cycle)
        self.command_counts["WR"] += 1
        return done

    def refresh(self, rank: int, cycle: int) -> None:
        """Issue an all-bank periodic REF to ``rank``."""
        bank_ids = self.banks_in_rank(rank)
        if not self.can_refresh(rank, cycle):
            raise TimingViolation(f"rank {rank}: REF at cycle {cycle} illegal")
        for bank_id in bank_ids:
            self.banks[bank_id].block(cycle, self.timing.tRFC)
        self.command_counts["REF"] += 1
        if self.mitigation is not None:
            self.mitigation.on_periodic_refresh(bank_ids, cycle)

    def rfm(self, bank_ids: Sequence[int], cycle: int) -> int:
        """Issue an RFM covering ``bank_ids``.

        The on-die mechanism (if any) performs its victim refreshes within
        the tRFM window.  Returns the number of victim rows refreshed.
        """
        if not self.can_rfm(bank_ids, cycle):
            raise TimingViolation(f"RFM at cycle {cycle} illegal for banks {bank_ids}")
        for bank_id in bank_ids:
            self.banks[bank_id].block(cycle, self.timing.tRFM)
        self.command_counts["RFM"] += 1
        refreshed = 0
        if self.mitigation is not None:
            refreshed = self.mitigation.on_rfm(bank_ids, cycle)
            self.internal_victim_rows += refreshed
        return refreshed

    def victim_refresh(self, bank_id: int, num_rows: int, cycle: int) -> int:
        """Serve a controller-side victim-row refresh (VRR).

        Returns the cycle at which the bank becomes available again.
        """
        done = self.banks[bank_id].victim_refresh(cycle, rows=num_rows)
        self.command_counts["VRR"] += num_rows
        return done

    # ------------------------------------------------------------------ #
    # Back-off (alert_n) signalling
    # ------------------------------------------------------------------ #
    def backoff_asserted(self) -> bool:
        """State of the alert_n pin (True = back-off requested)."""
        return self.mitigation is not None and self.mitigation.backoff_asserted()

    def wants_more_rfm(self) -> bool:
        """True while the on-die mechanism requests further RFM commands."""
        return self.mitigation is not None and self.mitigation.wants_more_rfm()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def open_row(self, bank_id: int) -> Optional[int]:
        """Currently open row of ``bank_id`` (or None)."""
        return self.banks[bank_id].open_row

    def total_activations(self) -> int:
        """Total ACT commands issued to the device."""
        return self.command_counts["ACT"]

    def command_count(self, mnemonic: str) -> int:
        """Command count for the given mnemonic (``"ACT"``, ``"RD"``, ...)."""
        return self.command_counts[mnemonic]
