"""DRAM device model.

:class:`DramDevice` aggregates the per-bank state machines, enforces the
rank-level activation constraints (tRRD, tFAW), counts commands for the
energy model, and hosts an optional *on-DRAM-die* mitigation mechanism
(PRAC or Chronus).  On-die mechanisms observe activations and precharges,
assert the ``alert_n`` back-off signal, and perform victim refreshes when the
memory controller grants them time with an RFM command.

The device exposes explicit, type-safe methods (``activate``, ``precharge``,
``read`` ...) rather than a single opaque command entry point; the memory
controller is responsible for consulting the ``can_*`` predicates before
issuing, and the device raises :class:`~repro.dram.bank.TimingViolation` if a
command is illegal, which the test-suite relies on.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mitigation import OnDieMitigation
from repro.dram.bank import Bank, BankState, TimingViolation
from repro.dram.organization import DramOrganization
from repro.dram.timing import TimingParams
from repro.dram.timing_plane import BankArrayTiming, resolve_bank_backend


@dataclass(slots=True)
class RankState:
    """Rank-level activation window state (tRRD / tFAW)."""

    last_act_cycle: int = -(10**9)
    act_window: Deque[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.act_window is None:
            self.act_window = deque(maxlen=4)


class DramDevice:
    """A single-channel DRAM device (all ranks and banks of the channel)."""

    def __init__(
        self,
        organization: DramOrganization,
        timing: TimingParams,
        mitigation: Optional[OnDieMitigation] = None,
        bank_backend: Optional[str] = None,
        timing_plane: Optional[BankArrayTiming] = None,
    ) -> None:
        if mitigation is not None and mitigation.side != "dram":
            raise ValueError(
                f"DramDevice only hosts on-die mechanisms, got {mitigation.name!r}"
            )
        self.organization = organization
        self.timing = timing
        self.mitigation = mitigation
        # Bank timing backend (see dram/timing_plane.py).  Passing a
        # pre-allocated plane (the batch engine pools them like counter
        # buffers) implies the array backend; the plane is reset here so a
        # pooled buffer's history can never leak into a new device.
        if timing_plane is not None:
            if timing_plane.num_banks != organization.total_banks:
                raise ValueError(
                    f"timing plane has {timing_plane.num_banks} banks, "
                    f"organization needs {organization.total_banks}"
                )
            timing_plane.reset()
            self.bank_backend = "array"
        else:
            self.bank_backend = resolve_bank_backend(bank_backend)
            if self.bank_backend == "array":
                timing_plane = BankArrayTiming(organization.total_banks)
        #: The structure-of-arrays timing registers (None = object backend).
        #: The controller's vectorized kernels key off this attribute.
        self.timing_plane = timing_plane
        if timing_plane is not None:
            self.banks: List[Bank] = [
                Bank(bank_id, timing, plane=timing_plane, index=bank_id)
                for bank_id in range(organization.total_banks)
            ]
        else:
            self.banks = [
                Bank(bank_id, timing, backend="object")
                for bank_id in range(organization.total_banks)
            ]
        self._ranks: Dict[int, RankState] = {
            rank: RankState() for rank in range(organization.ranks)
        }
        # Flat bank ids per rank, cached (the hot path asks every tick).
        # Tuples: the cache is handed out by banks_in_rank, so it must be
        # immutable -- a caller mutating it would corrupt the rank geometry.
        per_rank = organization.banks_per_rank
        self._rank_bank_ids: List[Tuple[int, ...]] = [
            tuple(range(rank * per_rank, (rank + 1) * per_rank))
            for rank in range(organization.ranks)
        ]
        # Per-rank contiguous slices into the plane arrays (flat bank ids of
        # a rank are consecutive), for the vectorized REF/RFM predicates.
        self._rank_slices: List[slice] = [
            slice(rank * per_rank, (rank + 1) * per_rank)
            for rank in range(organization.ranks)
        ]
        #: Command counts, keyed by command mnemonic, for the energy model.
        self.command_counts: Counter = Counter()
        #: Victim rows refreshed internally by the on-die mechanism.
        self.internal_victim_rows = 0
        #: Cycle at which the back-off signal was last asserted (or None).
        self._backoff_observed_cycle: Optional[int] = None
        #: External ACT observers ``(bank_id, row, cycle)`` (e.g. the
        #: red-team disturbance oracle); independent of any mitigation.
        self._activation_listeners: List[Callable[[int, int, int], None]] = []
        # Flattened event fan-out: the mitigation hook and every listener in
        # one pre-bound list, so ``activate``/``precharge`` run a single
        # truthiness check plus direct calls instead of re-testing the
        # registry shape on every command.
        self._act_hooks: List[Callable[[int, int, int], None]] = []
        self._pre_hooks: List[Callable[[int, int, int], None]] = []
        self._rebuild_hooks()

    def _rebuild_hooks(self) -> None:
        """Re-flatten the ACT/PRE fan-out lists (mitigation first)."""
        act_hooks: List[Callable[[int, int, int], None]] = []
        pre_hooks: List[Callable[[int, int, int], None]] = []
        if self.mitigation is not None:
            act_hooks.append(self.mitigation.on_activate)
            pre_hooks.append(self.mitigation.on_precharge)
        act_hooks.extend(self._activation_listeners)
        self._act_hooks = act_hooks
        self._pre_hooks = pre_hooks

    def add_activation_listener(
        self, listener: Callable[[int, int, int], None]
    ) -> None:
        """Subscribe to every ACT issued to this device."""
        self._activation_listeners.append(listener)
        self._rebuild_hooks()

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def rank_of_bank(self, bank_id: int) -> int:
        """Return the rank index that contains flat bank ``bank_id``."""
        return bank_id // self.organization.banks_per_rank

    def banks_in_rank(self, rank: int) -> Tuple[int, ...]:
        """The flat bank ids belonging to ``rank`` (shared cached tuple)."""
        return self._rank_bank_ids[rank]

    # ------------------------------------------------------------------ #
    # Rank-level activation constraints
    # ------------------------------------------------------------------ #
    def _rank_act_allowed(self, rank: int, cycle: int) -> bool:
        state = self._ranks[rank]
        if cycle < state.last_act_cycle + self.timing.tRRD:
            return False
        if len(state.act_window) == state.act_window.maxlen:
            oldest = state.act_window[0]
            if cycle < oldest + self.timing.tFAW:
                return False
        return True

    def _record_rank_act(self, rank: int, cycle: int) -> None:
        state = self._ranks[rank]
        state.last_act_cycle = cycle
        state.act_window.append(cycle)

    def rank_act_ready_cycle(self, rank: int) -> int:
        """Earliest cycle at which the rank-level constraints allow an ACT.

        Used by the event-horizon wake hints: an ACT to a bank may be legal
        at ``max(bank.ready_cycle_for_activate(), rank_act_ready_cycle(rank))``
        at the earliest, so time skips never jump past a tRRD/tFAW release.
        """
        state = self._ranks[rank]
        ready = state.last_act_cycle + self.timing.tRRD
        window = state.act_window
        if len(window) == window.maxlen:
            faw_ready = window[0] + self.timing.tFAW
            if faw_ready > ready:
                ready = faw_ready
        return ready

    # ------------------------------------------------------------------ #
    # Command legality
    # ------------------------------------------------------------------ #
    def can_activate(self, bank_id: int, cycle: int) -> bool:
        bank = self.banks[bank_id]
        rank = self.rank_of_bank(bank_id)
        return bank.can_activate(cycle) and self._rank_act_allowed(rank, cycle)

    def can_precharge(self, bank_id: int, cycle: int) -> bool:
        return self.banks[bank_id].can_precharge(cycle)

    def can_read(self, bank_id: int, cycle: int) -> bool:
        return self.banks[bank_id].can_read(cycle)

    def can_write(self, bank_id: int, cycle: int) -> bool:
        return self.banks[bank_id].can_write(cycle)

    def can_refresh(self, rank: int, cycle: int) -> bool:
        """True if every bank in ``rank`` is precharged and ACT-ready."""
        plane = self.timing_plane
        if plane is not None:
            # Early-exit scalar walk over the plane slots: the predicate
            # almost always fails on the first open or busy bank, which an
            # ndarray reduction cannot short-circuit on.
            open_row = plane.open_row_mv
            next_act = plane.next_act_mv
            for bank_id in self._rank_bank_ids[rank]:
                if open_row[bank_id] >= 0 or cycle < next_act[bank_id]:
                    return False
            return True
        banks = self.banks
        # Direct state/ready access: this predicate runs every controller
        # tick while a refresh is owed, so the per-bank method calls of the
        # naive formulation dominate idle-loop time.
        for bank_id in self._rank_bank_ids[rank]:
            bank = banks[bank_id]
            if bank.state is not BankState.IDLE or cycle < bank._next_act:
                return False
        return True

    def can_rfm(self, bank_ids: Sequence[int], cycle: int) -> bool:
        """True if all target banks are precharged and ready for maintenance."""
        plane = self.timing_plane
        if plane is not None:
            if len(bank_ids) == plane.num_banks:
                # All-bank RFM (back-off recovery): whole-plane reductions.
                return bool(
                    plane.open_row.max() < 0 and plane.next_act.max() <= cycle
                )
            open_row = plane.open_row_mv
            next_act = plane.next_act_mv
            for bank_id in bank_ids:
                if open_row[bank_id] >= 0 or cycle < next_act[bank_id]:
                    return False
            return True
        banks = self.banks
        for bank_id in bank_ids:
            bank = banks[bank_id]
            if bank.state is not BankState.IDLE or cycle < bank._next_act:
                return False
        return True

    def can_victim_refresh(self, bank_id: int, cycle: int) -> bool:
        bank = self.banks[bank_id]
        return bank.state is BankState.IDLE and bank.can_activate(cycle)

    # ------------------------------------------------------------------ #
    # Command issue
    # ------------------------------------------------------------------ #
    def activate(self, bank_id: int, row: int, cycle: int) -> None:
        """Issue an ACT to ``bank_id`` opening ``row``."""
        rank = self.rank_of_bank(bank_id)
        if not self._rank_act_allowed(rank, cycle):
            raise TimingViolation(
                f"rank {rank}: ACT at cycle {cycle} violates tRRD/tFAW"
            )
        self.banks[bank_id].activate(row, cycle)
        self._record_rank_act(rank, cycle)
        self.command_counts["ACT"] += 1
        if self._act_hooks:
            for hook in self._act_hooks:
                hook(bank_id, row, cycle)

    def precharge(self, bank_id: int, cycle: int) -> int:
        """Issue a PRE to ``bank_id``.  Returns the closed row."""
        closed_row = self.banks[bank_id].precharge(cycle)
        self.command_counts["PRE"] += 1
        if self._pre_hooks:
            for hook in self._pre_hooks:
                hook(bank_id, closed_row, cycle)
        return closed_row

    def read(self, bank_id: int, cycle: int) -> int:
        """Issue a RD; return the data-ready cycle."""
        ready = self.banks[bank_id].read(cycle)
        self.command_counts["RD"] += 1
        return ready

    def write(self, bank_id: int, cycle: int) -> int:
        """Issue a WR; return the completion cycle."""
        done = self.banks[bank_id].write(cycle)
        self.command_counts["WR"] += 1
        return done

    def refresh(self, rank: int, cycle: int) -> None:
        """Issue an all-bank periodic REF to ``rank``."""
        bank_ids = self.banks_in_rank(rank)
        if not self.can_refresh(rank, cycle):
            raise TimingViolation(f"rank {rank}: REF at cycle {cycle} illegal")
        plane = self.timing_plane
        if plane is not None:
            # can_refresh above proved every bank idle: the per-bank block()
            # calls collapse to one vectorized max over the rank slice.
            target = plane.next_act[self._rank_slices[rank]]
            np.maximum(target, cycle + self.timing.tRFC, out=target)
        else:
            for bank_id in bank_ids:
                self.banks[bank_id].block(cycle, self.timing.tRFC)
        self.command_counts["REF"] += 1
        if self.mitigation is not None:
            self.mitigation.on_periodic_refresh(bank_ids, cycle)

    def rfm(self, bank_ids: Sequence[int], cycle: int) -> int:
        """Issue an RFM covering ``bank_ids``.

        The on-die mechanism (if any) performs its victim refreshes within
        the tRFM window.  Returns the number of victim rows refreshed.
        """
        if not self.can_rfm(bank_ids, cycle):
            raise TimingViolation(f"RFM at cycle {cycle} illegal for banks {bank_ids}")
        plane = self.timing_plane
        if plane is not None and len(bank_ids) == plane.num_banks:
            # All-bank RFM, all banks proven idle: one vectorized max.
            np.maximum(plane.next_act, cycle + self.timing.tRFM, out=plane.next_act)
        else:
            for bank_id in bank_ids:
                self.banks[bank_id].block(cycle, self.timing.tRFM)
        self.command_counts["RFM"] += 1
        refreshed = 0
        if self.mitigation is not None:
            refreshed = self.mitigation.on_rfm(bank_ids, cycle)
            self.internal_victim_rows += refreshed
        return refreshed

    def victim_refresh(self, bank_id: int, num_rows: int, cycle: int) -> int:
        """Serve a controller-side victim-row refresh (VRR).

        Returns the cycle at which the bank becomes available again.
        """
        done = self.banks[bank_id].victim_refresh(cycle, rows=num_rows)
        self.command_counts["VRR"] += num_rows
        return done

    # ------------------------------------------------------------------ #
    # Back-off (alert_n) signalling
    # ------------------------------------------------------------------ #
    def backoff_asserted(self) -> bool:
        """State of the alert_n pin (True = back-off requested)."""
        return self.mitigation is not None and self.mitigation.backoff_asserted()

    def wants_more_rfm(self) -> bool:
        """True while the on-die mechanism requests further RFM commands."""
        return self.mitigation is not None and self.mitigation.wants_more_rfm()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def open_row(self, bank_id: int) -> Optional[int]:
        """Currently open row of ``bank_id`` (or None)."""
        return self.banks[bank_id].open_row

    def total_activations(self) -> int:
        """Total ACT commands issued to the device."""
        return self.command_counts["ACT"]

    def command_count(self, mnemonic: str) -> int:
        """Command count for the given mnemonic (``"ACT"``, ``"RD"``, ...)."""
        return self.command_counts[mnemonic]
