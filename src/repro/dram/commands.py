"""DRAM command definitions.

The memory controller drives the DRAM device with a small vocabulary of
commands.  This module defines that vocabulary and a light-weight command
record used throughout the simulator.

The command set follows the DDR5 specification subset used by the Chronus
paper:

* ``ACT``   -- activate (open) a row, loading it into the row buffer.
* ``PRE``   -- precharge (close) the open row of a bank.
* ``PREA``  -- precharge all banks of a rank.
* ``RD``    -- read a column of the open row.
* ``WR``    -- write a column of the open row.
* ``REF``   -- periodic all-bank refresh.
* ``RFM``   -- refresh management: a time window granted to the DRAM chip to
  perform RowHammer-preventive refreshes (JESD79-5c).
* ``VRR``   -- victim-row refresh.  This is not an external DDR5 command; it
  models a memory-controller-side mechanism (e.g. Graphene, PARA, Hydra)
  refreshing a victim row by activating and precharging it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandKind(enum.Enum):
    """External and internal DRAM commands modelled by the simulator."""

    ACT = "ACT"
    PRE = "PRE"
    PREA = "PREA"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    RFM = "RFM"
    VRR = "VRR"

    @property
    def is_column(self) -> bool:
        """Return True for column commands (``RD``/``WR``)."""
        return self in (CommandKind.RD, CommandKind.WR)

    @property
    def is_row(self) -> bool:
        """Return True for row commands (``ACT``/``PRE``/``PREA``)."""
        return self in (CommandKind.ACT, CommandKind.PRE, CommandKind.PREA)

    @property
    def is_refresh(self) -> bool:
        """Return True for refresh-class commands (``REF``/``RFM``/``VRR``)."""
        return self in (CommandKind.REF, CommandKind.RFM, CommandKind.VRR)


@dataclass(frozen=True)
class Command:
    """A single DRAM command instance.

    Attributes:
        kind: the command kind.
        bank_id: flat bank index the command targets (``None`` for rank-level
            commands such as ``REF`` or all-bank ``RFM``).
        row: row address for ``ACT``/``VRR`` commands, otherwise ``None``.
        column: column address for ``RD``/``WR`` commands, otherwise ``None``.
        cycle: DRAM clock cycle at which the command is issued.
    """

    kind: CommandKind
    bank_id: Optional[int] = None
    row: Optional[int] = None
    column: Optional[int] = None
    cycle: int = 0

    def __str__(self) -> str:  # pragma: no cover - convenience only
        parts = [self.kind.value]
        if self.bank_id is not None:
            parts.append(f"b{self.bank_id}")
        if self.row is not None:
            parts.append(f"r{self.row}")
        if self.column is not None:
            parts.append(f"c{self.column}")
        parts.append(f"@{self.cycle}")
        return " ".join(parts)


#: Commands that open a row in the row buffer.
OPENING_COMMANDS = frozenset({CommandKind.ACT})

#: Commands that close the row buffer.
CLOSING_COMMANDS = frozenset({CommandKind.PRE, CommandKind.PREA})
