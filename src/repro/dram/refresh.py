"""Periodic refresh scheduling.

The memory controller must issue a REF command to every rank once per
refresh interval (tREFI) so that all rows are refreshed within the refresh
window (tREFW).  DDR5 allows the controller to postpone a bounded number of
REF commands; the paper notes that up to four REFs may be postponed, which is
why its security analysis does not rely on periodic refreshes.

:class:`RefreshScheduler` tracks, per rank, when the next REF is due and how
many REFs are pending (postponed).  Accrual is lazy and hint-driven: ``tick``
is O(1) unless a tREFI boundary has actually been crossed, and
:meth:`next_due_cycle` exposes the earliest upcoming boundary so the
event-horizon simulator can wake exactly on it (a time skip must never jump
past a tREFI boundary, or REFs would silently be postponed beyond the DDR5
limit).  The memory controller consults the scheduler every tick and issues
REF commands opportunistically, prioritising them once the postpone budget is
exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dram.timing import TimingParams

#: Sentinel "no event" value (matches the simulator's FAR_FUTURE).
_FAR_FUTURE = 1 << 62


@dataclass(slots=True)
class RankRefreshState:
    """Book-keeping for one rank."""

    next_due_cycle: int = 0
    pending: int = 0
    issued: int = 0


class RefreshScheduler:
    """Tracks periodic refresh obligations for every rank."""

    #: Maximum number of REF commands that may be postponed (DDR5 allows 4).
    MAX_POSTPONED = 4

    def __init__(self, num_ranks: int, timing: TimingParams) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.timing = timing
        self.num_ranks = num_ranks
        self._ranks: Dict[int, RankRefreshState] = {
            rank: RankRefreshState(next_due_cycle=timing.tREFI) for rank in range(num_ranks)
        }
        self._states = list(self._ranks.values())
        #: Earliest next_due_cycle across ranks; tick is a no-op before it.
        self._next_accrual = timing.tREFI
        #: Cached ranks-with-pending tuple (None = needs rebuild).
        self._pending_ranks: Tuple[int, ...] = ()
        #: Cached exhausted-postpone-budget tuple (None = needs rebuild).
        self._urgent_ranks: Tuple[int, ...] = ()

    def tick(self, cycle: int) -> None:
        """Accrue newly due refreshes up to ``cycle`` (O(1) off-boundary)."""
        if cycle < self._next_accrual:
            return
        tREFI = self.timing.tREFI
        next_accrual = _FAR_FUTURE
        for state in self._states:
            due = state.next_due_cycle
            if cycle >= due:
                # How many whole tREFI boundaries did we cross?
                newly_due = (cycle - due) // tREFI + 1
                state.pending += newly_due
                due += newly_due * tREFI
                state.next_due_cycle = due
            if due < next_accrual:
                next_accrual = due
        self._next_accrual = next_accrual
        self._pending_ranks = None  # type: ignore[assignment]
        self._urgent_ranks = None  # type: ignore[assignment]

    def next_due_cycle(self) -> int:
        """Earliest upcoming tREFI boundary across all ranks.

        The event-horizon simulator includes this in every wake hint so a
        time skip can never jump past a refresh deadline.
        """
        return self._next_accrual

    def pending_refreshes(self, rank: int) -> int:
        """Number of REF commands currently owed to ``rank``."""
        return self._ranks[rank].pending

    def refresh_urgent(self, rank: int) -> bool:
        """True if the rank has exhausted its postpone budget."""
        return self._ranks[rank].pending >= self.MAX_POSTPONED

    def refresh_needed(self, rank: int) -> bool:
        """True if at least one REF is owed to ``rank``."""
        return self._ranks[rank].pending > 0

    def ranks_needing_refresh(self) -> Tuple[int, ...]:
        """Ranks that currently owe at least one REF (cached tuple).

        The tuple is rebuilt only when accrual or issue changes the pending
        set; callers must not mutate it (it is shared across calls).
        """
        if self._pending_ranks is None:
            self._pending_ranks = tuple(
                rank for rank, state in self._ranks.items() if state.pending > 0
            )
        return self._pending_ranks

    def urgent_ranks(self) -> Tuple[int, ...]:
        """Ranks whose postpone budget is exhausted (cached tuple).

        The urgent set only changes on accrual (``tick``) or issue
        (``refresh_issued``), so the array-backend controller kernels can
        probe it as a shared tuple -- almost always empty -- instead of
        re-deriving per-rank pending counts on every ACT-candidate serve.
        Callers must not mutate the returned tuple.
        """
        if self._urgent_ranks is None:
            self._urgent_ranks = tuple(
                rank
                for rank, state in self._ranks.items()
                if state.pending >= self.MAX_POSTPONED
            )
        return self._urgent_ranks

    def refresh_issued(self, rank: int) -> None:
        """Record that a REF command was issued to ``rank``."""
        state = self._ranks[rank]
        if state.pending <= 0:
            raise RuntimeError(f"rank {rank} has no pending refresh to issue")
        state.pending -= 1
        state.issued += 1
        # Issuing can drop the rank below MAX_POSTPONED (and to zero), so
        # both cached tuples may be stale now.
        self._urgent_ranks = None  # type: ignore[assignment]
        if state.pending == 0:
            self._pending_ranks = None  # type: ignore[assignment]

    def total_issued(self) -> int:
        """Total REF commands issued across all ranks."""
        return sum(state.issued for state in self._ranks.values())
