"""Periodic refresh scheduling.

The memory controller must issue a REF command to every rank once per
refresh interval (tREFI) so that all rows are refreshed within the refresh
window (tREFW).  DDR5 allows the controller to postpone a bounded number of
REF commands; the paper notes that up to four REFs may be postponed, which is
why its security analysis does not rely on periodic refreshes.

:class:`RefreshScheduler` tracks, per rank, when the next REF is due and how
many REFs are pending (postponed).  The memory controller consults it every
cycle and issues REF commands opportunistically, prioritising them once the
postpone budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dram.timing import TimingParams


@dataclass
class RankRefreshState:
    """Book-keeping for one rank."""

    next_due_cycle: int = 0
    pending: int = 0
    issued: int = 0


class RefreshScheduler:
    """Tracks periodic refresh obligations for every rank."""

    #: Maximum number of REF commands that may be postponed (DDR5 allows 4).
    MAX_POSTPONED = 4

    def __init__(self, num_ranks: int, timing: TimingParams) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.timing = timing
        self.num_ranks = num_ranks
        self._ranks: Dict[int, RankRefreshState] = {
            rank: RankRefreshState(next_due_cycle=timing.tREFI) for rank in range(num_ranks)
        }

    def tick(self, cycle: int) -> None:
        """Accrue newly due refreshes up to ``cycle``."""
        for state in self._ranks.values():
            while cycle >= state.next_due_cycle:
                state.pending += 1
                state.next_due_cycle += self.timing.tREFI

    def pending_refreshes(self, rank: int) -> int:
        """Number of REF commands currently owed to ``rank``."""
        return self._ranks[rank].pending

    def refresh_urgent(self, rank: int) -> bool:
        """True if the rank has exhausted its postpone budget."""
        return self._ranks[rank].pending >= self.MAX_POSTPONED

    def refresh_needed(self, rank: int) -> bool:
        """True if at least one REF is owed to ``rank``."""
        return self._ranks[rank].pending > 0

    def ranks_needing_refresh(self) -> List[int]:
        """Ranks that currently owe at least one REF."""
        return [rank for rank, state in self._ranks.items() if state.pending > 0]

    def refresh_issued(self, rank: int) -> None:
        """Record that a REF command was issued to ``rank``."""
        state = self._ranks[rank]
        if state.pending <= 0:
            raise RuntimeError(f"rank {rank} has no pending refresh to issue")
        state.pending -= 1
        state.issued += 1

    def total_issued(self) -> int:
        """Total REF commands issued across all ranks."""
        return sum(state.issued for state in self._ranks.values())
