"""DRAM device substrate.

This package models a DDR5-like DRAM device at the granularity the Chronus
paper's evaluation requires: banks with open/closed rows, the timing
parameters that PRAC changes (Table 1 of the paper), periodic refresh,
refresh management (RFM) and the ``alert_n`` back-off signal used by
on-DRAM-die read-disturbance mitigation mechanisms.
"""

from repro.dram.commands import Command, CommandKind
from repro.dram.organization import DramAddress, DramOrganization
from repro.dram.timing import TimingParams, ddr5_3200an
from repro.dram.bank import Bank, BankState
from repro.dram.device import DramDevice

__all__ = [
    "Command",
    "CommandKind",
    "DramAddress",
    "DramOrganization",
    "TimingParams",
    "ddr5_3200an",
    "Bank",
    "BankState",
    "DramDevice",
]
