"""Per-bank state machine and timing enforcement.

Each DRAM bank is a small finite state machine: it is either *idle*
(precharged) or has one *open* row in its row buffer.  The bank records the
earliest cycle at which each class of command may legally be issued, derived
from the timing parameters in :mod:`repro.dram.timing`.

The bank intentionally refuses illegal commands by raising
:class:`TimingViolation`; the memory controller is expected to consult the
``can_*`` predicates before issuing.  This mirrors how cycle-accurate DRAM
simulators (e.g. Ramulator 2.0) separate scheduling from device legality
checks and lets the test-suite verify both layers independently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import TimingParams


class TimingViolation(RuntimeError):
    """Raised when a command is issued before the device allows it."""


class BankState(enum.Enum):
    """Row-buffer state of a bank."""

    IDLE = "idle"
    ACTIVE = "active"


@dataclass(slots=True)
class BankStats:
    """Per-bank command statistics (used by the energy model and tests)."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    victim_refreshes: int = 0

    def merge(self, other: "BankStats") -> None:
        """Accumulate another stats record into this one."""
        self.activations += other.activations
        self.precharges += other.precharges
        self.reads += other.reads
        self.writes += other.writes
        self.victim_refreshes += other.victim_refreshes


class Bank:
    """A single DRAM bank with open-row state and timing bookkeeping."""

    __slots__ = (
        "bank_id", "timing", "state", "open_row", "stats",
        "_next_act", "_next_pre", "_next_rd", "_next_wr", "last_act_cycle",
    )

    def __init__(self, bank_id: int, timing: TimingParams) -> None:
        self.bank_id = bank_id
        self.timing = timing
        self.state = BankState.IDLE
        self.open_row: Optional[int] = None
        self.stats = BankStats()

        # Earliest cycle each command class may be issued.  The
        # ``ready_cycle_for_*`` accessors are the public API; the memory
        # controller's wake-hint loop (controller.py:_next_event_hint) and
        # the device's ``can_refresh``/``can_rfm`` predicates read these
        # attributes directly -- they run on every idle tick, where accessor
        # call overhead dominates -- so treat the attribute names as part of
        # the hot-path contract.
        self._next_act = 0
        self._next_pre = 0
        self._next_rd = 0
        self._next_wr = 0

        #: Cycle at which the currently open row was activated (used by the
        #: RowPress-aware extensions and by tests).
        self.last_act_cycle: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Legality predicates
    # ------------------------------------------------------------------ #
    def can_activate(self, cycle: int) -> bool:
        """Return True if an ACT may be issued at ``cycle``."""
        return self.state is BankState.IDLE and cycle >= self._next_act

    def can_precharge(self, cycle: int) -> bool:
        """Return True if a PRE may be issued at ``cycle``."""
        return self.state is BankState.ACTIVE and cycle >= self._next_pre

    def can_read(self, cycle: int) -> bool:
        """Return True if a RD may be issued at ``cycle``."""
        return self.state is BankState.ACTIVE and cycle >= self._next_rd

    def can_write(self, cycle: int) -> bool:
        """Return True if a WR may be issued at ``cycle``."""
        return self.state is BankState.ACTIVE and cycle >= self._next_wr

    def ready_cycle_for_activate(self) -> int:
        """Earliest cycle at which an ACT could be legal (ignoring state)."""
        return self._next_act

    def ready_cycle_for_precharge(self) -> int:
        """Earliest cycle at which a PRE could be legal (ignoring state)."""
        return self._next_pre

    def ready_cycle_for_read(self) -> int:
        """Earliest cycle at which a RD could be legal (ignoring state)."""
        return self._next_rd

    def ready_cycle_for_write(self) -> int:
        """Earliest cycle at which a WR could be legal (ignoring state)."""
        return self._next_wr

    # ------------------------------------------------------------------ #
    # Command issue
    # ------------------------------------------------------------------ #
    def activate(self, row: int, cycle: int) -> None:
        """Open ``row`` in the row buffer."""
        if not self.can_activate(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: ACT at cycle {cycle} illegal "
                f"(state={self.state}, next_act={self._next_act})"
            )
        t = self.timing
        self.state = BankState.ACTIVE
        self.open_row = row
        self.last_act_cycle = cycle
        self.stats.activations += 1
        self._next_pre = max(self._next_pre, cycle + t.tRAS)
        self._next_rd = cycle + t.tRCD
        self._next_wr = cycle + t.tRCD
        self._next_act = max(self._next_act, cycle + t.tRC)

    def precharge(self, cycle: int) -> int:
        """Close the open row.  Returns the row that was closed."""
        if not self.can_precharge(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: PRE at cycle {cycle} illegal "
                f"(state={self.state}, next_pre={self._next_pre})"
            )
        t = self.timing
        closed_row = self.open_row
        assert closed_row is not None
        self.state = BankState.IDLE
        self.open_row = None
        self.stats.precharges += 1
        self._next_act = max(self._next_act, cycle + t.tRP)
        return closed_row

    def read(self, cycle: int) -> int:
        """Issue a RD; return the cycle at which data is available."""
        if not self.can_read(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: RD at cycle {cycle} illegal "
                f"(state={self.state}, next_rd={self._next_rd})"
            )
        t = self.timing
        self.stats.reads += 1
        self._next_rd = cycle + t.tCCD
        self._next_wr = cycle + t.tCCD
        self._next_pre = max(self._next_pre, cycle + t.tRTP)
        return cycle + t.tCL + t.tBL

    def write(self, cycle: int) -> int:
        """Issue a WR; return the cycle at which the write completes."""
        if not self.can_write(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: WR at cycle {cycle} illegal "
                f"(state={self.state}, next_wr={self._next_wr})"
            )
        t = self.timing
        self.stats.writes += 1
        self._next_rd = cycle + t.tCCD
        self._next_wr = cycle + t.tCCD
        completion = cycle + t.tCWL + t.tBL
        self._next_pre = max(self._next_pre, completion + t.tWR)
        return completion

    def block(self, cycle: int, duration: int) -> None:
        """Block the bank (REF / RFM / internal maintenance) for ``duration``.

        The bank must be precharged.  All commands to the bank are delayed
        until ``cycle + duration``.
        """
        if self.state is not BankState.IDLE:
            raise TimingViolation(
                f"bank {self.bank_id}: cannot block an open bank at cycle {cycle}"
            )
        self._next_act = max(self._next_act, cycle + duration)

    def victim_refresh(self, cycle: int, rows: int = 1) -> int:
        """Model a controller-side victim-row refresh (VRR).

        A victim-row refresh is an internal ACT+PRE of the victim row; the
        bank is blocked for ``rows * tRC`` cycles.  Returns the cycle at
        which the bank becomes available again.
        """
        if self.state is not BankState.IDLE:
            raise TimingViolation(
                f"bank {self.bank_id}: VRR requires a precharged bank at cycle {cycle}"
            )
        duration = rows * self.timing.tRC
        self.stats.victim_refreshes += rows
        self._next_act = max(self._next_act, cycle + duration)
        return cycle + duration

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def is_open(self, row: Optional[int] = None) -> bool:
        """Return True if the bank has an open row (optionally a given row)."""
        if self.state is not BankState.ACTIVE:
            return False
        return row is None or self.open_row == row

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Bank(id={self.bank_id}, state={self.state.value}, "
            f"open_row={self.open_row})"
        )
