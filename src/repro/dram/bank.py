"""Per-bank state machine and timing enforcement.

Each DRAM bank is a small finite state machine: it is either *idle*
(precharged) or has one *open* row in its row buffer.  The bank records the
earliest cycle at which each class of command may legally be issued, derived
from the timing parameters in :mod:`repro.dram.timing`.

The bank intentionally refuses illegal commands by raising
:class:`TimingViolation`; the memory controller is expected to consult the
``can_*`` predicates before issuing.  This mirrors how cycle-accurate DRAM
simulators (e.g. Ramulator 2.0) separate scheduling from device legality
checks and lets the test-suite verify both layers independently.

Backends
--------

:class:`Bank` comes in two interchangeable backends selected by the
``backend`` constructor argument (see
:func:`~repro.dram.timing_plane.resolve_bank_backend`):

* ``"object"`` -- the original layout: every register is a plain Python
  attribute on the bank (simple, the reference implementation the
  equivalence tests compare against), and
* ``"array"`` -- the default: the registers live in a shared
  :class:`~repro.dram.timing_plane.BankArrayTiming` structure-of-arrays
  plane owned by the device, and the bank is a thin *view* over one slot.
  The view preserves the full ``Bank`` API -- every ``can_*`` /
  ``ready_cycle_for_*`` caller keeps working, and the ``state`` /
  ``open_row`` / ``last_act_cycle`` / ``_next_*`` names resolve through
  properties -- while the controller's readiness scans fold over the plane
  arrays directly.

The two backends are *observably identical* -- same legality decisions, same
:class:`TimingViolation` messages, same stats -- which the differential tests
in ``tests/test_bank_backends.py`` pin, and which lets cached simulation
results stay byte-for-byte stable across backends.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.dram.timing import TimingParams
from repro.dram.timing_plane import (
    NO_ROW,
    BankArrayTiming,
    resolve_bank_backend,
)


class TimingViolation(RuntimeError):
    """Raised when a command is issued before the device allows it."""


class BankState(enum.Enum):
    """Row-buffer state of a bank."""

    IDLE = "idle"
    ACTIVE = "active"


@dataclass(slots=True)
class BankStats:
    """Per-bank command statistics (used by the energy model and tests)."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    victim_refreshes: int = 0

    def merge(self, other: "BankStats") -> None:
        """Accumulate another stats record into this one."""
        self.activations += other.activations
        self.precharges += other.precharges
        self.reads += other.reads
        self.writes += other.writes
        self.victim_refreshes += other.victim_refreshes


class Bank:
    """A single DRAM bank with open-row state and timing bookkeeping.

    Constructing this class returns the implementation selected by
    ``backend`` (both are subclasses, so ``isinstance(bank, Bank)`` holds
    either way).  A standalone array-backend bank allocates its own
    single-slot plane; the device passes a shared per-channel plane plus the
    bank's flat index instead.
    """

    __slots__ = ()

    #: Concrete backend name ("object" or "array"), set on the subclasses.
    backend = "abstract"

    def __new__(
        cls,
        bank_id: int,
        timing: TimingParams,
        backend: Optional[str] = None,
        *,
        plane: Optional[BankArrayTiming] = None,
        index: Optional[int] = None,
    ):
        if cls is Bank:
            if plane is not None:
                cls = _ArrayBank
            else:
                cls = (
                    _ArrayBank
                    if resolve_bank_backend(backend) == "array"
                    else _ObjectBank
                )
        return object.__new__(cls)

    # ------------------------------------------------------------------ #
    # Shared introspection helpers (attribute protocol: plain attributes
    # on the object backend, properties on the array views)
    # ------------------------------------------------------------------ #
    def ready_cycle_for_activate(self) -> int:
        """Earliest cycle at which an ACT could be legal (ignoring state)."""
        return self._next_act

    def ready_cycle_for_precharge(self) -> int:
        """Earliest cycle at which a PRE could be legal (ignoring state)."""
        return self._next_pre

    def ready_cycle_for_read(self) -> int:
        """Earliest cycle at which a RD could be legal (ignoring state)."""
        return self._next_rd

    def ready_cycle_for_write(self) -> int:
        """Earliest cycle at which a WR could be legal (ignoring state)."""
        return self._next_wr

    def is_open(self, row: Optional[int] = None) -> bool:
        """Return True if the bank has an open row (optionally a given row)."""
        open_row = self.open_row
        if open_row is None:
            return False
        return row is None or open_row == row

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Bank(id={self.bank_id}, state={self.state.value}, "
            f"open_row={self.open_row})"
        )


class _ObjectBank(Bank):
    """The original attribute-per-register bank (reference backend)."""

    __slots__ = (
        "bank_id", "timing", "state", "open_row", "stats",
        "_next_act", "_next_pre", "_next_rd", "_next_wr", "last_act_cycle",
    )

    backend = "object"

    def __init__(
        self,
        bank_id: int,
        timing: TimingParams,
        backend: Optional[str] = None,
        *,
        plane: Optional[BankArrayTiming] = None,
        index: Optional[int] = None,
    ) -> None:
        self.bank_id = bank_id
        self.timing = timing
        self.state = BankState.IDLE
        self.open_row: Optional[int] = None
        self.stats = BankStats()

        # Earliest cycle each command class may be issued.  The
        # ``ready_cycle_for_*`` accessors are the public API; the memory
        # controller's wake-hint loop (controller.py:_next_event_hint) and
        # the device's ``can_refresh``/``can_rfm`` predicates read these
        # attributes directly -- they run on every idle tick, where accessor
        # call overhead dominates -- so treat the attribute names as part of
        # the hot-path contract.
        self._next_act = 0
        self._next_pre = 0
        self._next_rd = 0
        self._next_wr = 0

        #: Cycle at which the currently open row was activated (used by the
        #: RowPress-aware extensions and by tests).
        self.last_act_cycle: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Legality predicates
    # ------------------------------------------------------------------ #
    def can_activate(self, cycle: int) -> bool:
        """Return True if an ACT may be issued at ``cycle``."""
        return self.state is BankState.IDLE and cycle >= self._next_act

    def can_precharge(self, cycle: int) -> bool:
        """Return True if a PRE may be issued at ``cycle``."""
        return self.state is BankState.ACTIVE and cycle >= self._next_pre

    def can_read(self, cycle: int) -> bool:
        """Return True if a RD may be issued at ``cycle``."""
        return self.state is BankState.ACTIVE and cycle >= self._next_rd

    def can_write(self, cycle: int) -> bool:
        """Return True if a WR may be issued at ``cycle``."""
        return self.state is BankState.ACTIVE and cycle >= self._next_wr

    # ------------------------------------------------------------------ #
    # Command issue
    # ------------------------------------------------------------------ #
    def activate(self, row: int, cycle: int) -> None:
        """Open ``row`` in the row buffer."""
        if not self.can_activate(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: ACT at cycle {cycle} illegal "
                f"(state={self.state}, next_act={self._next_act})"
            )
        t = self.timing
        self.state = BankState.ACTIVE
        self.open_row = row
        self.last_act_cycle = cycle
        self.stats.activations += 1
        self._next_pre = max(self._next_pre, cycle + t.tRAS)
        self._next_rd = cycle + t.tRCD
        self._next_wr = cycle + t.tRCD
        self._next_act = max(self._next_act, cycle + t.tRC)

    def precharge(self, cycle: int) -> int:
        """Close the open row.  Returns the row that was closed."""
        if not self.can_precharge(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: PRE at cycle {cycle} illegal "
                f"(state={self.state}, next_pre={self._next_pre})"
            )
        t = self.timing
        closed_row = self.open_row
        assert closed_row is not None
        self.state = BankState.IDLE
        self.open_row = None
        self.stats.precharges += 1
        self._next_act = max(self._next_act, cycle + t.tRP)
        return closed_row

    def read(self, cycle: int) -> int:
        """Issue a RD; return the cycle at which data is available."""
        if not self.can_read(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: RD at cycle {cycle} illegal "
                f"(state={self.state}, next_rd={self._next_rd})"
            )
        t = self.timing
        self.stats.reads += 1
        self._next_rd = cycle + t.tCCD
        self._next_wr = cycle + t.tCCD
        self._next_pre = max(self._next_pre, cycle + t.tRTP)
        return cycle + t.tCL + t.tBL

    def write(self, cycle: int) -> int:
        """Issue a WR; return the cycle at which the write completes."""
        if not self.can_write(cycle):
            raise TimingViolation(
                f"bank {self.bank_id}: WR at cycle {cycle} illegal "
                f"(state={self.state}, next_wr={self._next_wr})"
            )
        t = self.timing
        self.stats.writes += 1
        self._next_rd = cycle + t.tCCD
        self._next_wr = cycle + t.tCCD
        completion = cycle + t.tCWL + t.tBL
        self._next_pre = max(self._next_pre, completion + t.tWR)
        return completion

    def block(self, cycle: int, duration: int) -> None:
        """Block the bank (REF / RFM / internal maintenance) for ``duration``.

        The bank must be precharged.  All commands to the bank are delayed
        until ``cycle + duration``.
        """
        if self.state is not BankState.IDLE:
            raise TimingViolation(
                f"bank {self.bank_id}: cannot block an open bank at cycle {cycle}"
            )
        self._next_act = max(self._next_act, cycle + duration)

    def victim_refresh(self, cycle: int, rows: int = 1) -> int:
        """Model a controller-side victim-row refresh (VRR).

        A victim-row refresh is an internal ACT+PRE of the victim row; the
        bank is blocked for ``rows * tRC`` cycles.  Returns the cycle at
        which the bank becomes available again.
        """
        if self.state is not BankState.IDLE:
            raise TimingViolation(
                f"bank {self.bank_id}: VRR requires a precharged bank at cycle {cycle}"
            )
        duration = rows * self.timing.tRC
        self.stats.victim_refreshes += rows
        self._next_act = max(self._next_act, cycle + duration)
        return cycle + duration


class _ArrayBank(Bank):
    """Thin view over one slot of a :class:`BankArrayTiming` plane.

    The plane arrays are the single source of truth; every command method
    writes them in place and every register name the object backend exposes
    (``state``, ``open_row``, ``last_act_cycle``, ``_next_*``) resolves
    through a read-only property returning plain Python values, so no NumPy
    scalar ever leaks into stats, request fields or cached payloads.  The
    view caches the plane's memoryview twins (the plane never reallocates
    its arrays -- :meth:`BankArrayTiming.reset` fills in place), so a
    register access is one plain-int indexing operation.
    """

    __slots__ = (
        "bank_id", "timing", "stats", "plane", "index",
        "_a_act", "_a_pre", "_a_rd", "_a_wr", "_a_row", "_a_last",
    )

    backend = "array"

    def __init__(
        self,
        bank_id: int,
        timing: TimingParams,
        backend: Optional[str] = None,
        *,
        plane: Optional[BankArrayTiming] = None,
        index: Optional[int] = None,
    ) -> None:
        if plane is None:
            # Standalone construction (tests, tooling): a private
            # single-slot plane keeps the full API working without a device.
            plane = BankArrayTiming(1)
            index = 0
        elif index is None:
            raise ValueError("a shared plane requires an explicit slot index")
        self.bank_id = bank_id
        self.timing = timing
        self.stats = BankStats()
        self.plane = plane
        self.index = index
        self._a_act = plane.next_act_mv
        self._a_pre = plane.next_pre_mv
        self._a_rd = plane.next_rd_mv
        self._a_wr = plane.next_wr_mv
        self._a_row = plane.open_row_mv
        self._a_last = plane.last_act_mv

    # ------------------------------------------------------------------ #
    # Register views
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> BankState:
        return BankState.ACTIVE if self._a_row[self.index] >= 0 else BankState.IDLE

    @property
    def open_row(self) -> Optional[int]:
        row = self._a_row[self.index]
        return row if row >= 0 else None

    @property
    def last_act_cycle(self) -> Optional[int]:
        last = self._a_last[self.index]
        return last if last >= 0 else None

    @property
    def _next_act(self) -> int:
        return self._a_act[self.index]

    @property
    def _next_pre(self) -> int:
        return self._a_pre[self.index]

    @property
    def _next_rd(self) -> int:
        return self._a_rd[self.index]

    @property
    def _next_wr(self) -> int:
        return self._a_wr[self.index]

    # ------------------------------------------------------------------ #
    # Legality predicates
    # ------------------------------------------------------------------ #
    def can_activate(self, cycle: int) -> bool:
        """Return True if an ACT may be issued at ``cycle``."""
        i = self.index
        return self._a_row[i] < 0 and cycle >= self._a_act[i]

    def can_precharge(self, cycle: int) -> bool:
        """Return True if a PRE may be issued at ``cycle``."""
        i = self.index
        return self._a_row[i] >= 0 and cycle >= self._a_pre[i]

    def can_read(self, cycle: int) -> bool:
        """Return True if a RD may be issued at ``cycle``."""
        i = self.index
        return self._a_row[i] >= 0 and cycle >= self._a_rd[i]

    def can_write(self, cycle: int) -> bool:
        """Return True if a WR may be issued at ``cycle``."""
        i = self.index
        return self._a_row[i] >= 0 and cycle >= self._a_wr[i]

    # ------------------------------------------------------------------ #
    # Command issue
    # ------------------------------------------------------------------ #
    def activate(self, row: int, cycle: int) -> None:
        """Open ``row`` in the row buffer."""
        i = self.index
        if not (self._a_row[i] < 0 and cycle >= self._a_act[i]):
            raise TimingViolation(
                f"bank {self.bank_id}: ACT at cycle {cycle} illegal "
                f"(state={self.state}, next_act={self._next_act})"
            )
        t = self.timing
        self._a_row[i] = row
        self._a_last[i] = cycle
        self.stats.activations += 1
        pre = cycle + t.tRAS
        if pre > self._a_pre[i]:
            self._a_pre[i] = pre
        rcd = cycle + t.tRCD
        self._a_rd[i] = rcd
        self._a_wr[i] = rcd
        act = cycle + t.tRC
        if act > self._a_act[i]:
            self._a_act[i] = act

    def precharge(self, cycle: int) -> int:
        """Close the open row.  Returns the row that was closed."""
        i = self.index
        if not (self._a_row[i] >= 0 and cycle >= self._a_pre[i]):
            raise TimingViolation(
                f"bank {self.bank_id}: PRE at cycle {cycle} illegal "
                f"(state={self.state}, next_pre={self._next_pre})"
            )
        closed_row = self._a_row[i]
        self._a_row[i] = NO_ROW
        self.stats.precharges += 1
        act = cycle + self.timing.tRP
        if act > self._a_act[i]:
            self._a_act[i] = act
        return closed_row

    def read(self, cycle: int) -> int:
        """Issue a RD; return the cycle at which data is available."""
        i = self.index
        if not (self._a_row[i] >= 0 and cycle >= self._a_rd[i]):
            raise TimingViolation(
                f"bank {self.bank_id}: RD at cycle {cycle} illegal "
                f"(state={self.state}, next_rd={self._next_rd})"
            )
        t = self.timing
        self.stats.reads += 1
        ccd = cycle + t.tCCD
        self._a_rd[i] = ccd
        self._a_wr[i] = ccd
        pre = cycle + t.tRTP
        if pre > self._a_pre[i]:
            self._a_pre[i] = pre
        return cycle + t.tCL + t.tBL

    def write(self, cycle: int) -> int:
        """Issue a WR; return the cycle at which the write completes."""
        i = self.index
        if not (self._a_row[i] >= 0 and cycle >= self._a_wr[i]):
            raise TimingViolation(
                f"bank {self.bank_id}: WR at cycle {cycle} illegal "
                f"(state={self.state}, next_wr={self._next_wr})"
            )
        t = self.timing
        self.stats.writes += 1
        ccd = cycle + t.tCCD
        self._a_rd[i] = ccd
        self._a_wr[i] = ccd
        completion = cycle + t.tCWL + t.tBL
        pre = completion + t.tWR
        if pre > self._a_pre[i]:
            self._a_pre[i] = pre
        return completion

    def block(self, cycle: int, duration: int) -> None:
        """Block the bank (REF / RFM / internal maintenance) for ``duration``.

        The bank must be precharged.  All commands to the bank are delayed
        until ``cycle + duration``.
        """
        i = self.index
        if self._a_row[i] >= 0:
            raise TimingViolation(
                f"bank {self.bank_id}: cannot block an open bank at cycle {cycle}"
            )
        act = cycle + duration
        if act > self._a_act[i]:
            self._a_act[i] = act

    def victim_refresh(self, cycle: int, rows: int = 1) -> int:
        """Model a controller-side victim-row refresh (VRR).

        A victim-row refresh is an internal ACT+PRE of the victim row; the
        bank is blocked for ``rows * tRC`` cycles.  Returns the cycle at
        which the bank becomes available again.
        """
        i = self.index
        if self._a_row[i] >= 0:
            raise TimingViolation(
                f"bank {self.bank_id}: VRR requires a precharged bank at cycle {cycle}"
            )
        duration = rows * self.timing.tRC
        self.stats.victim_refreshes += rows
        act = cycle + duration
        if act > self._a_act[i]:
            self._a_act[i] = act
        return cycle + duration
