"""DRAM organization: channels, ranks, bank groups, banks, rows, columns.

The paper's simulated system (Table 2) uses a single DDR5 channel with two
ranks, eight bank groups per rank, four banks per bank group (64 banks total)
and 64K rows per bank.  Storage-overhead experiments (Fig. 11 / Fig. 13) use a
module with 64 banks and 128K rows per bank.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True, slots=True)
class DramAddress:
    """A fully decoded DRAM address."""

    channel: int
    rank: int
    bankgroup: int
    bank: int
    row: int
    column: int

    def flat_bank(self, org: "DramOrganization") -> int:
        """Return the flat bank index of this address within its channel."""
        return org.flat_bank_index(self.rank, self.bankgroup, self.bank)


@dataclass(frozen=True)
class DramOrganization:
    """Geometry of a DRAM channel.

    Attributes:
        channels: number of memory channels.
        ranks: ranks per channel.
        bankgroups: bank groups per rank.
        banks_per_group: banks per bank group.
        rows: rows per bank.
        columns: column (cache-line) positions per row.
        row_size_bytes: bytes stored in one DRAM row (per rank).
        cacheline_bytes: bytes transferred per column access.
    """

    channels: int = 1
    ranks: int = 2
    bankgroups: int = 8
    banks_per_group: int = 4
    rows: int = 65536
    columns: int = 128
    row_size_bytes: int = 8192
    cacheline_bytes: int = 64

    def __post_init__(self) -> None:
        # The address mappings allocate log2(channels) bits to the channel
        # field; a non-power-of-two count would decode addresses to channels
        # that do not exist.
        if self.channels <= 0 or self.channels & (self.channels - 1):
            raise ValueError(
                f"channels must be a positive power of two, got {self.channels}"
            )

    @property
    def banks_per_rank(self) -> int:
        """Banks contained in one rank."""
        return self.bankgroups * self.banks_per_group

    @property
    def total_banks(self) -> int:
        """Banks contained in one channel (across all ranks)."""
        return self.ranks * self.banks_per_rank

    @property
    def total_rows(self) -> int:
        """Rows contained in one channel."""
        return self.total_banks * self.rows

    @property
    def capacity_bytes(self) -> int:
        """Total channel capacity in bytes."""
        return self.total_rows * self.row_size_bytes

    @property
    def system_banks(self) -> int:
        """Banks across the whole system (all channels)."""
        return self.channels * self.total_banks

    @property
    def system_capacity_bytes(self) -> int:
        """Total system capacity in bytes (all channels)."""
        return self.channels * self.capacity_bytes

    def with_channels(self, channels: int) -> "DramOrganization":
        """Return a copy of this geometry scaled to ``channels`` channels.

        ``channels`` must be a positive power of two (validated on
        construction): the channel field of every address mapping is a bit
        field, so other counts would decode to non-existent channels.
        """
        return replace(self, channels=channels)

    def flat_bank_index(self, rank: int, bankgroup: int, bank: int) -> int:
        """Flatten a (rank, bankgroup, bank) triple to a single index."""
        self._check_range("rank", rank, self.ranks)
        self._check_range("bankgroup", bankgroup, self.bankgroups)
        self._check_range("bank", bank, self.banks_per_group)
        return (rank * self.bankgroups + bankgroup) * self.banks_per_group + bank

    def unflatten_bank_index(self, flat: int) -> tuple[int, int, int]:
        """Inverse of :meth:`flat_bank_index`."""
        self._check_range("flat bank", flat, self.total_banks)
        bank = flat % self.banks_per_group
        rest = flat // self.banks_per_group
        bankgroup = rest % self.bankgroups
        rank = rest // self.bankgroups
        return rank, bankgroup, bank

    def validate_address(self, addr: DramAddress) -> None:
        """Raise ``ValueError`` if any field of ``addr`` is out of range."""
        self._check_range("channel", addr.channel, self.channels)
        self._check_range("rank", addr.rank, self.ranks)
        self._check_range("bankgroup", addr.bankgroup, self.bankgroups)
        self._check_range("bank", addr.bank, self.banks_per_group)
        self._check_range("row", addr.row, self.rows)
        self._check_range("column", addr.column, self.columns)

    @staticmethod
    def _check_range(name: str, value: int, bound: int) -> None:
        if not 0 <= value < bound:
            raise ValueError(f"{name} {value} out of range [0, {bound})")


#: System configuration used in the paper's main evaluation (Table 2).
PAPER_ORGANIZATION = DramOrganization(
    channels=1,
    ranks=2,
    bankgroups=8,
    banks_per_group=4,
    rows=65536,
    columns=128,
    row_size_bytes=8192,
    cacheline_bytes=64,
)

#: Module geometry used for the storage-overhead study (Fig. 11 / Fig. 13):
#: 64 banks with 128K rows per bank.
STORAGE_STUDY_ORGANIZATION = DramOrganization(
    channels=1,
    ranks=2,
    bankgroups=8,
    banks_per_group=4,
    rows=131072,
    columns=128,
    row_size_bytes=2048,
    cacheline_bytes=64,
)
