"""DDR5 timing parameters, with and without PRAC.

The Chronus paper's central observation about PRAC (Table 1) is that updating
the per-row activation counter while a row is being closed changes several
DRAM timing parameters for the DDR5-3200AN speed bin:

==============  ==================  ===============
Parameter        DDR5 without PRAC   DDR5 with PRAC
==============  ==================  ===============
tRAS             32 ns               16 ns
tRP              15 ns               36 ns
tRC              47 ns               52 ns
tRTP             7.5 ns              5 ns
tWR              30 ns               10 ns
==============  ==================  ===============

Chronus' Concurrent Counter Update (CCU) restores the non-PRAC timings because
the counter lives in a separate subarray and is updated in parallel with the
data-row access.

All parameters are stored internally in DRAM clock cycles.  The factory
functions below convert from nanoseconds using the speed bin's clock period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict


def ns_to_cycles(ns: float, tck_ns: float) -> int:
    """Convert a duration in nanoseconds to a (rounded-up) cycle count."""
    if ns < 0:
        raise ValueError(f"duration must be non-negative, got {ns}")
    return int(math.ceil(ns / tck_ns - 1e-9))


@dataclass(frozen=True)
class TimingParams:
    """DRAM timing parameters expressed in DRAM clock cycles.

    Attributes mirror the JEDEC parameter names used in the paper.  Only the
    parameters the simulator enforces are listed; all are per-bank unless
    noted otherwise.
    """

    #: Clock period in nanoseconds (DDR5-3200 => 0.625 ns).
    tck_ns: float

    # --- Row timings ------------------------------------------------------
    #: ACT to PRE minimum delay (same bank).
    tRAS: int
    #: PRE to ACT minimum delay (same bank).
    tRP: int
    #: ACT to ACT minimum delay (same bank).
    tRC: int
    #: ACT to RD/WR minimum delay (same bank).
    tRCD: int
    #: RD to PRE minimum delay (same bank).
    tRTP: int
    #: End of a write burst to PRE minimum delay (write recovery).
    tWR: int

    # --- Column timings ---------------------------------------------------
    #: RD command to data (CAS latency).
    tCL: int
    #: WR command to data (CAS write latency).
    tCWL: int
    #: Burst length in cycles on the data bus.
    tBL: int
    #: Column-to-column delay (same bank group).
    tCCD: int

    # --- Inter-bank timings -----------------------------------------------
    #: ACT to ACT minimum delay across banks (row-to-row delay).
    tRRD: int
    #: Four-activate window.
    tFAW: int

    # --- Refresh ----------------------------------------------------------
    #: Average periodic refresh interval.
    tREFI: int
    #: Refresh cycle time (bank blocked after REF).
    tRFC: int
    #: Refresh window (every row refreshed once per window).
    tREFW: int

    # --- Read-disturbance management (RFM / PRAC back-off) -----------------
    #: Refresh-management latency (bank blocked after RFM).
    tRFM: int
    #: Window of normal traffic after the back-off signal is asserted.
    tABOACT: int
    #: Latency from the PRE that triggers the back-off to the controller
    #: observing the alert_n signal.
    tBackOffLatency: int

    #: True if these timings model a PRAC-enabled device (counter updated in
    #: the data array while the row closes).
    prac_enabled: bool = False

    #: Free-form label, e.g. ``"DDR5-3200AN"``.
    name: str = "DDR5"

    def ns(self, cycles: int) -> float:
        """Convert a cycle count back to nanoseconds."""
        return cycles * self.tck_ns

    def as_dict(self) -> Dict[str, int]:
        """Return the timing parameters as a plain dictionary (cycles)."""
        return {
            key: getattr(self, key)
            for key in (
                "tRAS", "tRP", "tRC", "tRCD", "tRTP", "tWR",
                "tCL", "tCWL", "tBL", "tCCD", "tRRD", "tFAW",
                "tREFI", "tRFC", "tREFW", "tRFM", "tABOACT",
                "tBackOffLatency",
            )
        }

    def with_overrides(self, **kwargs: int) -> "TimingParams":
        """Return a copy with the given parameters replaced."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# DDR5-3200AN presets
# ---------------------------------------------------------------------------

#: Clock period of the DDR5-3200 speed bin (1600 MHz command clock).
DDR5_3200_TCK_NS = 0.625

#: Baseline (non-PRAC) timing values in nanoseconds, per the paper (Table 1)
#: and typical JESD79-5c values for parameters the paper does not list.
_BASE_NS = {
    "tRAS": 32.0,
    "tRP": 15.0,
    "tRC": 47.0,
    "tRCD": 16.0,
    "tRTP": 7.5,
    "tWR": 30.0,
    "tCL": 16.0,
    "tCWL": 14.0,
    "tBL": 5.0,
    "tCCD": 5.0,
    "tRRD": 5.0,
    "tFAW": 20.0,
    "tREFI": 3900.0,
    "tRFC": 295.0,
    "tREFW": 32_000_000.0,
    "tRFM": 350.0,
    "tABOACT": 180.0,
    "tBackOffLatency": 5.0,
}

#: Timing deltas when PRAC is enabled (Table 1 of the paper).
_PRAC_NS = {
    "tRAS": 16.0,
    "tRP": 36.0,
    "tRC": 52.0,
    "tRTP": 5.0,
    "tWR": 10.0,
}

#: Timing deltas used by the *previous* (buggy) version of the paper, where
#: tRAS / tRTP / tWR were not reduced (Appendix E, Table 4).  Kept so the
#: Table 4 experiment can quantify the effect of the fix.
_PRAC_OLD_NS = {
    "tRP": 36.0,
    "tRC": 52.0,
}


def _build(ns_values: Dict[str, float], *, prac: bool, name: str) -> TimingParams:
    cycles = {key: ns_to_cycles(value, DDR5_3200_TCK_NS) for key, value in ns_values.items()}
    return TimingParams(tck_ns=DDR5_3200_TCK_NS, prac_enabled=prac, name=name, **cycles)


def ddr5_3200an(prac: bool = False, *, legacy_prac_timings: bool = False) -> TimingParams:
    """Return the DDR5-3200AN timing preset.

    Args:
        prac: if True, return the PRAC-enabled timings (Table 1, right column).
        legacy_prac_timings: if True (and ``prac``), return the timings used by
            the pre-erratum version of the paper where tRAS/tRTP/tWR were not
            reduced (Appendix E).  Used only by the Table 4 experiment.

    Returns:
        A frozen :class:`TimingParams` instance.
    """
    if not prac:
        if legacy_prac_timings:
            raise ValueError("legacy_prac_timings requires prac=True")
        return _build(_BASE_NS, prac=False, name="DDR5-3200AN")
    ns_values = dict(_BASE_NS)
    ns_values.update(_PRAC_OLD_NS if legacy_prac_timings else _PRAC_NS)
    name = "DDR5-3200AN+PRAC(old)" if legacy_prac_timings else "DDR5-3200AN+PRAC"
    return _build(ns_values, prac=prac, name=name)


def timing_table_rows() -> list[dict]:
    """Return the rows of the paper's Table 1 (parameter, no-PRAC ns, PRAC ns).

    Used by the Table 1 benchmark to print the reproduced table.
    """
    rows = []
    for param in ("tRAS", "tRP", "tRC", "tRTP", "tWR"):
        rows.append(
            {
                "parameter": param,
                "no_prac_ns": _BASE_NS[param],
                "prac_ns": _PRAC_NS[param],
            }
        )
    return rows
