"""Structure-of-arrays storage for the per-bank timing registers.

The object-backend :class:`~repro.dram.bank.Bank` keeps its timing registers
(``_next_act`` / ``_next_pre`` / ``_next_rd`` / ``_next_wr``), the open row
and the last-ACT cycle as Python attributes.  That layout is convenient but
forces every controller readiness scan -- ``_demand_ready_cycle``, the
postponed-REF sweep, the back-off recovery probe, the event-horizon hint --
to walk 64 bank objects per channel in Python.

:class:`BankArrayTiming` stores the same six registers as flat per-channel
NumPy ``int64`` arrays indexed by *flat bank id*, so those scans become a
handful of vectorized array passes.  The array-backend ``Bank`` is a thin
view over one slot of a plane (see :mod:`repro.dram.bank`); the plane itself
is owned by :class:`~repro.dram.device.DramDevice` and can be pre-allocated
and pooled by the batch engine exactly like counter buffers.

Sentinels
---------

``open_row`` uses ``-1`` for "no open row" and ``last_act`` uses ``-1`` for
"never activated"; real rows and cycles are non-negative, so the encoding is
lossless.  Bank state needs no separate array: a bank is ACTIVE iff its
``open_row`` slot is non-negative (the object backend maintains exactly this
invariant between ``state`` and ``open_row``).

Backend selection mirrors :mod:`repro.core.counters`: a
``backend="object"|"array"`` constructor argument, ``None`` resolving to
``$REPRO_BANK_BACKEND`` when set and to the array default otherwise.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

#: Backend names accepted by :class:`repro.dram.bank.Bank` and
#: :class:`repro.dram.device.DramDevice`.
BANK_BACKENDS: Tuple[str, ...] = ("object", "array")

#: Environment variable overriding the default backend (debugging aid and
#: the CI differential-matrix switch).
BANK_BACKEND_ENV = "REPRO_BANK_BACKEND"

#: The default backend: the structure-of-arrays timing plane.
DEFAULT_BANK_BACKEND = "array"

#: ``open_row`` / ``last_act`` sentinel for "none".
NO_ROW = -1


def resolve_bank_backend(backend: Optional[str]) -> str:
    """Resolve a ``backend`` constructor argument to a concrete name.

    ``None`` selects ``$REPRO_BANK_BACKEND`` when set, otherwise
    :data:`DEFAULT_BANK_BACKEND`.
    """
    if backend is None:
        backend = os.environ.get(BANK_BACKEND_ENV) or DEFAULT_BANK_BACKEND
    if backend not in BANK_BACKENDS:
        raise ValueError(
            f"unknown bank backend {backend!r}; expected one of {BANK_BACKENDS}"
        )
    return backend


class BankArrayTiming:
    """Flat per-channel timing registers for ``num_banks`` banks.

    Every array is ``int64`` of length ``num_banks`` and indexed by flat
    bank id.  The arrays are the single source of truth for the array
    backend -- bank views read and write them directly, and the controller
    kernels fold over them without touching bank objects.
    """

    __slots__ = (
        "num_banks", "next_act", "next_pre", "next_rd", "next_wr",
        "open_row", "last_act",
        "next_act_mv", "next_pre_mv", "next_rd_mv", "next_wr_mv",
        "open_row_mv", "last_act_mv",
    )

    def __init__(self, num_banks: int) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        self.num_banks = num_banks
        #: Earliest cycle each command class may be issued (per bank).
        self.next_act = np.zeros(num_banks, dtype=np.int64)
        self.next_pre = np.zeros(num_banks, dtype=np.int64)
        self.next_rd = np.zeros(num_banks, dtype=np.int64)
        self.next_wr = np.zeros(num_banks, dtype=np.int64)
        #: Open row per bank (:data:`NO_ROW` = precharged).
        self.open_row = np.full(num_banks, NO_ROW, dtype=np.int64)
        #: Cycle of the last ACT per bank (:data:`NO_ROW` = never).
        self.last_act = np.full(num_banks, NO_ROW, dtype=np.int64)
        # Scalar-access twins: memoryview indexing reads and writes plain
        # Python ints at roughly half the cost of ndarray scalar indexing
        # and shares the ndarray buffer, so per-slot view accesses and the
        # whole-plane vector folds always see the same registers.  The
        # arrays never reallocate (reset() fills in place), so the views
        # stay valid for the plane's lifetime.
        self.next_act_mv = memoryview(self.next_act)
        self.next_pre_mv = memoryview(self.next_pre)
        self.next_rd_mv = memoryview(self.next_rd)
        self.next_wr_mv = memoryview(self.next_wr)
        self.open_row_mv = memoryview(self.open_row)
        self.last_act_mv = memoryview(self.last_act)

    def reset(self) -> None:
        """Return every register to its construction state (pool reuse)."""
        self.next_act.fill(0)
        self.next_pre.fill(0)
        self.next_rd.fill(0)
        self.next_wr.fill(0)
        self.open_row.fill(NO_ROW)
        self.last_act.fill(NO_ROW)

    def is_pristine(self) -> bool:
        """True if no register differs from its construction state."""
        return bool(
            not self.next_act.any()
            and not self.next_pre.any()
            and not self.next_rd.any()
            and not self.next_wr.any()
            and (self.open_row == NO_ROW).all()
            and (self.last_act == NO_ROW).all()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        open_banks = int((self.open_row != NO_ROW).sum())
        return f"BankArrayTiming(num_banks={self.num_banks}, open={open_banks})"
