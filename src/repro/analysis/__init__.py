"""Analytical models: wave-attack security, bandwidth attacks, storage cost.

These modules implement the closed-form / iterative analyses of the paper:

* :mod:`repro.analysis.security` -- the wave-attack recurrences (Eq. 1 and
  Eq. 2), the configuration sweeps of Fig. 3, the secure-configuration
  selection used by the performance experiments, and the Chronus security
  bound of §8.
* :mod:`repro.analysis.bandwidth` -- the performance-degradation attack
  analysis of §11 and the worst-case DRAM bandwidth consumption bound of
  Appendix D.
* :mod:`repro.analysis.storage` -- the storage-overhead models behind
  Fig. 11 and Fig. 13.
"""

from repro.analysis.security import (
    SecurityParameters,
    chronus_max_activations,
    chronus_secure_backoff_threshold,
    minimum_secure_nrh_chronus,
    minimum_secure_nrh_prac,
    minimum_secure_nrh_prfm,
    prac_max_activations,
    prac_security_sweep,
    prfm_max_activations,
    prfm_security_sweep,
    secure_prac_backoff_threshold,
    secure_prfm_threshold,
    att_required_entries,
)
from repro.analysis.bandwidth import (
    chronus_max_bandwidth_consumption,
    prac_max_bandwidth_consumption,
    dram_bandwidth_consumption,
)
from repro.analysis.storage import storage_overhead_bytes, storage_overhead_table

__all__ = [
    "SecurityParameters",
    "prfm_max_activations",
    "prac_max_activations",
    "chronus_max_activations",
    "prfm_security_sweep",
    "prac_security_sweep",
    "secure_prfm_threshold",
    "secure_prac_backoff_threshold",
    "chronus_secure_backoff_threshold",
    "minimum_secure_nrh_prac",
    "minimum_secure_nrh_prfm",
    "minimum_secure_nrh_chronus",
    "att_required_entries",
    "dram_bandwidth_consumption",
    "prac_max_bandwidth_consumption",
    "chronus_max_bandwidth_consumption",
    "storage_overhead_bytes",
    "storage_overhead_table",
]
