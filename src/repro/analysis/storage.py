"""Storage-overhead models (Fig. 11 and Fig. 13).

Every mechanism exposes its storage cost through
``MitigationMechanism.storage_overhead_bits``; this module instantiates the
mechanisms for the storage-study module geometry (64 banks, 128 K rows per
bank) and tabulates the per-location (DRAM / SRAM / CAM) overheads as a
function of the RowHammer threshold, exactly as the paper's storage figures
do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dram.organization import STORAGE_STUDY_ORGANIZATION, DramOrganization


#: Mechanisms included in Fig. 11.
FIG11_MECHANISMS: tuple[str, ...] = ("Chronus", "PRAC-4", "Graphene", "Hydra", "PRFM")

#: Mechanisms included in Fig. 13 (Appendix C).
FIG13_MECHANISMS: tuple[str, ...] = ("Chronus", "ABACuS")

#: RowHammer thresholds swept in the storage figures.
DEFAULT_NRH_VALUES: tuple[int, ...] = (1024, 512, 256, 128, 64, 32, 20)


@dataclass(frozen=True)
class StorageOverhead:
    """Storage overhead of one (mechanism, N_RH) point."""

    mechanism: str
    nrh: int
    dram_bytes: float
    sram_bytes: float
    cam_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.dram_bytes + self.sram_bytes + self.cam_bytes

    @property
    def cpu_bytes(self) -> float:
        """Storage kept on the CPU / memory-controller side."""
        return self.sram_bytes + self.cam_bytes

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1024 * 1024)


def storage_overhead_bytes(
    mechanism: str,
    nrh: int,
    organization: DramOrganization = STORAGE_STUDY_ORGANIZATION,
) -> StorageOverhead:
    """Storage overhead of ``mechanism`` at threshold ``nrh``."""
    # Imported lazily to avoid a circular import: the mechanism modules use
    # repro.analysis.security for their secure-configuration defaults.
    from repro.core.factory import build_mechanism

    setup = build_mechanism(mechanism, nrh=nrh, num_banks=organization.total_banks,
                            allow_insecure=True)
    dram_bits = 0
    sram_bits = 0
    cam_bits = 0
    for component in setup.mechanisms():
        bits = component.storage_overhead_bits(
            num_banks=organization.total_banks, rows_per_bank=organization.rows
        )
        dram_bits += bits.get("dram_bits", 0)
        sram_bits += bits.get("sram_bits", 0)
        cam_bits += bits.get("cam_bits", 0)
    return StorageOverhead(
        mechanism=mechanism,
        nrh=nrh,
        dram_bytes=dram_bits / 8,
        sram_bytes=sram_bits / 8,
        cam_bytes=cam_bits / 8,
    )


def storage_overhead_table(
    mechanisms: Sequence[str] = FIG11_MECHANISMS,
    nrh_values: Sequence[int] = DEFAULT_NRH_VALUES,
    organization: DramOrganization = STORAGE_STUDY_ORGANIZATION,
) -> List[StorageOverhead]:
    """Tabulate storage overheads for a set of mechanisms and thresholds."""
    table = []
    for mechanism in mechanisms:
        for nrh in nrh_values:
            table.append(storage_overhead_bytes(mechanism, nrh, organization))
    return table
