"""Memory performance (denial-of-memory-service) attack analysis (§11, App. D).

An attacker can abuse preventive refreshes to hog DRAM bandwidth: by
repeatedly driving rows to the back-off threshold it forces the device to
spend time in RFM windows instead of serving requests.  Appendix D proves
that the pattern evaluated in §11 -- trigger a back-off with the minimum
number of activations, absorb the resulting preventive refreshes, repeat --
maximises the fraction of time spent on preventive refreshes:

    DBC(P_ADV) = (NRef * tRFM) / (NRef * tRFM + NBO * tRC)

Because PRAC must be configured with a tiny back-off threshold (``NBO = 1``
at ``N_RH = 20``) and issues ``NRef = 4`` RFMs per back-off, an attacker can
theoretically consume 94 % of DRAM throughput; Chronus, which can safely use
``NBO = 16`` and issues one RFM per aggressor, bounds this at 32 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.security import (
    DEFAULT_PARAMETERS,
    SecurityParameters,
    chronus_secure_backoff_threshold,
    secure_prac_backoff_threshold,
)


def dram_bandwidth_consumption(
    nref: int, nbo: int, trfm_ns: float, trc_ns: float
) -> float:
    """Worst-case fraction of DRAM time consumed by preventive refreshes.

    Implements Expression 3 of the paper (the DBC of the adversarial pattern
    P_ADV), which Appendix D proves is the maximum achievable under the three
    properties shared by PRAC and Chronus.
    """
    if nref <= 0 or nbo <= 0:
        raise ValueError("nref and nbo must be positive")
    if trfm_ns <= 0 or trc_ns <= 0:
        raise ValueError("timings must be positive")
    refresh_time = nref * trfm_ns
    trigger_time = nbo * trc_ns
    return refresh_time / (refresh_time + trigger_time)


def prac_max_bandwidth_consumption(
    nrh: int = 20,
    nref: int = 4,
    params: SecurityParameters = DEFAULT_PARAMETERS,
) -> float:
    """Theoretical DRAM-throughput loss under PRAC (§11).

    Uses PRAC's secure back-off threshold for the given ``N_RH`` (``NBO = 1``
    at ``N_RH = 20``) and PRAC's timing parameters.
    """
    nbo = secure_prac_backoff_threshold(nrh, nref, params=params)
    return dram_bandwidth_consumption(
        nref=nref, nbo=nbo, trfm_ns=params.trfm_ns, trc_ns=params.trc_prac_ns
    )


def chronus_max_bandwidth_consumption(
    nrh: int = 20,
    params: SecurityParameters = DEFAULT_PARAMETERS,
) -> float:
    """Theoretical DRAM-throughput loss under Chronus (§11).

    Chronus triggers one RFM per back-off (footnote: additional RFMs per
    back-off only help the defender) and can be configured with the much
    larger secure threshold ``NBO = min(N_RH - Anormal - 1, 256)``.
    """
    nbo = chronus_secure_backoff_threshold(nrh, params=params)
    return dram_bandwidth_consumption(
        nref=1, nbo=nbo, trfm_ns=params.trfm_ns, trc_ns=params.trc_ns
    )


@dataclass(frozen=True)
class BandwidthAttackBound:
    """A (mechanism, N_RH) point of the §11 theoretical analysis."""

    mechanism: str
    nrh: int
    nbo: int
    nref: int
    consumption: float


def bandwidth_attack_table(
    nrh_values=(128, 20), params: SecurityParameters = DEFAULT_PARAMETERS
) -> list[BandwidthAttackBound]:
    """Tabulate the theoretical bounds for PRAC-4 and Chronus."""
    rows = []
    for nrh in nrh_values:
        prac_nbo = secure_prac_backoff_threshold(nrh, 4, params=params)
        rows.append(
            BandwidthAttackBound(
                mechanism="PRAC-4",
                nrh=nrh,
                nbo=prac_nbo,
                nref=4,
                consumption=dram_bandwidth_consumption(
                    4, prac_nbo, params.trfm_ns, params.trc_prac_ns
                ),
            )
        )
        chronus_nbo = chronus_secure_backoff_threshold(nrh, params=params)
        rows.append(
            BandwidthAttackBound(
                mechanism="Chronus",
                nrh=nrh,
                nbo=chronus_nbo,
                nref=1,
                consumption=dram_bandwidth_consumption(
                    1, chronus_nbo, params.trfm_ns, params.trc_ns
                ),
            )
        )
    return rows
