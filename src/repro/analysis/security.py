"""Wave-attack security analysis of PRFM, PRAC and Chronus (§5 and §8).

The *wave attack* (also called the *feinting attack*) hammers a large set of
decoy rows in a balanced way so that the mitigation mechanism can only
preventively refresh a small subset of them per preventive action.  The
attacker drops mitigated rows from subsequent rounds, so the last surviving
row accumulates the highest possible activation count.

This module implements:

* ``prfm_max_activations``  -- Eq. 1 of the paper (PRFM).
* ``prac_max_activations``  -- Eq. 2 of the paper (PRAC-N back-off).
* ``chronus_max_activations`` -- the closed-form bound of §8
  (``A(i) <= NBO + Anormal``).
* configuration sweeps reproducing Fig. 3a and Fig. 3b,
* the *secure configuration* selection used by the performance experiments
  (largest RFMth / NBO that keeps the attacker below ``N_RH``), and
* the Aggressor Tracking Table sizing rule (``Anormal + 1`` entries).

All durations are taken in nanoseconds so the analysis is independent of the
simulator's clock discretisation (matching the paper, which works in ns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SecurityParameters:
    """Physical parameters of the security analysis (§5, "Key Parameters")."""

    #: Row cycle time without PRAC (ns).
    trc_ns: float = 47.0
    #: Row cycle time with PRAC timings (ns).
    trc_prac_ns: float = 52.0
    #: Refresh-management latency: time to refresh the victims of one
    #: aggressor row (ns).
    trfm_ns: float = 350.0
    #: Refresh window (ns); victims are periodically refreshed once per
    #: window, so the attack must complete within it.
    trefw_ns: float = 32_000_000.0
    #: Window of normal traffic after a back-off is observed (ns).
    taboact_ns: float = 180.0
    #: Blast radius (victim rows on each side of an aggressor).
    blast_radius: int = 2

    @property
    def normal_traffic_activations(self) -> int:
        """``Anormal``: activations to a single row during tABOACT (PRAC timings)."""
        return int(self.taboact_ns // self.trc_prac_ns)

    @property
    def normal_traffic_activations_chronus(self) -> int:
        """``Anormal`` with Chronus (CCU restores the non-PRAC tRC)."""
        return int(self.taboact_ns // self.trc_ns)


DEFAULT_PARAMETERS = SecurityParameters()


# ---------------------------------------------------------------------------
# PRFM (periodic RFM) -- Eq. 1
# ---------------------------------------------------------------------------

def prfm_max_activations(
    rfm_threshold: int,
    initial_rows: int,
    params: SecurityParameters = DEFAULT_PARAMETERS,
    max_rounds: int = 1 << 16,
) -> int:
    """Maximum activations a single row can receive under PRFM (Eq. 1).

    The attacker hammers every row of the starting set once per round.  The
    memory controller issues one RFM per ``rfm_threshold`` activations, and
    each RFM mitigates (refreshes the victims of) one aggressor row.  Rows
    whose victims were refreshed are dropped from later rounds.

    Args:
        rfm_threshold: bank activation threshold to issue an RFM (``RFMth``).
        initial_rows: starting row-set size ``|R1|``.
        params: physical parameters (timings, refresh window).
        max_rounds: safety bound on the number of simulated rounds.

    Returns:
        The highest activation count any single row reaches before its
        victims are refreshed (bounded by the refresh window).
    """
    if rfm_threshold <= 0:
        raise ValueError("rfm_threshold must be positive")
    if initial_rows <= 0:
        raise ValueError("initial_rows must be positive")

    remaining = initial_rows
    cumulative_acts = 0
    elapsed_ns = 0.0
    rounds_survived = 0

    for _ in range(max_rounds):
        if remaining <= 0:
            break
        # One round: each remaining row is activated once.
        round_acts = remaining
        rfms_this_round = (cumulative_acts + round_acts) // rfm_threshold - (
            cumulative_acts // rfm_threshold
        )
        round_time = round_acts * params.trc_ns + rfms_this_round * params.trfm_ns
        if elapsed_ns + round_time > params.trefw_ns:
            # The refresh window closes before the round completes: victims
            # are periodically refreshed, ending the attack.
            break
        elapsed_ns += round_time
        cumulative_acts += round_acts
        rounds_survived += 1
        mitigated_total = cumulative_acts // rfm_threshold
        remaining = initial_rows - mitigated_total

    return rounds_survived


def prfm_security_sweep(
    rfm_thresholds: Sequence[int],
    initial_row_sizes: Sequence[int],
    params: SecurityParameters = DEFAULT_PARAMETERS,
) -> Dict[int, Dict[int, int]]:
    """Reproduce Fig. 3a: max activations vs ``RFMth`` for several ``|R1|``.

    Returns ``{rfm_threshold: {initial_rows: max_acts}}``.
    """
    return {
        rfm_th: {
            r1: prfm_max_activations(rfm_th, r1, params) for r1 in initial_row_sizes
        }
        for rfm_th in rfm_thresholds
    }


# ---------------------------------------------------------------------------
# PRAC-N back-off -- Eq. 2
# ---------------------------------------------------------------------------

def prac_max_activations(
    nbo: int,
    nref: int,
    initial_rows: int,
    ndelay: Optional[int] = None,
    params: SecurityParameters = DEFAULT_PARAMETERS,
    max_rounds: int = 1 << 16,
) -> int:
    """Maximum activations a single row can receive under PRAC-N (Eq. 2).

    The attacker first brings every row of the starting set to ``NBO - 1``
    activations (no back-off yet), then runs wave-attack rounds.  At least one
    row stays above ``NBO`` across rounds, so the device asserts back-offs as
    frequently as it can; each back-off period allows
    ``NDelay + tABOACT / tRC`` attacker activations and mitigates ``NRef``
    rows.  The surviving row additionally receives ``Anormal`` activations
    during the final window of normal traffic.

    Args:
        nbo: back-off threshold (absolute activation count).
        nref: RFM commands issued per back-off (PRAC-1/2/4).
        initial_rows: starting row-set size ``|R1|``.
        ndelay: activations required before a new back-off (defaults to
            ``nref``, as the DDR5 specification ties them together).
        params: physical parameters.
        max_rounds: safety bound on the number of simulated rounds.

    Returns:
        The highest activation count any single row reaches before its
        victims are refreshed.
    """
    if nbo <= 0:
        raise ValueError("nbo must be positive")
    if nref <= 0:
        raise ValueError("nref must be positive")
    if initial_rows <= 0:
        raise ValueError("initial_rows must be positive")
    if ndelay is None:
        ndelay = nref

    trc = params.trc_prac_ns
    window_acts = ndelay + params.taboact_ns / trc

    # Phase 0: initialise every row to NBO - 1 activations.
    init_acts = initial_rows * (nbo - 1)
    elapsed_ns = init_acts * trc
    if elapsed_ns > params.trefw_ns:
        # The attacker cannot even complete initialisation before the
        # refresh window closes; scale the row set down implicitly by
        # reporting what the time budget allows.
        return min(nbo - 1 + params.normal_traffic_activations,
                   int(params.trefw_ns // trc))

    remaining = initial_rows
    cumulative_acts = 0
    rounds_survived = 0

    for _ in range(max_rounds):
        if remaining <= 0:
            break
        round_acts = remaining
        prev_backoffs = int(cumulative_acts / window_acts)
        new_backoffs = int((cumulative_acts + round_acts) / window_acts)
        backoffs_this_round = new_backoffs - prev_backoffs
        round_time = (
            round_acts * trc + backoffs_this_round * nref * params.trfm_ns
        )
        if elapsed_ns + round_time > params.trefw_ns:
            break
        elapsed_ns += round_time
        cumulative_acts += round_acts
        rounds_survived += 1
        mitigated_total = nref * int(cumulative_acts / window_acts)
        remaining = initial_rows - mitigated_total

    return (nbo - 1) + rounds_survived + params.normal_traffic_activations


def prac_security_sweep(
    backoff_thresholds: Sequence[int],
    nrefs: Sequence[int],
    initial_row_sizes: Sequence[int],
    params: SecurityParameters = DEFAULT_PARAMETERS,
) -> Dict[int, Dict[int, int]]:
    """Reproduce Fig. 3b: worst-case max activations vs ``NBO`` per PRAC-N.

    For each (``NBO``, ``NRef``) pair, the worst case over all starting row
    set sizes is reported (matching the figure, which plots the worst-case
    ``|R1|``).

    Returns ``{nbo: {nref: worst_case_max_acts}}``.
    """
    sweep: Dict[int, Dict[int, int]] = {}
    for nbo in backoff_thresholds:
        sweep[nbo] = {}
        for nref in nrefs:
            sweep[nbo][nref] = max(
                prac_max_activations(nbo, nref, r1, params=params)
                for r1 in initial_row_sizes
            )
    return sweep


# ---------------------------------------------------------------------------
# Chronus -- §8 closed form
# ---------------------------------------------------------------------------

def chronus_max_activations(
    nbo: int, params: SecurityParameters = DEFAULT_PARAMETERS
) -> int:
    """Upper bound on activations to a single row under Chronus (§8).

    Chronus accurately tracks every row (P1), can trigger a back-off at any
    time (P2) and keeps the back-off asserted until every row above the
    threshold has been refreshed (P3), so a row can receive at most
    ``NBO + Anormal`` activations.
    """
    if nbo <= 0:
        raise ValueError("nbo must be positive")
    return nbo + params.normal_traffic_activations_chronus


def chronus_secure_backoff_threshold(
    nrh: int,
    params: SecurityParameters = DEFAULT_PARAMETERS,
    counter_width_bits: int = 8,
) -> int:
    """Largest secure back-off threshold for Chronus at a given ``N_RH``.

    Chronus is secure whenever ``NBO < N_RH - Anormal`` (§8).  The counter
    subarray stores ``counter_width_bits``-bit counters, so the threshold is
    additionally capped at ``2**counter_width_bits``.
    """
    if nrh <= 0:
        raise ValueError("nrh must be positive")
    anormal = params.normal_traffic_activations_chronus
    nbo = min(nrh - anormal - 1, 2 ** counter_width_bits)
    if nbo < 1:
        raise ValueError(
            f"Chronus cannot be configured securely for N_RH={nrh} "
            f"(Anormal={anormal})"
        )
    return nbo


def att_required_entries(
    params: SecurityParameters = DEFAULT_PARAMETERS, prac_timings: bool = False
) -> int:
    """Minimum Aggressor Tracking Table size (§8).

    An attacker can force at most ``Anormal + 1`` rows to reach ``NBO``
    activations before the recovery period starts, so the ATT must hold at
    least that many entries.
    """
    anormal = (
        params.normal_traffic_activations
        if prac_timings
        else params.normal_traffic_activations_chronus
    )
    return anormal + 1


# ---------------------------------------------------------------------------
# Secure-configuration selection (used by the performance experiments)
# ---------------------------------------------------------------------------

#: Starting row-set sizes used when searching for worst-case wave attacks
#: (matches the legend of Fig. 3a).
DEFAULT_ROW_SET_SIZES: Tuple[int, ...] = (2048, 4096, 8192, 16384, 32768, 65536)

#: Candidate RFM thresholds for PRFM (x-axis of Fig. 3a).
DEFAULT_RFM_THRESHOLDS: Tuple[int, ...] = (2, 3, 4, 8, 16, 32, 64, 80, 128, 256)

#: Candidate back-off thresholds for PRAC (x-axis of Fig. 3b).
DEFAULT_BACKOFF_THRESHOLDS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 16, 32, 64, 128, 256)


def secure_prfm_threshold(
    nrh: int,
    candidate_thresholds: Sequence[int] = DEFAULT_RFM_THRESHOLDS,
    row_set_sizes: Sequence[int] = DEFAULT_ROW_SET_SIZES,
    params: SecurityParameters = DEFAULT_PARAMETERS,
) -> int:
    """Largest ``RFMth`` that keeps the wave attack below ``N_RH``.

    Raises ``ValueError`` if no candidate threshold is secure.
    """
    secure = [
        rfm_th
        for rfm_th in candidate_thresholds
        if all(
            prfm_max_activations(rfm_th, r1, params) < nrh for r1 in row_set_sizes
        )
    ]
    if not secure:
        raise ValueError(f"PRFM cannot be configured securely for N_RH={nrh}")
    return max(secure)


def secure_prac_backoff_threshold(
    nrh: int,
    nref: int,
    candidate_thresholds: Sequence[int] = DEFAULT_BACKOFF_THRESHOLDS,
    row_set_sizes: Sequence[int] = DEFAULT_ROW_SET_SIZES,
    params: SecurityParameters = DEFAULT_PARAMETERS,
) -> int:
    """Largest ``NBO`` that keeps the wave attack below ``N_RH`` for PRAC-N.

    Raises ``ValueError`` if no candidate threshold is secure (e.g. PRAC-1 at
    very low ``N_RH`` values, as the paper reports).
    """
    secure = [
        nbo
        for nbo in candidate_thresholds
        if all(
            prac_max_activations(nbo, nref, r1, params=params) < nrh
            for r1 in row_set_sizes
        )
    ]
    if not secure:
        raise ValueError(
            f"PRAC-{nref} cannot be configured securely for N_RH={nrh}"
        )
    return max(secure)


def minimum_secure_nrh_prac(
    nref: int,
    params: SecurityParameters = DEFAULT_PARAMETERS,
    row_set_sizes: Sequence[int] = DEFAULT_ROW_SET_SIZES,
) -> int:
    """Smallest ``N_RH`` at which PRAC-N can be configured securely.

    The paper reports this value to be 20 for PRAC-4 (a row can receive at
    most 19 activations when ``NBO = 1``).
    """
    worst = max(
        prac_max_activations(1, nref, r1, params=params) for r1 in row_set_sizes
    )
    return worst + 1


def minimum_secure_nrh_prfm(
    params: SecurityParameters = DEFAULT_PARAMETERS,
    candidate_thresholds: Sequence[int] = DEFAULT_RFM_THRESHOLDS,
    row_set_sizes: Sequence[int] = DEFAULT_ROW_SET_SIZES,
) -> int:
    """Smallest ``N_RH`` at which PRFM can be configured securely.

    PRFM's most aggressive candidate configuration is the smallest RFM
    threshold; the wave attack's worst case under that threshold plus one is
    the lowest ``N_RH`` for which :func:`secure_prfm_threshold` succeeds.
    """
    most_aggressive = min(candidate_thresholds)
    worst = max(
        prfm_max_activations(most_aggressive, r1, params) for r1 in row_set_sizes
    )
    return worst + 1


def minimum_secure_nrh_chronus(
    params: SecurityParameters = DEFAULT_PARAMETERS,
) -> int:
    """Smallest ``N_RH`` at which Chronus can be configured securely.

    Chronus needs ``NBO >= 1`` with ``NBO < N_RH - Anormal`` (§8), so the
    smallest workable threshold is ``Anormal + 2``.
    """
    return params.normal_traffic_activations_chronus + 2
