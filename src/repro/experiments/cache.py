"""Persistent, content-addressed simulation-result cache.

Every simulation the experiment harness runs is fully determined by its
:class:`~repro.experiments.sweep.SimJob` -- the complete
:class:`~repro.system.config.SystemConfig`, the applications of the mix, the
per-core access budget and the seed.  The cache therefore keys each
:class:`~repro.system.metrics.SimulationResult` by the SHA-256 digest of the
canonical JSON encoding of that description and stores the result as a small
JSON document on disk:

``<cache-dir>/<key[:2]>/<key>.json``

Two layers back the lookup:

1. an **in-memory layer** (always on), which guarantees that repeated
   lookups within one process return the *same* result object, and
2. an optional **on-disk layer**, which survives across processes so that
   re-running a figure benchmark or a CLI sweep is served without
   re-simulating anything.

Entries are written atomically (temp file + ``os.replace``) so a crashed or
interrupted run never leaves a half-written entry behind; a corrupted or
schema-incompatible entry is deleted and treated as a miss, so the cache is
self-healing.

Concurrency: the store is safe for many concurrent writer *processes* by
construction -- every entry lives in its own file and lands via an atomic
rename, so there is no read-modify-write window anywhere (a monolithic
single-JSON store would lose entries when two workers flush simultaneously;
``tests/test_result_cache_concurrency.py`` pins this property with a
multi-process stress test).  Sweep workers exploit it by streaming each finished result straight
to disk from the worker process (see
:meth:`~repro.experiments.sweep.SweepEngine.run_jobs`); the parent then
:meth:`~ResultCache.absorb`\\ s the result into its memory layer without
re-serialising anything.

A legacy *monolithic* cache file (``<cache-dir>/cache.json`` holding every
entry in one JSON object) is migrated into the sharded per-key layout the
first time the directory is opened; the original file is kept as
``cache.json.migrated`` for post-mortems.  Keys and
:data:`CACHE_SCHEMA_VERSION` are unchanged by the migration.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Dict, Iterator, Optional

from repro.system.config import SystemConfig
from repro.system.metrics import SimulationResult

#: Bump whenever the simulator's observable behaviour or the entry layout
#: changes; old entries are then treated as misses and rewritten.
#: 2: event-horizon engine (PR 4) -- time skips honour tREFI/tRRD/tFAW
#:    deadlines, the FR-FCFS cap resets on row closure, failed dispatches
#:    no longer mutate the LLC, finished cores replay deterministically.
CACHE_SCHEMA_VERSION = 2

#: Environment variable consulted for the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Name of the legacy monolithic store migrated on first open.
LEGACY_MONOLITHIC_NAME = "cache.json"


def default_cache_dir() -> str:
    """The cache directory used when none is given explicitly."""
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def config_payload(config: SystemConfig) -> Dict[str, object]:
    """A JSON-serialisable description of *every* field of a system config.

    Using ``dataclasses.asdict`` means a newly added config field
    automatically changes the cache key, so stale results can never be
    served for configs the old key function did not distinguish.
    """
    return dataclasses.asdict(config)


def job_key(payload: Dict[str, object]) -> str:
    """SHA-256 digest of the canonical JSON encoding of a job description."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Serialise a :class:`SimulationResult` to plain JSON types."""
    return dataclasses.asdict(result)


def result_from_dict(data: Dict[str, object]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` output."""
    fields = {f.name for f in dataclasses.fields(SimulationResult)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(f"unknown SimulationResult fields: {sorted(unknown)}")
    return SimulationResult(**data)


class ResultCache:
    """Two-layer (memory + optional disk) cache of simulation results."""

    def __init__(self, directory: Optional[str] = None) -> None:
        """Create a cache.

        Args:
            directory: on-disk location.  ``None`` keeps the cache purely in
                memory (the default for throwaway runners in unit tests).
        """
        self.directory = directory
        self._memory: Dict[str, SimulationResult] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.stores = 0
        self.corrupt_entries = 0
        # Outcome of the *first* lookup per key: repeated lookups of a job
        # within one run (e.g. aggregation after a batched execution) would
        # otherwise inflate the hit rate and hide whether a run was cold.
        self.unique_hits = 0
        self.unique_misses = 0
        self._seen_keys: set = set()
        #: Results inserted memory-only via :meth:`absorb` (already written
        #: to disk by a worker process).
        self.absorbed = 0
        self.migrated_entries = 0
        if self.directory is not None:
            self._migrate_monolithic()

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for ``key`` or None (counted as a miss)."""
        first_lookup = key not in self._seen_keys
        self._seen_keys.add(key)
        result = self._memory.get(key)
        if result is None:
            result = self._read_disk(key)
            if result is not None:
                self._memory[key] = result
                self.disk_hits += 1
        if result is not None:
            self.hits += 1
            if first_lookup:
                self.unique_hits += 1
            return result
        self.misses += 1
        if first_lookup:
            self.unique_misses += 1
        return None

    def put(
        self,
        key: str,
        result: SimulationResult,
        job_payload: Optional[Dict[str, object]] = None,
    ) -> None:
        """Store ``result`` under ``key`` in both layers.

        Args:
            key: content hash from :func:`job_key`.
            result: the simulation result to memoise.
            job_payload: the job description the key was derived from; stored
                alongside the result so cache entries are self-describing
                (useful for debugging and offline invalidation).
        """
        self._memory[key] = result
        if self.directory is None:
            return
        self._write_entry(key, result, job_payload)
        self.stores += 1

    def _write_entry(
        self,
        key: str,
        result: SimulationResult,
        job_payload: Optional[Dict[str, object]],
    ) -> None:
        """Atomically write one per-key entry file (concurrency-safe)."""
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "job": job_payload,
            "result": result_to_dict(result),
        }
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise

    def absorb(self, key: str, result: SimulationResult) -> None:
        """Insert a result into the memory layer only.

        Used for results a worker process already streamed to disk: the
        parent keeps the in-process object identity guarantee without
        re-serialising the entry.
        """
        self._memory[key] = result
        self.absorbed += 1

    # ------------------------------------------------------------------ #
    # Legacy monolithic-store migration
    # ------------------------------------------------------------------ #
    def _migrate_monolithic(self) -> None:
        """Split a legacy ``cache.json`` monolith into per-key shard files.

        Entries whose schema no longer matches are dropped (the standard
        self-healing rule); existing per-key files are never overwritten.
        The monolith is renamed to ``cache.json.migrated`` afterwards, so
        the migration runs exactly once even across concurrent openers
        (``os.replace`` is atomic; a racing loser simply finds nothing left
        to do).
        """
        assert self.directory is not None
        path = os.path.join(self.directory, LEGACY_MONOLITHIC_NAME)
        if not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                monolith = json.load(handle)
        except (OSError, ValueError):
            monolith = None
        if isinstance(monolith, dict):
            for key, entry in monolith.items():
                if not isinstance(entry, dict):
                    continue
                if entry.get("schema") != CACHE_SCHEMA_VERSION:
                    continue
                try:
                    result = result_from_dict(entry["result"])
                except (ValueError, TypeError, KeyError):
                    continue
                if not os.path.exists(self._entry_path(key)):
                    self._write_entry(key, result, entry.get("job"))
                    self.migrated_entries += 1
        try:
            os.replace(path, path + ".migrated")
        except OSError:
            pass

    def contains(self, key: str) -> bool:
        """True if ``key`` is cached; never mutates the hit/miss counters."""
        if key in self._memory:
            return True
        if self.directory is None:
            return False
        return os.path.exists(self._entry_path(key))

    # ------------------------------------------------------------------ #
    # Disk layer
    # ------------------------------------------------------------------ #
    def _entry_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def _read_disk(self, key: str) -> Optional[SimulationResult]:
        if self.directory is None:
            return None
        path = self._entry_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != CACHE_SCHEMA_VERSION:
                raise ValueError(f"schema {entry.get('schema')!r} != {CACHE_SCHEMA_VERSION}")
            if entry.get("key") != key:
                raise ValueError("entry key does not match its file name")
            return result_from_dict(entry["result"])
        except (OSError, ValueError, TypeError, KeyError):
            # Corrupted / truncated / stale-schema entry: drop it and let the
            # caller recompute, which rewrites a valid entry.
            self.corrupt_entries += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _iter_entry_paths(self) -> Iterator[str]:
        if self.directory is None or not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    yield os.path.join(shard_dir, name)

    # ------------------------------------------------------------------ #
    # Maintenance / reporting
    # ------------------------------------------------------------------ #
    def disk_entry_count(self) -> int:
        """Number of valid-looking entry files on disk."""
        return sum(1 for _ in self._iter_entry_paths())

    def clear(self) -> int:
        """Drop both layers; returns the number of disk entries removed."""
        self._memory.clear()
        # Cleared jobs must re-execute, so their next lookup counts fresh.
        self._seen_keys.clear()
        removed = 0
        for path in list(self._iter_entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def unique_lookups(self) -> int:
        """Distinct jobs looked up since this cache object was created."""
        return self.unique_hits + self.unique_misses

    def hit_rate(self) -> float:
        """Fraction of *unique* jobs served from the cache (0 when idle).

        A job's first lookup decides: repeated lookups of the same key
        within one run do not count, so a cold run reports 0% no matter how
        the caller interleaves batching and aggregation.
        """
        if self.unique_lookups == 0:
            return 0.0
        return self.unique_hits / self.unique_lookups

    def summary(self) -> str:
        """One-line, human-readable cache statistics."""
        location = self.directory or "memory-only"
        stored = self.stores + self.absorbed
        detail = f"{stored} stored"
        if self.absorbed:
            detail += f" ({self.absorbed} streamed by workers)"
        return (
            f"cache[{location}]: {self.unique_hits}/{self.unique_lookups} unique jobs "
            f"served ({self.hit_rate() * 100.0:.1f}% hit rate, {self.disk_hits} from disk, "
            f"{detail}, {self.corrupt_entries} corrupt entries recovered)"
        )
