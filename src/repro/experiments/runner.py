"""Experiment runner.

The runner executes the simulations behind the paper's evaluation figures:
for a set of workload mixes, mechanisms and RowHammer thresholds it

1. simulates every application alone on the baseline (no mitigation) system
   to obtain the ``IPC_alone`` values the weighted-speedup metric needs,
2. simulates every mix on the baseline system (the normalisation point), and
3. simulates every (mix, mechanism, N_RH) combination,

caching the baseline results so they are reused across mechanisms and
thresholds.  Experiments are scaled by ``accesses_per_core``: the paper runs
100 M instructions per core on a compute cluster; the default here is small
enough for a laptop while preserving the relative overheads (see
EXPERIMENTS.md for the exact budgets used for the recorded results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cpu.trace import Trace
from repro.system.config import SystemConfig, paper_system_config
from repro.system.metrics import (
    SimulationResult,
    max_slowdown,
    normalized_weighted_speedup,
    weighted_speedup,
)
from repro.system.simulator import simulate
from repro.workloads.mixes import WorkloadMix, build_mix_traces, workload_mixes
from repro.workloads.synthetic import generate_trace


@dataclass
class MechanismComparison:
    """Aggregated results of one (mechanism, N_RH) sweep point."""

    mechanism: str
    nrh: int
    normalized_weighted_speedups: List[float] = field(default_factory=list)
    normalized_energies: List[float] = field(default_factory=list)
    backoffs_per_mcycle: List[float] = field(default_factory=list)
    is_secure: bool = True

    @property
    def mean_normalized_ws(self) -> float:
        values = self.normalized_weighted_speedups
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_normalized_energy(self) -> float:
        values = self.normalized_energies
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_performance_overhead(self) -> float:
        """Average slowdown versus the no-mitigation baseline (0..1)."""
        return max(0.0, 1.0 - self.mean_normalized_ws)

    @property
    def max_performance_overhead(self) -> float:
        values = self.normalized_weighted_speedups
        if not values:
            return 0.0
        return max(0.0, 1.0 - min(values))


class ExperimentRunner:
    """Runs and caches the simulations of the performance experiments."""

    def __init__(
        self,
        base_config: Optional[SystemConfig] = None,
        accesses_per_core: int = 6000,
        seed: int = 0,
    ) -> None:
        self.base_config = base_config or paper_system_config()
        self.accesses_per_core = accesses_per_core
        self.seed = seed
        self._alone_ipc_cache: Dict[str, float] = {}
        self._baseline_cache: Dict[Tuple[str, ...], SimulationResult] = {}

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def _mix_traces(self, applications: Sequence[str]) -> List[Trace]:
        return build_mix_traces(
            applications,
            accesses_per_core=self.accesses_per_core,
            organization=self.base_config.organization,
            seed=self.seed,
        )

    def alone_ipc(self, application: str) -> float:
        """IPC of an application running alone on the baseline system."""
        if application in self._alone_ipc_cache:
            return self._alone_ipc_cache[application]
        config = self.base_config.with_overrides(
            num_cores=1, mechanism="None", attacker_cores=()
        )
        trace = generate_trace(
            application, num_accesses=self.accesses_per_core, seed=self.seed
        )
        result = simulate(config, [trace], workload_name=f"{application}-alone")
        ipc = result.core_ipcs[0]
        self._alone_ipc_cache[application] = ipc
        return ipc

    def baseline_result(self, applications: Sequence[str]) -> SimulationResult:
        """No-mitigation run of a mix (cached)."""
        key = tuple(applications)
        if key in self._baseline_cache:
            return self._baseline_cache[key]
        config = self.base_config.with_overrides(
            num_cores=len(applications), mechanism="None"
        )
        result = simulate(config, self._mix_traces(applications),
                          workload_name="+".join(applications))
        self._baseline_cache[key] = result
        return result

    def run_mix(
        self, applications: Sequence[str], mechanism: str, nrh: int
    ) -> SimulationResult:
        """Simulate a mix under one mechanism / threshold."""
        config = self.base_config.with_overrides(
            num_cores=len(applications), mechanism=mechanism, nrh=nrh
        )
        return simulate(config, self._mix_traces(applications),
                        workload_name="+".join(applications))

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def normalized_ws(
        self, applications: Sequence[str], result: SimulationResult
    ) -> float:
        """Normalised weighted speedup of ``result`` for a mix."""
        alone = [self.alone_ipc(app) for app in applications]
        baseline = self.baseline_result(applications)
        return normalized_weighted_speedup(result.core_ipcs, alone, baseline.core_ipcs)

    def normalized_energy(
        self, applications: Sequence[str], result: SimulationResult
    ) -> float:
        """Energy of ``result`` normalised to the no-mitigation baseline."""
        baseline = self.baseline_result(applications)
        if baseline.energy_nj <= 0:
            return 0.0
        return result.energy_nj / baseline.energy_nj

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def compare(
        self,
        mechanisms: Sequence[str],
        nrh_values: Sequence[int],
        mixes: Sequence[Sequence[str]],
    ) -> List[MechanismComparison]:
        """Run the full (mechanism x N_RH x mix) sweep and aggregate."""
        comparisons: List[MechanismComparison] = []
        for mechanism in mechanisms:
            for nrh in nrh_values:
                comparison = MechanismComparison(mechanism=mechanism, nrh=nrh)
                for applications in mixes:
                    result = self.run_mix(applications, mechanism, nrh)
                    comparison.normalized_weighted_speedups.append(
                        self.normalized_ws(applications, result)
                    )
                    comparison.normalized_energies.append(
                        self.normalized_energy(applications, result)
                    )
                    comparison.backoffs_per_mcycle.append(
                        result.backoffs_per_million_cycles()
                    )
                    comparison.is_secure = comparison.is_secure and result.is_secure
                comparisons.append(comparison)
        return comparisons

    def single_core_sweep(
        self,
        mechanisms: Sequence[str],
        nrh: int,
        applications: Sequence[str],
    ) -> Dict[str, Dict[str, float]]:
        """Per-application normalised performance (Fig. 7 style).

        Returns ``{mechanism: {application: normalized speedup}}``.
        """
        results: Dict[str, Dict[str, float]] = {}
        for mechanism in mechanisms:
            per_app: Dict[str, float] = {}
            for application in applications:
                result = self.run_mix([application], mechanism, nrh)
                per_app[application] = self.normalized_ws([application], result)
            results[mechanism] = per_app
        return results


def default_mixes(count: int, mix_types: Optional[Sequence[str]] = None, seed: int = 42) -> List[WorkloadMix]:
    """A deterministic subset of the paper's 60 mixes, spread across types."""
    all_mixes = workload_mixes(mixes_per_type=10, seed=seed)
    if mix_types is not None:
        all_mixes = [mix for mix in all_mixes if mix.mix_type in mix_types]
    if count >= len(all_mixes):
        return all_mixes
    # Round-robin across mix types so small counts stay representative.
    by_type: Dict[str, List[WorkloadMix]] = {}
    for mix in all_mixes:
        by_type.setdefault(mix.mix_type, []).append(mix)
    selected: List[WorkloadMix] = []
    index = 0
    while len(selected) < count:
        for mixes_of_type in by_type.values():
            if index < len(mixes_of_type) and len(selected) < count:
                selected.append(mixes_of_type[index])
        index += 1
    return selected
