"""Experiment runner: a thin, metric-aware consumer of the sweep engine.

The runner aggregates the simulations behind the paper's evaluation figures:
for a set of workload mixes, mechanisms and RowHammer thresholds it needs

1. every application alone on the baseline (no mitigation) system to obtain
   the ``IPC_alone`` values the weighted-speedup metric needs,
2. every mix on the baseline system (the normalisation point), and
3. every (mix, mechanism, N_RH) combination.

All three kinds of run are expressed as :class:`~repro.experiments.sweep.SimJob`
objects and executed by a :class:`~repro.experiments.sweep.SweepEngine`, which
memoises each result -- keyed by the *full* system configuration, access
budget and seed -- in a :class:`~repro.experiments.cache.ResultCache` and can
fan the independent jobs out across worker processes.  Repeated sweeps (and
different figures sharing baselines) therefore re-simulate nothing.

Experiments are scaled by ``accesses_per_core``: the paper runs 100 M
instructions per core on a compute cluster; the default here is small enough
for a laptop while preserving the relative overheads (see docs/EXPERIMENTS.md
for the exact budgets used for the recorded results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.sweep import (
    SweepEngine,
    SweepSpec,
    alone_job,
    baseline_job,
    mechanism_job,
)
from repro.system.config import SystemConfig, paper_system_config
from repro.system.metrics import (
    SimulationResult,
    normalized_weighted_speedup,
)
from repro.workloads.mixes import WorkloadMix, workload_mixes


@dataclass
class MechanismComparison:
    """Aggregated results of one (mechanism, N_RH) sweep point."""

    mechanism: str
    nrh: int
    normalized_weighted_speedups: List[float] = field(default_factory=list)
    normalized_energies: List[float] = field(default_factory=list)
    backoffs_per_mcycle: List[float] = field(default_factory=list)
    is_secure: bool = True

    @property
    def mean_normalized_ws(self) -> float:
        values = self.normalized_weighted_speedups
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_normalized_energy(self) -> float:
        values = self.normalized_energies
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_performance_overhead(self) -> float:
        """Average slowdown versus the no-mitigation baseline (0..1)."""
        return max(0.0, 1.0 - self.mean_normalized_ws)

    @property
    def max_performance_overhead(self) -> float:
        values = self.normalized_weighted_speedups
        if not values:
            return 0.0
        return max(0.0, 1.0 - min(values))


class ExperimentRunner:
    """Builds jobs, delegates execution to the engine, aggregates metrics."""

    def __init__(
        self,
        base_config: Optional[SystemConfig] = None,
        accesses_per_core: int = 6000,
        seed: int = 0,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
        engine: Optional[SweepEngine] = None,
    ) -> None:
        """Create a runner.

        Args:
            base_config: system configuration every job derives from.
            accesses_per_core: memory accesses generated per core.
            seed: base seed for trace generation.
            cache: result cache for a newly created engine (ignored when
                ``engine`` is given).
            workers: worker-process count for a newly created engine.
            engine: share an existing engine (and therefore its cache)
                across runners, e.g. between figures of one benchmark run.
        """
        self.base_config = base_config or paper_system_config()
        self.accesses_per_core = accesses_per_core
        self.seed = seed
        self.engine = engine if engine is not None else SweepEngine(
            cache=cache, workers=workers
        )

    # ------------------------------------------------------------------ #
    # Building blocks
    # ------------------------------------------------------------------ #
    def alone_ipc(self, application: str) -> float:
        """IPC of an application running alone on the baseline system."""
        job = alone_job(self.base_config, application, self.accesses_per_core, self.seed)
        return self.engine.run_job(job).core_ipcs[0]

    def baseline_result(self, applications: Sequence[str]) -> SimulationResult:
        """No-mitigation run of a mix (cached, keyed by the full config)."""
        job = baseline_job(self.base_config, applications, self.accesses_per_core, self.seed)
        return self.engine.run_job(job)

    def run_mix(
        self, applications: Sequence[str], mechanism: str, nrh: int
    ) -> SimulationResult:
        """Simulate a mix under one mechanism / threshold."""
        job = mechanism_job(
            self.base_config, applications, mechanism, nrh,
            self.accesses_per_core, self.seed,
        )
        return self.engine.run_job(job)

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def normalized_ws(
        self, applications: Sequence[str], result: SimulationResult
    ) -> float:
        """Normalised weighted speedup of ``result`` for a mix."""
        alone = [self.alone_ipc(app) for app in applications]
        baseline = self.baseline_result(applications)
        return normalized_weighted_speedup(result.core_ipcs, alone, baseline.core_ipcs)

    def normalized_energy(
        self, applications: Sequence[str], result: SimulationResult
    ) -> float:
        """Energy of ``result`` normalised to the no-mitigation baseline."""
        baseline = self.baseline_result(applications)
        if baseline.energy_nj <= 0:
            return 0.0
        return result.energy_nj / baseline.energy_nj

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def sweep_spec(
        self,
        mechanisms: Sequence[str],
        nrh_values: Sequence[int],
        mixes: Sequence[Sequence[str]],
    ) -> SweepSpec:
        """The declarative sweep this runner's parameters imply."""
        return SweepSpec(
            mechanisms=tuple(mechanisms),
            nrh_values=tuple(nrh_values),
            mixes=tuple(tuple(mix) for mix in mixes),
            accesses_per_core=self.accesses_per_core,
            seed=self.seed,
            base_config=self.base_config,
        )

    def compare(
        self,
        mechanisms: Sequence[str],
        nrh_values: Sequence[int],
        mixes: Sequence[Sequence[str]],
    ) -> List[MechanismComparison]:
        """Run the full (mechanism x N_RH x mix) sweep and aggregate."""
        spec = self.sweep_spec(mechanisms, nrh_values, mixes)
        # One batched engine call executes every missing job (in parallel if
        # the engine has workers); the per-point lookups below are all hits.
        self.engine.run(spec)
        return [
            self._comparison(mechanism, nrh, spec.mixes)
            for mechanism in spec.mechanisms
            for nrh in spec.nrh_values
        ]

    def _comparison(
        self, mechanism: str, nrh: int, mixes: Sequence[Sequence[str]]
    ) -> MechanismComparison:
        """Aggregate one (mechanism, N_RH) point over its mixes."""
        comparison = MechanismComparison(mechanism=mechanism, nrh=nrh)
        for applications in mixes:
            result = self.run_mix(applications, mechanism, nrh)
            comparison.normalized_weighted_speedups.append(
                self.normalized_ws(applications, result)
            )
            comparison.normalized_energies.append(
                self.normalized_energy(applications, result)
            )
            comparison.backoffs_per_mcycle.append(
                result.backoffs_per_million_cycles()
            )
            comparison.is_secure = comparison.is_secure and result.is_secure
        return comparison

    def single_core_sweep(
        self,
        mechanisms: Sequence[str],
        nrh: int,
        applications: Sequence[str],
    ) -> Dict[str, Dict[str, float]]:
        """Per-application normalised performance (Fig. 7 style).

        Returns ``{mechanism: {application: normalized speedup}}``.
        """
        spec = self.sweep_spec(mechanisms, [nrh], [(app,) for app in applications])
        self.engine.run(spec)
        return {
            mechanism: {
                application: self.normalized_ws(
                    [application], self.run_mix([application], mechanism, nrh)
                )
                for application in applications
            }
            for mechanism in mechanisms
        }


def default_mixes(count: int, mix_types: Optional[Sequence[str]] = None, seed: int = 42) -> List[WorkloadMix]:
    """A deterministic subset of the paper's 60 mixes, spread across types."""
    all_mixes = workload_mixes(mixes_per_type=10, seed=seed)
    if mix_types is not None:
        all_mixes = [mix for mix in all_mixes if mix.mix_type in mix_types]
    if count >= len(all_mixes):
        return all_mixes
    # Round-robin across mix types so small counts stay representative.
    by_type: Dict[str, List[WorkloadMix]] = {}
    for mix in all_mixes:
        by_type.setdefault(mix.mix_type, []).append(mix)
    selected: List[WorkloadMix] = []
    index = 0
    while len(selected) < count:
        for mixes_of_type in by_type.values():
            if index < len(mixes_of_type) and len(selected) < count:
                selected.append(mixes_of_type[index])
        index += 1
    return selected
