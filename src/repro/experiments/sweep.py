"""Declarative sweep engine: expand, execute (in parallel), and memoise.

The paper's evaluation is a Cartesian sweep -- (workload mix x mechanism x
RowHammer threshold) -- plus the baseline runs the weighted-speedup metric
needs.  This module turns such a sweep into data:

* :class:`SimJob` -- one self-contained simulation: a fully resolved
  :class:`~repro.system.config.SystemConfig`, the applications of the mix,
  the per-core access budget and the seed.  Jobs are immutable, picklable
  and content-addressed (:attr:`SimJob.key`), so they can be shipped to
  worker processes and memoised on disk.
* :class:`SweepSpec` -- the declarative description of a sweep
  (mechanisms, N_RH values, mixes, budget, seed, base config) that
  :meth:`~SweepSpec.expand`\\ s into the set of independent jobs, including
  the per-application *alone* runs and per-mix no-mitigation *baseline*
  runs shared by every sweep point.
* :class:`SweepEngine` -- executes jobs serially, across worker processes
  (``concurrent.futures.ProcessPoolExecutor``), or through the in-process
  batch-vectorized engine (:mod:`repro.experiments.batch`), and memoises
  every result in a :class:`~repro.experiments.cache.ResultCache`.

Beyond the Cartesian sweep, :func:`attack_job` builds the §11 performance
attack runs and :func:`attack_search_job` builds the red-team probes of
:mod:`repro.attacks` (a synthesised attack pattern simulated under a
ground-truth disturbance oracle).

Determinism: a job's traces are regenerated inside the worker from
``(applications, accesses_per_core, seed, organization)``, and every random
decision in the simulator is seeded from the job itself, so the same spec
produces byte-identical results regardless of worker count or execution
order.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import threading
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.oracle import DisturbanceOracle
from repro.attacks.patterns import AttackSpec, performance_attack_trace
from repro.core.factory import MECHANISM_NAMES
from repro.cpu.trace import Trace
from repro.experiments.cache import ResultCache, config_payload, job_key
from repro.system.config import SystemConfig, paper_system_config
from repro.system.metrics import SimulationResult
from repro.system.simulator import simulate
from repro.workloads.mixes import build_mix_traces

#: Environment variable read for the default worker count (0/1 = serial).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Target number of shards per worker: more shards than workers is what
#: makes the pool self-balancing (an idle worker steals the next shard from
#: the shared queue), while sharding at all amortises pickling and process
#: dispatch for very cheap jobs.
SHARDS_PER_WORKER = 4


def auto_workers() -> int:
    """A sensible parallel worker count for this machine (capped at 8)."""
    return max(1, min(8, os.cpu_count() or 1))


def default_workers(auto: bool = False) -> int:
    """Worker-process count used when none is given explicitly.

    ``$REPRO_SWEEP_WORKERS`` always wins.  Without it, the default is
    serial (0) for programmatic :class:`SweepEngine` construction -- unit
    tests and library users must opt in to multiprocessing -- while the CLI
    passes ``auto=True`` to default to :func:`auto_workers`.

    An unparsable ``$REPRO_SWEEP_WORKERS`` raises :class:`ValueError`
    naming the offending text (it used to silently degrade to serial,
    hiding typos like ``REPRO_SWEEP_WORKERS=eight``); negative values are
    clamped to 0 (serial), matching the engine's "below 2 means serial"
    contract.
    """
    env = os.environ.get(WORKERS_ENV)
    if env is not None:
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer worker count, "
                f"got {env!r}"
            ) from None
        return max(0, workers)
    return auto_workers() if auto else 0


# --------------------------------------------------------------------------- #
# Cooperative cancellation and progress streaming
# --------------------------------------------------------------------------- #

#: Progress callback: receives one JSON-serialisable event dict per
#: milestone of a :meth:`SweepEngine.run_jobs` call (``plan`` / ``job`` /
#: ``shard`` / ``report``).  Callbacks run on the engine's calling thread
#: and must not raise.
ProgressFn = Callable[[Dict[str, object]], None]


class CancelToken:
    """Cooperative cancellation flag, safe to share across threads.

    The long-running consumer (:meth:`SweepEngine.run_jobs`) polls the
    token between jobs / shard completions; any thread may :meth:`cancel`
    it.  Cancellation is cooperative -- a simulation that is already
    executing runs to completion and its result still lands in the cache,
    so cancelled work is never wasted on resubmission.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class SweepCancelled(RuntimeError):
    """Raised by :meth:`SweepEngine.run_jobs` when its token fires.

    ``report`` carries the :class:`RunReport` of the work completed before
    the cancellation point (every finished result is already cached).
    """

    def __init__(self, report: "RunReport") -> None:
        super().__init__(
            f"sweep cancelled after {len(report.shards)} unit(s) of work"
        )
        self.report = report


# --------------------------------------------------------------------------- #
# Jobs
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SimJob:
    """One independent simulation of a sweep.

    Attributes:
        config: fully resolved system configuration (mechanism, N_RH and
            ``num_cores`` already applied).
        applications: application name per benign core, in core order.
        accesses_per_core: memory accesses generated per benign core.
        seed: base seed for trace generation (each core uses ``seed + slot``).
        workload_name: label recorded in the result; *not* part of the cache
            key, so cosmetically different names share one simulation.
        attack_accesses: when positive, core 0 runs the §11 memory
            performance attack trace with this many accesses and the benign
            applications occupy the remaining cores.
        attack: when set (an :class:`~repro.attacks.patterns.AttackSpec`),
            core 0 runs the compiled attack pattern and the simulation is
            observed by a ground-truth disturbance oracle whose ``oracle_*``
            statistics land in the result's ``mitigation_stats`` -- the job
            kind behind ``python -m repro attack search``.
    """

    config: SystemConfig
    applications: Tuple[str, ...]
    accesses_per_core: int
    seed: int = 0
    workload_name: str = ""
    attack_accesses: int = 0
    attack: Optional[AttackSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "applications", tuple(self.applications))
        if self.attack_accesses and self.attack is not None:
            raise ValueError("attack_accesses and attack are mutually exclusive")
        has_attacker = bool(self.attack_accesses) or self.attack is not None
        expected_cores = len(self.applications) + (1 if has_attacker else 0)
        if expected_cores != self.config.num_cores:
            raise ValueError(
                f"job provides {expected_cores} traces but the config has "
                f"{self.config.num_cores} cores"
            )
        if self.accesses_per_core <= 0:
            raise ValueError("accesses_per_core must be positive")

    def cache_payload(self) -> Dict[str, object]:
        """The job description the cache key is derived from."""
        payload: Dict[str, object] = {
            "config": config_payload(self.config),
            "applications": list(self.applications),
            "accesses_per_core": self.accesses_per_core,
            "seed": self.seed,
            "attack_accesses": self.attack_accesses,
        }
        # Only attack-search jobs carry the spec, so the keys of every
        # pre-existing job kind (and their on-disk cache entries) are stable.
        if self.attack is not None:
            payload["attack"] = self.attack.as_payload()
        return payload

    @property
    def key(self) -> str:
        """Content hash identifying this simulation."""
        return job_key(self.cache_payload())

    @property
    def label(self) -> str:
        """Short human-readable description (CLI / dry-run listings)."""
        name = self.workload_name or "+".join(self.applications)
        return f"{name} [{self.config.mechanism}@{self.config.nrh}]"


def alone_job(
    base_config: SystemConfig,
    application: str,
    accesses_per_core: int,
    seed: int = 0,
) -> SimJob:
    """The single-core, no-mitigation run that yields ``IPC_alone``."""
    config = base_config.with_overrides(
        num_cores=1, mechanism="None", attacker_cores=()
    )
    return SimJob(
        config=config,
        applications=(application,),
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=f"{application}-alone",
    )


def baseline_job(
    base_config: SystemConfig,
    applications: Sequence[str],
    accesses_per_core: int,
    seed: int = 0,
) -> SimJob:
    """The no-mitigation run of a mix (the normalisation point)."""
    applications = tuple(applications)
    config = base_config.with_overrides(
        num_cores=len(applications), mechanism="None"
    )
    return SimJob(
        config=config,
        applications=applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name="+".join(applications),
    )


def mechanism_job(
    base_config: SystemConfig,
    applications: Sequence[str],
    mechanism: str,
    nrh: int,
    accesses_per_core: int,
    seed: int = 0,
    workload_name: Optional[str] = None,
) -> SimJob:
    """A mix simulated under one (mechanism, N_RH) sweep point."""
    applications = tuple(applications)
    config = base_config.with_overrides(
        num_cores=len(applications), mechanism=mechanism, nrh=nrh
    )
    return SimJob(
        config=config,
        applications=applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=workload_name or "+".join(applications),
    )


def attack_job(
    base_config: SystemConfig,
    benign_applications: Sequence[str],
    mechanism: str,
    nrh: int,
    accesses_per_core: int,
    attack_accesses: int,
    seed: int = 0,
    workload_name: Optional[str] = None,
) -> SimJob:
    """The §11 performance attack: one attacker core + benign cores."""
    benign_applications = tuple(benign_applications)
    config = base_config.with_overrides(
        num_cores=len(benign_applications) + 1,
        mechanism=mechanism,
        nrh=nrh,
        attacker_cores=(0,),
    )
    return SimJob(
        config=config,
        applications=benign_applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=workload_name or "attack+" + "+".join(benign_applications),
        attack_accesses=attack_accesses,
    )


def attack_search_job(
    base_config: SystemConfig,
    mechanism: str,
    nrh: int,
    attack: AttackSpec,
    benign_applications: Sequence[str] = (),
    accesses_per_core: int = 1,
    seed: int = 0,
    workload_name: Optional[str] = None,
) -> SimJob:
    """A red-team probe: one attack pattern against one (mechanism, N_RH).

    Core 0 runs the compiled attack trace (bypassing the LLC, like the §11
    attacker); optional benign applications occupy the remaining cores.  The
    executed simulation attaches a
    :class:`~repro.attacks.oracle.DisturbanceOracle`, so the cached result
    reports ground-truth ``oracle_*`` disturbance statistics.
    """
    benign_applications = tuple(benign_applications)
    config = base_config.with_overrides(
        num_cores=len(benign_applications) + 1,
        mechanism=mechanism,
        nrh=nrh,
        attacker_cores=(0,),
    )
    return SimJob(
        config=config,
        applications=benign_applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=workload_name or f"{attack.label} vs {mechanism}@{nrh}",
        attack=attack,
    )


def build_job_traces(job: SimJob) -> List[Trace]:
    """Regenerate the per-core traces of a job (deterministic)."""
    traces: List[Trace] = []
    if job.attack_accesses:
        traces.append(
            performance_attack_trace(
                num_accesses=job.attack_accesses,
                organization=job.config.organization,
                seed=job.seed,
            )
        )
    if job.attack is not None:
        traces.append(job.attack.compile(organization=job.config.organization))
    if job.applications:
        traces.extend(
            build_mix_traces(
                job.applications,
                accesses_per_core=job.accesses_per_core,
                organization=job.config.organization,
                seed=job.seed,
            )
        )
    return traces


def execute_job(job: SimJob) -> SimulationResult:
    """Run one job to completion (also the worker-process entry point)."""
    oracle = None
    if job.attack is not None:
        oracle = DisturbanceOracle(
            nrh=job.config.nrh,
            blast_radius=job.config.blast_radius,
            num_channels=job.config.organization.channels,
        )
    return simulate(
        job.config,
        build_job_traces(job),
        workload_name=job.workload_name,
        oracle=oracle,
    )


# --------------------------------------------------------------------------- #
# Cost model, shards and the worker entry point
# --------------------------------------------------------------------------- #

#: Relative per-access weight of each mechanism family, measured on the
#: bench_hotpath reference set (PRAC-timing mechanisms simulate more cycles
#: per access; PARA/PRFM serve extra maintenance traffic).  The estimate
#: only needs to *rank* jobs so that long ones are dispatched first.
_MECHANISM_COST = {
    "None": 1.0,
    "Chronus": 1.05,
    "Chronus-PB": 1.05,
    "Graphene": 1.05,
    "Hydra": 1.1,
    "ABACuS": 1.05,
    "PARA": 1.25,
    "PRFM": 1.2,
    "PRAC-1": 1.15,
    "PRAC-2": 1.15,
    "PRAC-4": 1.15,
    "PRAC+PRFM": 1.3,
}


def estimate_job_cost(job: SimJob) -> float:
    """Relative wall-clock estimate of one job (unitless).

    Dominated by the total access count across cores; attack-search probes
    weigh extra because the compiled patterns hammer the row buffer (few
    hits, many conflicts) and run under a disturbance oracle.
    """
    accesses = job.accesses_per_core * max(1, len(job.applications))
    if job.attack_accesses:
        accesses += job.attack_accesses
    cost = float(max(1, accesses))
    if job.attack is not None:
        cost *= 4.0
    cost *= _MECHANISM_COST.get(job.config.mechanism, 1.1)
    cost *= job.config.organization.channels ** 0.5
    return cost


def build_shards(jobs: Sequence[SimJob], workers: int) -> List[List[SimJob]]:
    """Split ``jobs`` into cost-balanced shards, most expensive first.

    Longest-processing-time order: jobs are sorted by estimated cost
    descending (key as a deterministic tie-break) and packed greedily into
    shards of roughly ``total / (workers * SHARDS_PER_WORKER)`` cost.  Any
    job at least that expensive gets a shard of its own, so a long
    attack-search probe can never straggle behind a batch of cheap
    baselines -- idle workers steal the remaining shards from the pool's
    shared queue.
    """
    if not jobs:
        return []
    # Decorate once: the estimate is pure, so compute it one time per job.
    costed = sorted(
        ((estimate_job_cost(job), job) for job in jobs),
        key=lambda pair: (-pair[0], pair[1].key),
    )
    total = sum(cost for cost, _ in costed)
    target = total / max(1, workers * SHARDS_PER_WORKER)
    shards: List[List[SimJob]] = []
    current: List[SimJob] = []
    current_cost = 0.0
    for cost, job in costed:
        if current and current_cost + cost > target:
            shards.append(current)
            current = []
            current_cost = 0.0
        current.append(job)
        current_cost += cost
    if current:
        shards.append(current)
    return shards


def execute_shard(
    jobs: Sequence[SimJob], cache_dir: Optional[str]
) -> Tuple[float, List[SimulationResult]]:
    """Worker-process entry point: run a shard, streaming results to disk.

    Each finished result is written straight into the sharded per-key cache
    from the worker (atomic per-entry files, so N workers never serialize
    on a shared store); the parent only absorbs the returned objects into
    its memory layer.  Returns ``(elapsed_seconds, results)`` in job order.
    """
    start = time.perf_counter()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: List[SimulationResult] = []
    for job in jobs:
        result = execute_job(job)
        if cache is not None:
            cache.put(job.key, result, job.cache_payload())
        results.append(result)
    return time.perf_counter() - start, results


@dataclass(frozen=True)
class ShardReport:
    """Timing record of one executed shard."""

    shard: int
    jobs: int
    estimated_cost: float
    seconds: float


@dataclass
class RunReport:
    """What one :meth:`SweepEngine.run_jobs` call actually did."""

    total_jobs: int = 0
    cached_jobs: int = 0
    executed_jobs: int = 0
    workers: int = 0
    batch: bool = False
    wall_seconds: float = 0.0
    shards: List[ShardReport] = field(default_factory=list)

    @property
    def engine_mode(self) -> str:
        """Which execution mode ran the missing jobs."""
        if self.executed_jobs == 0:
            return "cached"
        if self.batch:
            return "batch"
        return "pool" if self.workers >= 2 else "serial"

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this run's jobs served from the cache."""
        if self.total_jobs == 0:
            return 0.0
        return self.cached_jobs / self.total_jobs

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable report.

        The one serialization the service streams over WebSocket, the CLI
        writes with ``--report-json`` and the benchmarks record -- so every
        consumer agrees on field names.
        """
        return {
            "total_jobs": self.total_jobs,
            "cached_jobs": self.cached_jobs,
            "executed_jobs": self.executed_jobs,
            "workers": self.workers,
            "engine": self.engine_mode,
            "batch": self.batch,
            "wall_seconds": self.wall_seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "shards": [dataclasses.asdict(shard) for shard in self.shards],
        }

    def summary_lines(self) -> List[str]:
        """Human-readable per-shard timing block (CLI output)."""
        engine = "engine=batch" if self.batch else f"workers={self.workers}"
        label = "batch group" if self.batch else "shard"
        lines = [
            f"run: {self.total_jobs} jobs ({self.cached_jobs} cached, "
            f"{self.executed_jobs} executed, {engine}) "
            f"in {self.wall_seconds:.2f}s"
        ]
        for report in self.shards:
            lines.append(
                f"  {label} {report.shard:>3}: {report.jobs:>3} job(s)  "
                f"{report.seconds:7.2f}s  (est. cost {report.estimated_cost:,.0f})"
            )
        return lines


# --------------------------------------------------------------------------- #
# Sweep specification
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a (mechanism x N_RH x mix) sweep."""

    mechanisms: Tuple[str, ...]
    nrh_values: Tuple[int, ...]
    mixes: Tuple[Tuple[str, ...], ...]
    accesses_per_core: int = 4000
    seed: int = 0
    base_config: Optional[SystemConfig] = None
    include_alone: bool = True
    include_baselines: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "mechanisms", tuple(self.mechanisms))
        object.__setattr__(self, "nrh_values", tuple(self.nrh_values))
        object.__setattr__(
            self, "mixes", tuple(tuple(mix) for mix in self.mixes)
        )
        for mechanism in self.mechanisms:
            if mechanism not in MECHANISM_NAMES:
                raise ValueError(
                    f"unknown mechanism {mechanism!r}; expected one of {MECHANISM_NAMES}"
                )
        if any(nrh <= 0 for nrh in self.nrh_values):
            raise ValueError("every N_RH value must be positive")
        if any(not mix for mix in self.mixes):
            raise ValueError("every mix needs at least one application")
        if self.accesses_per_core <= 0:
            raise ValueError("accesses_per_core must be positive")

    def resolved_base_config(self) -> SystemConfig:
        return self.base_config if self.base_config is not None else paper_system_config()

    @property
    def applications(self) -> Tuple[str, ...]:
        """Distinct applications across all mixes, in first-seen order."""
        seen: Dict[str, None] = {}
        for mix in self.mixes:
            for application in mix:
                seen.setdefault(application, None)
        return tuple(seen)

    def num_points(self) -> int:
        """Number of (mechanism, N_RH, mix) sweep points."""
        return len(self.mechanisms) * len(self.nrh_values) * len(self.mixes)

    def alone_jobs(self) -> List[SimJob]:
        base = self.resolved_base_config()
        return [
            alone_job(base, application, self.accesses_per_core, self.seed)
            for application in self.applications
        ]

    def baseline_jobs(self) -> List[SimJob]:
        base = self.resolved_base_config()
        return [
            baseline_job(base, mix, self.accesses_per_core, self.seed)
            for mix in self.mixes
        ]

    def mechanism_jobs(self) -> List[SimJob]:
        base = self.resolved_base_config()
        return [
            mechanism_job(base, mix, mechanism, nrh, self.accesses_per_core, self.seed)
            for mechanism in self.mechanisms
            for nrh in self.nrh_values
            for mix in self.mixes
        ]

    def expand(self) -> List[SimJob]:
        """All jobs of the sweep, deduplicated by content key.

        Alone and baseline runs come first so that, under parallel
        execution, the normalisation points are available as early as
        possible.
        """
        jobs: List[SimJob] = []
        if self.include_alone:
            jobs.extend(self.alone_jobs())
        if self.include_baselines:
            jobs.extend(self.baseline_jobs())
        jobs.extend(self.mechanism_jobs())
        unique: Dict[str, SimJob] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        return list(unique.values())


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #

#: Engines whose persistent pool has been started.  Weak references, so an
#: engine that is garbage-collected (its ``ProcessPoolExecutor`` reaps its
#: workers on finalisation) never lingers here; the atexit hook closes the
#: survivors so an interrupted run (Ctrl-C mid-sweep, server stop) cannot
#: leak worker processes.
_LIVE_ENGINES: "weakref.WeakSet[SweepEngine]" = weakref.WeakSet()


def shutdown_live_engines() -> int:
    """Close every engine with a live pool; returns how many were closed.

    Registered with :mod:`atexit`; also callable directly (signal handlers,
    tests).  Idempotent: :meth:`SweepEngine.close` tolerates repeats.
    """
    closed = 0
    for engine in list(_LIVE_ENGINES):
        if engine._pool is not None:
            engine.close()
            closed += 1
    return closed


atexit.register(shutdown_live_engines)


class SweepEngine:
    """Executes :class:`SimJob`\\ s with memoisation and optional parallelism.

    Parallel execution keeps one **persistent** process pool alive across
    ``run()`` / ``run_jobs()`` calls (spawning workers costs ~100 ms each;
    iterative users -- the red-team bisection, figure benchmarks -- call the
    engine many times).  Missing jobs are packed into cost-estimated shards
    dispatched longest-first, and since several shards exist per worker the
    pool self-balances: a worker finishing a cheap shard steals the next one
    instead of idling behind a long attack-search job.  Workers stream every
    finished result into the on-disk cache themselves (atomic per-key
    files), so result persistence never serialises on the parent.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
        batch: bool = False,
    ) -> None:
        """Create an engine.

        Args:
            cache: result cache; a fresh memory-only cache when omitted.
            workers: worker-process count; ``None`` reads the
                ``REPRO_SWEEP_WORKERS`` environment variable (serial when
                unset), and values below 2 execute serially in-process.
            batch: execute missing jobs through the in-process
                batch-vectorized engine (:mod:`repro.experiments.batch`)
                instead of the serial/pooled scalar engine.  Results are
                byte-identical either way; batch mode wins on single-CPU
                machines, where process workers only add overhead.
        """
        self.cache = cache if cache is not None else ResultCache()
        self.workers = default_workers() if workers is None else workers
        self.batch = batch
        self.executed_jobs = 0
        #: Report of the most recent :meth:`run_jobs` call.
        self.last_run_report = RunReport()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Return the persistent pool, (re)creating it on first use or
        after a worker-count change."""
        if self._pool is None or self._pool_workers != self.workers:
            self.close()
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._pool_workers = self.workers
            _LIVE_ENGINES.add(self)
        return self._pool

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_job(self, job: SimJob) -> SimulationResult:
        """Run (or fetch) a single job."""
        result = self.cache.get(job.key)
        if result is None:
            result = execute_job(job)
            self.executed_jobs += 1
            self.cache.put(job.key, result, job.cache_payload())
        return result

    def run_jobs(
        self,
        jobs: Sequence[SimJob],
        batch: Optional[bool] = None,
        progress: Optional[ProgressFn] = None,
        cancel: Optional[CancelToken] = None,
    ) -> Dict[str, SimulationResult]:
        """Run a batch of jobs, returning ``{job.key: result}``.

        Cached jobs are served immediately; the remainder executes in one
        of three interchangeable modes -- serially, across the persistent
        worker pool (cost-balanced shards, longest first), or through the
        in-process batch-vectorized engine (``batch``; defaults to the
        engine's ``batch`` setting).  The result mapping is byte-identical
        and independent of execution order, worker count and mode.

        ``progress`` receives JSON-serialisable event dicts as the run
        advances: one ``plan`` event up front (totals, cache hits, mode),
        a ``job`` event per job executed in-process (serial/batch modes), a
        ``shard`` event per completed unit of work, and a final ``report``
        event mirroring :meth:`RunReport.as_dict`.  ``cancel`` is polled
        between jobs / shard completions; when it fires the engine raises
        :class:`SweepCancelled` (carrying the partial report) -- every
        result finished up to that point is already in the cache, so a
        resubmission resumes instead of recomputing.
        """
        start = time.perf_counter()
        unique: Dict[str, SimJob] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        results: Dict[str, SimulationResult] = {}
        missing: List[SimJob] = []
        for key, job in unique.items():
            cached = self.cache.get(key)
            if cached is not None:
                results[key] = cached
            else:
                missing.append(job)
        report = RunReport(
            total_jobs=len(unique),
            cached_jobs=len(unique) - len(missing),
            workers=self.workers,
        )
        use_batch = self.batch if batch is None else batch
        if progress is not None:
            mode = "cached"
            if missing:
                mode = "batch" if use_batch else (
                    "pool" if self.workers >= 2 and len(missing) > 1 else "serial"
                )
            progress(
                {
                    "event": "plan",
                    "total_jobs": len(unique),
                    "cached_jobs": len(unique) - len(missing),
                    "missing_jobs": len(missing),
                    "mode": mode,
                    "workers": self.workers,
                }
            )
        if missing:
            report.batch = use_batch
            self._check_cancel(cancel, report)
            if use_batch:
                self._run_batch(missing, results, report, progress, cancel)
            elif self.workers >= 2 and len(missing) > 1:
                self._run_sharded(missing, results, report, progress, cancel)
            else:
                self._run_serial(missing, results, report, progress, cancel)
            report.executed_jobs = len(missing)
        report.wall_seconds = time.perf_counter() - start
        self.last_run_report = report
        if progress is not None:
            progress({"event": "report", "report": report.as_dict()})
        return results

    @staticmethod
    def _check_cancel(cancel: Optional[CancelToken], report: RunReport) -> None:
        if cancel is not None and cancel.cancelled:
            raise SweepCancelled(report)

    @staticmethod
    def _emit_job(
        progress: Optional[ProgressFn],
        job: SimJob,
        seconds: float,
        done: int,
        missing: int,
    ) -> None:
        if progress is None:
            return
        progress(
            {
                "event": "job",
                "key": job.key,
                "label": job.label,
                "mechanism": job.config.mechanism,
                "nrh": job.config.nrh,
                "seconds": seconds,
                "done_jobs": done,
                "missing_jobs": missing,
            }
        )

    @staticmethod
    def _emit_shard(
        progress: Optional[ProgressFn],
        shard: ShardReport,
        done: int,
        missing: int,
    ) -> None:
        if progress is None:
            return
        event = {"event": "shard", "done_jobs": done, "missing_jobs": missing}
        event.update(dataclasses.asdict(shard))
        progress(event)

    def _run_serial(
        self,
        missing: List[SimJob],
        results: Dict[str, SimulationResult],
        report: RunReport,
        progress: Optional[ProgressFn] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        shard_start = time.perf_counter()
        done = 0
        for job in missing:
            self._check_cancel(cancel, report)
            job_start = time.perf_counter()
            result = execute_job(job)
            self.executed_jobs += 1
            self.cache.put(job.key, result, job.cache_payload())
            results[job.key] = result
            done += 1
            self._emit_job(
                progress, job, time.perf_counter() - job_start, done, len(missing)
            )
        shard = ShardReport(
            shard=0,
            jobs=len(missing),
            estimated_cost=sum(estimate_job_cost(job) for job in missing),
            seconds=time.perf_counter() - shard_start,
        )
        report.shards.append(shard)
        self._emit_shard(progress, shard, done, len(missing))

    def _run_batch(
        self,
        missing: List[SimJob],
        results: Dict[str, SimulationResult],
        report: RunReport,
        progress: Optional[ProgressFn] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        """Execute missing jobs through the batch-vectorized engine.

        Jobs are grouped by shared trace/topology (one report shard per
        batch group), each group runs on one set of precomputed trace
        arrays and pooled buffers with the gated fast kernels enabled.
        """
        # Imported here: repro.experiments.batch imports this module.
        from repro.experiments.batch import plan_batches

        report.batch = True
        done_jobs = 0
        for index, group in enumerate(plan_batches(missing)):
            self._check_cancel(cancel, report)
            group_start = time.perf_counter()
            for job, result in group.execute():
                self.executed_jobs += 1
                self.cache.put(job.key, result, job.cache_payload())
                results[job.key] = result
                done_jobs += 1
                self._emit_job(progress, job, 0.0, done_jobs, len(missing))
                self._check_cancel(cancel, report)
            shard = ShardReport(
                shard=index,
                jobs=len(group.jobs),
                estimated_cost=sum(
                    estimate_job_cost(job) for job in group.jobs
                ),
                seconds=time.perf_counter() - group_start,
            )
            report.shards.append(shard)
            self._emit_shard(progress, shard, done_jobs, len(missing))

    def _run_sharded(
        self,
        missing: List[SimJob],
        results: Dict[str, SimulationResult],
        report: RunReport,
        progress: Optional[ProgressFn] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        shards = build_shards(missing, self.workers)
        pool = self._ensure_pool()
        cache_dir = self.cache.directory
        pending = {
            pool.submit(execute_shard, shard, cache_dir): (index, shard)
            for index, shard in enumerate(shards)
        }
        stream_to_disk = cache_dir is not None
        done_jobs = 0
        while pending:
            if cancel is not None and cancel.cancelled:
                # Cooperative: shards that never started are dropped; shards
                # already executing run on in the workers and stream their
                # results to the on-disk cache, so nothing computed is lost.
                for future in pending:
                    future.cancel()
                raise SweepCancelled(report)
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index, shard = pending.pop(future)
                elapsed, executed = future.result()
                for job, result in zip(shard, executed):
                    self.executed_jobs += 1
                    if stream_to_disk:
                        # The worker already wrote the disk entry.
                        self.cache.absorb(job.key, result)
                    else:
                        self.cache.put(job.key, result, job.cache_payload())
                    results[job.key] = result
                done_jobs += len(shard)
                shard_report = ShardReport(
                    shard=index,
                    jobs=len(shard),
                    estimated_cost=sum(
                        estimate_job_cost(job) for job in shard
                    ),
                    seconds=elapsed,
                )
                report.shards.append(shard_report)
                self._emit_shard(progress, shard_report, done_jobs, len(missing))

    def run(
        self,
        spec: SweepSpec,
        progress: Optional[ProgressFn] = None,
        cancel: Optional[CancelToken] = None,
    ) -> Dict[str, SimulationResult]:
        """Expand and run a whole sweep."""
        return self.run_jobs(spec.expand(), progress=progress, cancel=cancel)
