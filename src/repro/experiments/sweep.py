"""Declarative sweep engine: expand, execute (in parallel), and memoise.

The paper's evaluation is a Cartesian sweep -- (workload mix x mechanism x
RowHammer threshold) -- plus the baseline runs the weighted-speedup metric
needs.  This module turns such a sweep into data:

* :class:`SimJob` -- one self-contained simulation: a fully resolved
  :class:`~repro.system.config.SystemConfig`, the applications of the mix,
  the per-core access budget and the seed.  Jobs are immutable, picklable
  and content-addressed (:attr:`SimJob.key`), so they can be shipped to
  worker processes and memoised on disk.
* :class:`SweepSpec` -- the declarative description of a sweep
  (mechanisms, N_RH values, mixes, budget, seed, base config) that
  :meth:`~SweepSpec.expand`\\ s into the set of independent jobs, including
  the per-application *alone* runs and per-mix no-mitigation *baseline*
  runs shared by every sweep point.
* :class:`SweepEngine` -- executes jobs serially or across worker
  processes (``concurrent.futures.ProcessPoolExecutor``) and memoises every
  result in a :class:`~repro.experiments.cache.ResultCache`.

Beyond the Cartesian sweep, :func:`attack_job` builds the §11 performance
attack runs and :func:`attack_search_job` builds the red-team probes of
:mod:`repro.attacks` (a synthesised attack pattern simulated under a
ground-truth disturbance oracle).

Determinism: a job's traces are regenerated inside the worker from
``(applications, accesses_per_core, seed, organization)``, and every random
decision in the simulator is seeded from the job itself, so the same spec
produces byte-identical results regardless of worker count or execution
order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.oracle import DisturbanceOracle
from repro.attacks.patterns import AttackSpec, performance_attack_trace
from repro.core.factory import MECHANISM_NAMES
from repro.cpu.trace import Trace
from repro.experiments.cache import ResultCache, config_payload, job_key
from repro.system.config import SystemConfig, paper_system_config
from repro.system.metrics import SimulationResult
from repro.system.simulator import simulate
from repro.workloads.mixes import build_mix_traces

#: Environment variable read for the default worker count (0/1 = serial).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def default_workers() -> int:
    """Worker-process count used when none is given explicitly."""
    try:
        return int(os.environ.get(WORKERS_ENV, "0"))
    except ValueError:
        return 0


# --------------------------------------------------------------------------- #
# Jobs
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SimJob:
    """One independent simulation of a sweep.

    Attributes:
        config: fully resolved system configuration (mechanism, N_RH and
            ``num_cores`` already applied).
        applications: application name per benign core, in core order.
        accesses_per_core: memory accesses generated per benign core.
        seed: base seed for trace generation (each core uses ``seed + slot``).
        workload_name: label recorded in the result; *not* part of the cache
            key, so cosmetically different names share one simulation.
        attack_accesses: when positive, core 0 runs the §11 memory
            performance attack trace with this many accesses and the benign
            applications occupy the remaining cores.
        attack: when set (an :class:`~repro.attacks.patterns.AttackSpec`),
            core 0 runs the compiled attack pattern and the simulation is
            observed by a ground-truth disturbance oracle whose ``oracle_*``
            statistics land in the result's ``mitigation_stats`` -- the job
            kind behind ``python -m repro attack search``.
    """

    config: SystemConfig
    applications: Tuple[str, ...]
    accesses_per_core: int
    seed: int = 0
    workload_name: str = ""
    attack_accesses: int = 0
    attack: Optional[AttackSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "applications", tuple(self.applications))
        if self.attack_accesses and self.attack is not None:
            raise ValueError("attack_accesses and attack are mutually exclusive")
        has_attacker = bool(self.attack_accesses) or self.attack is not None
        expected_cores = len(self.applications) + (1 if has_attacker else 0)
        if expected_cores != self.config.num_cores:
            raise ValueError(
                f"job provides {expected_cores} traces but the config has "
                f"{self.config.num_cores} cores"
            )
        if self.accesses_per_core <= 0:
            raise ValueError("accesses_per_core must be positive")

    def cache_payload(self) -> Dict[str, object]:
        """The job description the cache key is derived from."""
        payload: Dict[str, object] = {
            "config": config_payload(self.config),
            "applications": list(self.applications),
            "accesses_per_core": self.accesses_per_core,
            "seed": self.seed,
            "attack_accesses": self.attack_accesses,
        }
        # Only attack-search jobs carry the spec, so the keys of every
        # pre-existing job kind (and their on-disk cache entries) are stable.
        if self.attack is not None:
            payload["attack"] = self.attack.as_payload()
        return payload

    @property
    def key(self) -> str:
        """Content hash identifying this simulation."""
        return job_key(self.cache_payload())

    @property
    def label(self) -> str:
        """Short human-readable description (CLI / dry-run listings)."""
        name = self.workload_name or "+".join(self.applications)
        return f"{name} [{self.config.mechanism}@{self.config.nrh}]"


def alone_job(
    base_config: SystemConfig,
    application: str,
    accesses_per_core: int,
    seed: int = 0,
) -> SimJob:
    """The single-core, no-mitigation run that yields ``IPC_alone``."""
    config = base_config.with_overrides(
        num_cores=1, mechanism="None", attacker_cores=()
    )
    return SimJob(
        config=config,
        applications=(application,),
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=f"{application}-alone",
    )


def baseline_job(
    base_config: SystemConfig,
    applications: Sequence[str],
    accesses_per_core: int,
    seed: int = 0,
) -> SimJob:
    """The no-mitigation run of a mix (the normalisation point)."""
    applications = tuple(applications)
    config = base_config.with_overrides(
        num_cores=len(applications), mechanism="None"
    )
    return SimJob(
        config=config,
        applications=applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name="+".join(applications),
    )


def mechanism_job(
    base_config: SystemConfig,
    applications: Sequence[str],
    mechanism: str,
    nrh: int,
    accesses_per_core: int,
    seed: int = 0,
    workload_name: Optional[str] = None,
) -> SimJob:
    """A mix simulated under one (mechanism, N_RH) sweep point."""
    applications = tuple(applications)
    config = base_config.with_overrides(
        num_cores=len(applications), mechanism=mechanism, nrh=nrh
    )
    return SimJob(
        config=config,
        applications=applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=workload_name or "+".join(applications),
    )


def attack_job(
    base_config: SystemConfig,
    benign_applications: Sequence[str],
    mechanism: str,
    nrh: int,
    accesses_per_core: int,
    attack_accesses: int,
    seed: int = 0,
    workload_name: Optional[str] = None,
) -> SimJob:
    """The §11 performance attack: one attacker core + benign cores."""
    benign_applications = tuple(benign_applications)
    config = base_config.with_overrides(
        num_cores=len(benign_applications) + 1,
        mechanism=mechanism,
        nrh=nrh,
        attacker_cores=(0,),
    )
    return SimJob(
        config=config,
        applications=benign_applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=workload_name or "attack+" + "+".join(benign_applications),
        attack_accesses=attack_accesses,
    )


def attack_search_job(
    base_config: SystemConfig,
    mechanism: str,
    nrh: int,
    attack: AttackSpec,
    benign_applications: Sequence[str] = (),
    accesses_per_core: int = 1,
    seed: int = 0,
    workload_name: Optional[str] = None,
) -> SimJob:
    """A red-team probe: one attack pattern against one (mechanism, N_RH).

    Core 0 runs the compiled attack trace (bypassing the LLC, like the §11
    attacker); optional benign applications occupy the remaining cores.  The
    executed simulation attaches a
    :class:`~repro.attacks.oracle.DisturbanceOracle`, so the cached result
    reports ground-truth ``oracle_*`` disturbance statistics.
    """
    benign_applications = tuple(benign_applications)
    config = base_config.with_overrides(
        num_cores=len(benign_applications) + 1,
        mechanism=mechanism,
        nrh=nrh,
        attacker_cores=(0,),
    )
    return SimJob(
        config=config,
        applications=benign_applications,
        accesses_per_core=accesses_per_core,
        seed=seed,
        workload_name=workload_name or f"{attack.label} vs {mechanism}@{nrh}",
        attack=attack,
    )


def build_job_traces(job: SimJob) -> List[Trace]:
    """Regenerate the per-core traces of a job (deterministic)."""
    traces: List[Trace] = []
    if job.attack_accesses:
        traces.append(
            performance_attack_trace(
                num_accesses=job.attack_accesses,
                organization=job.config.organization,
                seed=job.seed,
            )
        )
    if job.attack is not None:
        traces.append(job.attack.compile(organization=job.config.organization))
    if job.applications:
        traces.extend(
            build_mix_traces(
                job.applications,
                accesses_per_core=job.accesses_per_core,
                organization=job.config.organization,
                seed=job.seed,
            )
        )
    return traces


def execute_job(job: SimJob) -> SimulationResult:
    """Run one job to completion (also the worker-process entry point)."""
    oracle = None
    if job.attack is not None:
        oracle = DisturbanceOracle(
            nrh=job.config.nrh,
            blast_radius=job.config.blast_radius,
            num_channels=job.config.organization.channels,
        )
    return simulate(
        job.config,
        build_job_traces(job),
        workload_name=job.workload_name,
        oracle=oracle,
    )


# --------------------------------------------------------------------------- #
# Sweep specification
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a (mechanism x N_RH x mix) sweep."""

    mechanisms: Tuple[str, ...]
    nrh_values: Tuple[int, ...]
    mixes: Tuple[Tuple[str, ...], ...]
    accesses_per_core: int = 4000
    seed: int = 0
    base_config: Optional[SystemConfig] = None
    include_alone: bool = True
    include_baselines: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "mechanisms", tuple(self.mechanisms))
        object.__setattr__(self, "nrh_values", tuple(self.nrh_values))
        object.__setattr__(
            self, "mixes", tuple(tuple(mix) for mix in self.mixes)
        )
        for mechanism in self.mechanisms:
            if mechanism not in MECHANISM_NAMES:
                raise ValueError(
                    f"unknown mechanism {mechanism!r}; expected one of {MECHANISM_NAMES}"
                )
        if any(nrh <= 0 for nrh in self.nrh_values):
            raise ValueError("every N_RH value must be positive")
        if any(not mix for mix in self.mixes):
            raise ValueError("every mix needs at least one application")
        if self.accesses_per_core <= 0:
            raise ValueError("accesses_per_core must be positive")

    def resolved_base_config(self) -> SystemConfig:
        return self.base_config if self.base_config is not None else paper_system_config()

    @property
    def applications(self) -> Tuple[str, ...]:
        """Distinct applications across all mixes, in first-seen order."""
        seen: Dict[str, None] = {}
        for mix in self.mixes:
            for application in mix:
                seen.setdefault(application, None)
        return tuple(seen)

    def num_points(self) -> int:
        """Number of (mechanism, N_RH, mix) sweep points."""
        return len(self.mechanisms) * len(self.nrh_values) * len(self.mixes)

    def alone_jobs(self) -> List[SimJob]:
        base = self.resolved_base_config()
        return [
            alone_job(base, application, self.accesses_per_core, self.seed)
            for application in self.applications
        ]

    def baseline_jobs(self) -> List[SimJob]:
        base = self.resolved_base_config()
        return [
            baseline_job(base, mix, self.accesses_per_core, self.seed)
            for mix in self.mixes
        ]

    def mechanism_jobs(self) -> List[SimJob]:
        base = self.resolved_base_config()
        return [
            mechanism_job(base, mix, mechanism, nrh, self.accesses_per_core, self.seed)
            for mechanism in self.mechanisms
            for nrh in self.nrh_values
            for mix in self.mixes
        ]

    def expand(self) -> List[SimJob]:
        """All jobs of the sweep, deduplicated by content key.

        Alone and baseline runs come first so that, under parallel
        execution, the normalisation points are available as early as
        possible.
        """
        jobs: List[SimJob] = []
        if self.include_alone:
            jobs.extend(self.alone_jobs())
        if self.include_baselines:
            jobs.extend(self.baseline_jobs())
        jobs.extend(self.mechanism_jobs())
        unique: Dict[str, SimJob] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        return list(unique.values())


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #

class SweepEngine:
    """Executes :class:`SimJob`\\ s with memoisation and optional parallelism."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
    ) -> None:
        """Create an engine.

        Args:
            cache: result cache; a fresh memory-only cache when omitted.
            workers: worker-process count; ``None`` reads the
                ``REPRO_SWEEP_WORKERS`` environment variable, and values
                below 2 execute serially in-process.
        """
        self.cache = cache if cache is not None else ResultCache()
        self.workers = default_workers() if workers is None else workers
        self.executed_jobs = 0

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_job(self, job: SimJob) -> SimulationResult:
        """Run (or fetch) a single job."""
        result = self.cache.get(job.key)
        if result is None:
            result = execute_job(job)
            self.executed_jobs += 1
            self.cache.put(job.key, result, job.cache_payload())
        return result

    def run_jobs(self, jobs: Sequence[SimJob]) -> Dict[str, SimulationResult]:
        """Run a batch of jobs, returning ``{job.key: result}``.

        Cached jobs are served immediately; the remainder executes either
        serially or across worker processes.  The result mapping is
        independent of execution order, so parallel and serial runs are
        interchangeable.
        """
        unique: Dict[str, SimJob] = {}
        for job in jobs:
            unique.setdefault(job.key, job)
        results: Dict[str, SimulationResult] = {}
        missing: List[SimJob] = []
        for key, job in unique.items():
            cached = self.cache.get(key)
            if cached is not None:
                results[key] = cached
            else:
                missing.append(job)
        if not missing:
            return results
        if self.workers >= 2 and len(missing) > 1:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                executed = list(pool.map(execute_job, missing))
        else:
            executed = [execute_job(job) for job in missing]
        for job, result in zip(missing, executed):
            self.executed_jobs += 1
            self.cache.put(job.key, result, job.cache_payload())
            results[job.key] = result
        return results

    def run(self, spec: SweepSpec) -> Dict[str, SimulationResult]:
        """Expand and run a whole sweep."""
        return self.run_jobs(spec.expand())
