"""Batch-vectorized sweep execution.

A mechanism x N_RH sweep re-simulates the *same* workload traces under many
system configurations.  The scalar engine pays the full setup cost per job:
trace decomposition into per-core dispatch arrays, per-access address
decoding, and the lazy growth of every counter store.  On a single-CPU box
the worker pool cannot hide that cost either (the committed
``BENCH_sweep_throughput.json`` records an honest 0.93x for 8 workers), so
this module attacks it in-process instead:

* **Batch grouping** (:func:`plan_batches`): jobs whose traces and memory
  topology are identical -- everything except the mitigation mechanism, its
  threshold, the PRAC timing flavour and the oracle blast radius -- share
  one :class:`TracePlan`.  A full figure sweep collapses into a handful of
  groups (one per mix / core-count), each spanning dozens of configs.
* **Shared precomputation** (:class:`TracePlan`): the per-core trace arrays
  the dispatch loop reads, a NumPy-vectorized decode of every unique trace
  line through the address mapping's shift/mask plan (feeding the router's
  decode table), and per-bank maximum-row extents that pre-size the
  mitigation counter arrays.
* **Pooled buffers**: one LLC instance, one set of per-bank counter arrays
  and -- under the array bank backend -- one set of per-channel
  :class:`~repro.dram.timing_plane.BankArrayTiming` planes per group,
  recycled between configs (``Cache.reset``, ``release_count_buffers`` and
  the device's plane reset restore the pristine state; capacity is
  unobservable, so pooling is byte-identical to fresh allocation).
* **Gated fast kernels**: each simulator in a batch runs with
  ``fast_kernels=True`` (see
  :class:`~repro.controller.controller.MemoryController`), enabling the
  incremental demand-hint maintenance, the demand-scan skip and the cached
  refresh-pending scan.  The scalar engine stays the untouched reference.

Equivalence is pinned the same way the counter backends and the
event-horizon engine are: ``tests/test_batch_equivalence.py`` asserts
byte-identical :class:`~repro.system.metrics.SimulationResult` payloads
against the scalar engine for every mechanism and channel count, plus a
Hypothesis differential over random small configs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.attacks.oracle import DisturbanceOracle
from repro.controller.address_mapping import mapping_by_name
from repro.core.counters import PerRowCounters
from repro.cpu.cache import Cache
from repro.dram.organization import DramAddress
from repro.dram.timing_plane import BankArrayTiming, resolve_bank_backend
from repro.experiments.sweep import SimJob, build_job_traces
from repro.system.metrics import SimulationResult
from repro.system.simulator import SystemSimulator

#: Config fields a batch group is allowed to vary in.  Everything else --
#: the organization, address mapping, LLC geometry, core parameters, the
#: applications, access budget and trace seed -- must match, because the
#: shared :class:`TracePlan` (trace arrays, decode table, counter extents)
#: depends on it.  The free fields only steer the per-config mechanism
#: build, DRAM timing flavour and the disturbance oracle.
GROUP_FREE_CONFIG_FIELDS: Tuple[str, ...] = (
    "mechanism",
    "nrh",
    "legacy_prac_timings",
    "blast_radius",
)


def batch_group_key(job: SimJob) -> str:
    """Canonical key of the batch group a job belongs to.

    Derived from the job's cache payload with the
    :data:`GROUP_FREE_CONFIG_FIELDS` removed, so two jobs share a group
    exactly when their traces and memory topology are interchangeable.
    """
    payload = job.cache_payload()
    config = dict(payload["config"])
    for name in GROUP_FREE_CONFIG_FIELDS:
        config.pop(name, None)
    payload["config"] = config
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class TracePlan:
    """Shared, immutable-per-group precomputation plus pooled buffers.

    Memory layout: ``core_trace_data[core]`` holds the four parallel plain
    lists the dispatch loop indexes (gap, aligned line, is-write, front-end
    cycles per gap); ``decode_cache`` maps every unique trace line address
    to its decoded ``(DramAddress, flat_bank)`` pair; ``counter_sizes``
    holds, config-major per channel, the per-flat-bank array extent
    (``max demand row + 1``) the counter stores are pre-sized with.
    """

    traces: list
    core_trace_data: List[tuple]
    decode_cache: Dict[int, tuple]
    counter_sizes: List[List[int]]
    llc_geometry: Tuple[int, int, int]
    plane_banks: int = 0
    _llc_pool: List[Cache] = field(default_factory=list)
    _count_pools: List[List[List[List[int]]]] = field(default_factory=list)
    _plane_pool: List[List[BankArrayTiming]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, job: SimJob) -> "TracePlan":
        """Precompute the shared state of a batch group from one job."""
        config = job.config
        organization = config.organization
        traces = build_job_traces(job)
        line_size = config.llc_line_size
        ipc = config.issue_width * config.clock_ratio

        core_trace_data: List[tuple] = []
        line_arrays: List[np.ndarray] = []
        for trace in traces:
            entries = trace.entries
            gaps = [entry.gap_instructions for entry in entries]
            addresses = np.fromiter(
                (entry.address for entry in entries),
                dtype=np.int64,
                count=len(entries),
            )
            lines_array = (addresses // line_size) * line_size
            line_arrays.append(lines_array)
            core_trace_data.append(
                (
                    gaps,
                    lines_array.tolist(),
                    [entry.is_write for entry in entries],
                    # Same operands as the scalar Core's per-entry division,
                    # so the IEEE-754 results (and every downstream cycle
                    # number) are bit-equal.
                    (np.asarray(gaps, dtype=np.float64) / ipc).tolist(),
                )
            )

        # Vectorized decode of every unique line through the mapping's
        # precomputed shift/mask plan (the scalar ``decode`` is the same
        # pure bit arithmetic, one address at a time).
        mapping = mapping_by_name(config.address_mapping, organization)
        unique = np.unique(np.concatenate(line_arrays))
        (
            (ch_shift, ch_mask),
            (ra_shift, ra_mask),
            (bg_shift, bg_mask),
            (ba_shift, ba_mask),
            (ro_shift, ro_mask),
            (ch_hi_shift, ch_hi_mask),
            (ch_lo_shift, ch_lo_mask),
        ) = mapping._decode_plan
        channels = (unique >> ch_shift) & ch_mask
        ranks = (unique >> ra_shift) & ra_mask
        bankgroups = (unique >> bg_shift) & bg_mask
        banks = (unique >> ba_shift) & ba_mask
        rows = (unique >> ro_shift) & ro_mask
        columns = (
            ((unique >> ch_hi_shift) & ch_hi_mask) << mapping._column_low_width
        ) | ((unique >> ch_lo_shift) & ch_lo_mask)
        flat_banks = (
            ranks * organization.bankgroups + bankgroups
        ) * organization.banks_per_group + banks

        decode_cache: Dict[int, tuple] = {}
        counter_sizes = [
            [0] * organization.total_banks for _ in range(organization.channels)
        ]
        # .tolist() everywhere: NumPy scalars must never leak into the
        # simulation (they would contaminate stats and JSON payloads).
        for address, channel, rank, bankgroup, bank, row, column, flat in zip(
            unique.tolist(),
            channels.tolist(),
            ranks.tolist(),
            bankgroups.tolist(),
            banks.tolist(),
            rows.tolist(),
            columns.tolist(),
            flat_banks.tolist(),
        ):
            decode_cache[address] = (
                DramAddress(
                    channel=channel,
                    rank=rank,
                    bankgroup=bankgroup,
                    bank=bank,
                    row=row,
                    column=column,
                ),
                flat,
            )
            sizes = counter_sizes[channel]
            if row >= sizes[flat]:
                sizes[flat] = row + 1

        return cls(
            traces=traces,
            core_trace_data=core_trace_data,
            decode_cache=decode_cache,
            counter_sizes=counter_sizes,
            llc_geometry=(
                config.llc_size_bytes,
                config.llc_associativity,
                config.llc_line_size,
            ),
            plane_banks=organization.total_banks,
            _count_pools=[[] for _ in range(organization.channels)],
        )

    # ------------------------------------------------------------------ #
    # Pooled buffers
    # ------------------------------------------------------------------ #
    def acquire_llc(self) -> Cache:
        """A pristine LLC (pooled; ``release_llc`` resets and returns it)."""
        if self._llc_pool:
            return self._llc_pool.pop()
        size_bytes, associativity, line_size = self.llc_geometry
        return Cache(
            size_bytes=size_bytes,
            associativity=associativity,
            line_size=line_size,
        )

    def release_llc(self, llc: Cache) -> None:
        llc.reset()
        self._llc_pool.append(llc)

    def acquire_planes(self, channels: int) -> List[BankArrayTiming]:
        """Per-channel timing planes, pooled across the group's configs.

        The planes are handed to :class:`~repro.system.simulator
        .SystemSimulator` pre-sized; :class:`~repro.dram.device.DramDevice`
        resets each one on adoption, so recycled register state can never
        leak between configs.
        """
        if self._plane_pool:
            planes = self._plane_pool.pop()
            if len(planes) == channels:
                return planes
        return [BankArrayTiming(self.plane_banks) for _ in range(channels)]

    def release_planes(self, planes: List[BankArrayTiming]) -> None:
        self._plane_pool.append(planes)

    def acquire_counts(self, channel: int) -> List[List[int]]:
        """All-zero per-bank count arrays sized to the group's row extents."""
        pool = self._count_pools[channel]
        if pool:
            return pool.pop()
        return [[0] * size for size in self.counter_sizes[channel]]

    def release_counts(self, channel: int, buffers: List[List[int]]) -> None:
        self._count_pools[channel].append(buffers)


def execute_job_with_plan(job: SimJob, plan: TracePlan) -> SimulationResult:
    """Run one job on the batch kernels, borrowing the plan's buffers."""
    oracle = None
    if job.attack is not None:
        oracle = DisturbanceOracle(
            nrh=job.config.nrh,
            blast_radius=job.config.blast_radius,
            num_channels=job.config.organization.channels,
        )
    llc = plan.acquire_llc()
    # Pooled timing planes only make sense for the array bank backend; when
    # the environment pins the object backend (the CI differential leg),
    # the simulator builds object banks exactly like the scalar engine.
    planes = None
    if resolve_bank_backend(None) == "array":
        planes = plan.acquire_planes(job.config.organization.channels)
    sim = SystemSimulator(
        job.config,
        plan.traces,
        workload_name=job.workload_name,
        oracle=oracle,
        llc=llc,
        decode_cache=plan.decode_cache,
        core_trace_data=plan.core_trace_data,
        fast_kernels=True,
        timing_planes=planes,
    )
    # Pre-size the array-backed per-row counter stores from the decoded row
    # extents and recycle their arrays across the group's configs.  The
    # dict backend (and stores that rebuild their tables mid-run, like
    # Hydra's) simply run unpooled.
    adopted: List[Tuple[int, PerRowCounters]] = []
    for channel, setup in enumerate(sim.setups):
        for mechanism in setup.mechanisms():
            store = getattr(mechanism, "counters", None)
            if isinstance(store, PerRowCounters) and store.backend == "array":
                store.adopt_count_buffers(plan.acquire_counts(channel))
                adopted.append((channel, store))
    try:
        result = sim.run()
    finally:
        for channel, store in adopted:
            plan.release_counts(channel, store.release_count_buffers())
        plan.release_llc(llc)
        if planes is not None:
            plan.release_planes(planes)
    return result


@dataclass
class BatchGroup:
    """The jobs of one batch, sharing a :class:`TracePlan`."""

    key: str
    jobs: List[SimJob]

    def execute(self) -> Iterator[Tuple[SimJob, SimulationResult]]:
        """Run the group's jobs, yielding ``(job, result)`` pairs.

        The plan is built lazily so a fully cached group costs nothing; the
        pooled buffers die with the generator.
        """
        plan = TracePlan.build(self.jobs[0])
        for job in self.jobs:
            yield job, execute_job_with_plan(job, plan)


def plan_batches(jobs: Sequence[SimJob]) -> List[BatchGroup]:
    """Group jobs by :func:`batch_group_key` (first-seen order, stable)."""
    groups: Dict[str, List[SimJob]] = {}
    for job in jobs:
        groups.setdefault(batch_group_key(job), []).append(job)
    return [BatchGroup(key=key, jobs=members) for key, members in groups.items()]


def execute_batch(jobs: Sequence[SimJob]) -> Dict[str, SimulationResult]:
    """Convenience wrapper: run ``jobs`` in batch mode, keyed by job key."""
    results: Dict[str, SimulationResult] = {}
    for group in plan_batches(jobs):
        for job, result in group.execute():
            results[job.key] = result
    return results
