"""Experiment harness: runs the simulations behind every table and figure."""

from repro.experiments.runner import ExperimentRunner, MechanismComparison
from repro.experiments import figures

__all__ = ["ExperimentRunner", "MechanismComparison", "figures"]
