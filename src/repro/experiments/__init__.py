"""Experiment harness: sweep engine, result cache, runner and figure data."""

from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentRunner, MechanismComparison, default_mixes
from repro.experiments.sweep import SimJob, SweepEngine, SweepSpec
from repro.experiments import figures

__all__ = [
    "ExperimentRunner",
    "MechanismComparison",
    "ResultCache",
    "SimJob",
    "SweepEngine",
    "SweepSpec",
    "default_mixes",
    "figures",
]
