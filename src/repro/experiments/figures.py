"""Figure / table data generators.

One function per table and figure of the paper's evaluation.  Every function
returns plain Python data structures (lists of dicts) so the benchmark
harness can both print the paper-style rows and feed pytest-benchmark, and so
tests can assert the qualitative claims (who wins, how overheads scale with
``N_RH``) without any plotting dependencies.

All simulation-based experiments take ``accesses_per_core`` and mix-count
parameters: the paper simulates 100 M instructions per core for 60 mixes on a
cluster, while the defaults here are sized for a laptop.  docs/EXPERIMENTS.md
records the budgets used for the committed results.

Every simulation-backed function accepts an optional ``engine`` -- a shared
:class:`~repro.experiments.sweep.SweepEngine` -- so multiple figures reuse
one result cache (alone / baseline runs are simulated once for all of them)
and can execute their sweeps across worker processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.bandwidth import (
    bandwidth_attack_table,
)
from repro.analysis.security import (
    DEFAULT_BACKOFF_THRESHOLDS,
    DEFAULT_RFM_THRESHOLDS,
    DEFAULT_ROW_SET_SIZES,
    prac_security_sweep,
    prfm_security_sweep,
)
from repro.analysis.storage import (
    DEFAULT_NRH_VALUES,
    FIG11_MECHANISMS,
    FIG13_MECHANISMS,
    storage_overhead_table,
)
from repro.core.decrementer import DecrementerCircuit
from repro.dram.timing import timing_table_rows
from repro.experiments.runner import ExperimentRunner, default_mixes
from repro.experiments.sweep import SweepEngine, attack_job, mechanism_job
from repro.system.config import appendix_e_system_config, paper_system_config
from repro.system.metrics import max_slowdown, weighted_speedup
from repro.workloads.mixes import MIX_TYPES
from repro.workloads.synthetic import app_names


#: Default RowHammer thresholds swept by the performance figures.
NRH_SWEEP: tuple = (1024, 512, 256, 128, 64, 32, 20)

#: Mechanisms shown in Fig. 4 (PRAC / RFM configurations).
FIG4_MECHANISMS: tuple = ("PRAC-4", "PRAC-2", "PRAC-1", "PRAC+PRFM", "PRFM")

#: Mechanisms shown in Fig. 7 / 8 / 9 / 10.
FIG8_MECHANISMS: tuple = (
    "Chronus",
    "Chronus-PB",
    "PRAC-4",
    "Graphene",
    "Hydra",
    "PRFM",
    "PARA",
)


# ---------------------------------------------------------------------------
# Table 1 -- DRAM timing parameter changes with PRAC
# ---------------------------------------------------------------------------

def table1_data() -> List[Dict[str, float]]:
    """Rows of Table 1: parameter, ns without PRAC, ns with PRAC."""
    return timing_table_rows()


# ---------------------------------------------------------------------------
# Fig. 3 -- security sweeps
# ---------------------------------------------------------------------------

def fig3a_data(
    rfm_thresholds: Sequence[int] = DEFAULT_RFM_THRESHOLDS,
    row_set_sizes: Sequence[int] = DEFAULT_ROW_SET_SIZES,
) -> List[Dict[str, int]]:
    """Fig. 3a: max activations to a single row under PRFM."""
    sweep = prfm_security_sweep(rfm_thresholds, row_set_sizes)
    rows = []
    for rfm_th, by_r1 in sweep.items():
        for r1, max_acts in by_r1.items():
            rows.append({"rfm_threshold": rfm_th, "initial_rows": r1, "max_acts": max_acts})
    return rows


def fig3b_data(
    backoff_thresholds: Sequence[int] = DEFAULT_BACKOFF_THRESHOLDS,
    nrefs: Sequence[int] = (1, 2, 4),
    row_set_sizes: Sequence[int] = DEFAULT_ROW_SET_SIZES,
) -> List[Dict[str, int]]:
    """Fig. 3b: worst-case max activations under PRAC-N."""
    sweep = prac_security_sweep(backoff_thresholds, nrefs, row_set_sizes)
    rows = []
    for nbo, by_nref in sweep.items():
        for nref, max_acts in by_nref.items():
            rows.append({"nbo": nbo, "nref": nref, "max_acts": max_acts})
    return rows


# ---------------------------------------------------------------------------
# Fig. 4 -- PRAC / RFM variants on four-core workloads
# ---------------------------------------------------------------------------

def fig4_data(
    nrh_values: Sequence[int] = NRH_SWEEP,
    mechanisms: Sequence[str] = FIG4_MECHANISMS,
    num_mixes: int = 4,
    accesses_per_core: int = 4000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """Fig. 4: normalised weighted speedup of the industry mechanisms."""
    runner = ExperimentRunner(
        accesses_per_core=accesses_per_core, seed=seed, engine=engine
    )
    mixes = [mix.applications for mix in default_mixes(num_mixes)]
    comparisons = runner.compare(mechanisms, nrh_values, mixes)
    return [
        {
            "mechanism": c.mechanism,
            "nrh": c.nrh,
            "normalized_ws": c.mean_normalized_ws,
            "performance_overhead": c.mean_performance_overhead,
            "max_performance_overhead": c.max_performance_overhead,
            "is_secure": c.is_secure,
        }
        for c in comparisons
    ]


# ---------------------------------------------------------------------------
# Fig. 7 -- single-core performance
# ---------------------------------------------------------------------------

def fig7_data(
    nrh_values: Sequence[int] = (1024, 32),
    mechanisms: Sequence[str] = FIG8_MECHANISMS,
    applications: Optional[Sequence[str]] = None,
    accesses_per_core: int = 4000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """Fig. 7: per-application normalised speedup at N_RH = 1K and 32."""
    if applications is None:
        applications = app_names("H")[:6] + app_names("M")[:2] + app_names("L")[:2]
    runner = ExperimentRunner(
        accesses_per_core=accesses_per_core, seed=seed, engine=engine
    )
    rows: List[Dict[str, float]] = []
    for nrh in nrh_values:
        per_mech = runner.single_core_sweep(mechanisms, nrh, applications)
        for mechanism, per_app in per_mech.items():
            for application, speedup in per_app.items():
                rows.append(
                    {
                        "nrh": nrh,
                        "mechanism": mechanism,
                        "application": application,
                        "normalized_speedup": speedup,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Fig. 8 / Fig. 10 -- multi-core performance and DRAM energy
# ---------------------------------------------------------------------------

def fig8_fig10_data(
    nrh_values: Sequence[int] = NRH_SWEEP,
    mechanisms: Sequence[str] = FIG8_MECHANISMS,
    num_mixes: int = 4,
    accesses_per_core: int = 4000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """Fig. 8 (performance) and Fig. 10 (energy) share the same sweep."""
    runner = ExperimentRunner(
        accesses_per_core=accesses_per_core, seed=seed, engine=engine
    )
    mixes = [mix.applications for mix in default_mixes(num_mixes)]
    comparisons = runner.compare(mechanisms, nrh_values, mixes)
    return [
        {
            "mechanism": c.mechanism,
            "nrh": c.nrh,
            "normalized_ws": c.mean_normalized_ws,
            "performance_overhead": c.mean_performance_overhead,
            "normalized_energy": c.mean_normalized_energy,
            "backoffs_per_mcycle": (
                sum(c.backoffs_per_mcycle) / len(c.backoffs_per_mcycle)
                if c.backoffs_per_mcycle
                else 0.0
            ),
            "is_secure": c.is_secure,
        }
        for c in comparisons
    ]


def fig8_data(**kwargs) -> List[Dict[str, float]]:
    """Fig. 8: normalised weighted speedup of all mechanisms."""
    return fig8_fig10_data(**kwargs)


def fig10_data(**kwargs) -> List[Dict[str, float]]:
    """Fig. 10: normalised DRAM energy of all mechanisms."""
    return fig8_fig10_data(**kwargs)


# ---------------------------------------------------------------------------
# Fig. 9 -- sensitivity to workload memory intensity
# ---------------------------------------------------------------------------

def fig9_data(
    nrh: int = 32,
    mechanisms: Sequence[str] = FIG8_MECHANISMS,
    mixes_per_type: int = 1,
    accesses_per_core: int = 4000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """Fig. 9: normalised weighted speedup per workload-intensity type."""
    runner = ExperimentRunner(
        accesses_per_core=accesses_per_core, seed=seed, engine=engine
    )
    rows: List[Dict[str, float]] = []
    for mix_type in MIX_TYPES:
        mixes = [
            mix.applications
            for mix in default_mixes(mixes_per_type, mix_types=[mix_type])
        ]
        comparisons = runner.compare(mechanisms, [nrh], mixes)
        for c in comparisons:
            rows.append(
                {
                    "mix_type": mix_type,
                    "mechanism": c.mechanism,
                    "nrh": nrh,
                    "normalized_ws": c.mean_normalized_ws,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 11 / Fig. 13 -- storage overheads
# ---------------------------------------------------------------------------

def fig11_data(nrh_values: Sequence[int] = DEFAULT_NRH_VALUES) -> List[Dict[str, float]]:
    """Fig. 11: storage overhead of Chronus, PRAC, Graphene, Hydra, PRFM."""
    return [
        {
            "mechanism": entry.mechanism,
            "nrh": entry.nrh,
            "dram_bytes": entry.dram_bytes,
            "cpu_bytes": entry.cpu_bytes,
            "total_mib": entry.total_mib,
        }
        for entry in storage_overhead_table(FIG11_MECHANISMS, nrh_values)
    ]


def fig13_data(nrh_values: Sequence[int] = DEFAULT_NRH_VALUES) -> List[Dict[str, float]]:
    """Fig. 13: storage overhead of Chronus vs ABACuS."""
    return [
        {
            "mechanism": entry.mechanism,
            "nrh": entry.nrh,
            "dram_bytes": entry.dram_bytes,
            "cpu_bytes": entry.cpu_bytes,
            "total_mib": entry.total_mib,
        }
        for entry in storage_overhead_table(FIG13_MECHANISMS, nrh_values)
    ]


# ---------------------------------------------------------------------------
# Fig. 12 -- Chronus vs ABACuS performance (Appendix C)
# ---------------------------------------------------------------------------

def fig12_data(
    nrh_values: Sequence[int] = NRH_SWEEP,
    num_mixes: int = 2,
    accesses_per_core: int = 4000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """Fig. 12: Chronus vs ABACuS with ABACuS's address mapping."""
    base = paper_system_config().with_overrides(address_mapping="ABACuS")
    runner = ExperimentRunner(
        base_config=base, accesses_per_core=accesses_per_core, seed=seed,
        engine=engine,
    )
    mixes = [mix.applications for mix in default_mixes(num_mixes)]
    comparisons = runner.compare(("Chronus", "ABACuS"), nrh_values, mixes)
    return [
        {
            "mechanism": c.mechanism,
            "nrh": c.nrh,
            "normalized_ws": c.mean_normalized_ws,
            "performance_overhead": c.mean_performance_overhead,
        }
        for c in comparisons
    ]


# ---------------------------------------------------------------------------
# Fig. 14 / Fig. 15 -- Appendix E eight-core configuration
# ---------------------------------------------------------------------------

def fig14_fig15_data(
    nrh_values: Sequence[int] = NRH_SWEEP,
    applications: Optional[Sequence[str]] = None,
    accesses_per_core: int = 2500,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """Fig. 14 / 15: PRAC-4 on eight-core homogeneous workloads, large LLC."""
    if applications is None:
        applications = ["519.lbm", "505.mcf", "523.xalancbmk", "541.leela"]
    base = appendix_e_system_config()
    runner = ExperimentRunner(
        base_config=base, accesses_per_core=accesses_per_core, seed=seed,
        engine=engine,
    )
    mixes = [tuple([app] * base.num_cores) for app in applications]
    comparisons = runner.compare(("PRAC-4",), nrh_values, mixes)
    return [
        {
            "mechanism": c.mechanism,
            "nrh": c.nrh,
            "normalized_ws": c.mean_normalized_ws,
            "performance_overhead": c.mean_performance_overhead,
            "normalized_energy": c.mean_normalized_energy,
        }
        for c in comparisons
    ]


def fig14_data(**kwargs) -> List[Dict[str, float]]:
    """Fig. 14: PRAC-4 performance on the Appendix E configuration."""
    return fig14_fig15_data(**kwargs)


def fig15_data(**kwargs) -> List[Dict[str, float]]:
    """Fig. 15: PRAC-4 DRAM energy on the Appendix E configuration."""
    return fig14_fig15_data(**kwargs)


# ---------------------------------------------------------------------------
# Table 4 -- effect of the PRAC timing erratum fix (Appendix E)
# ---------------------------------------------------------------------------

def table4_data(
    nrh_values: Sequence[int] = (1024, 64, 20),
    num_mixes: int = 2,
    accesses_per_core: int = 4000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """Table 4: PRAC-4 overhead with the old (buggy) vs fixed timings."""
    rows: List[Dict[str, float]] = []
    for legacy in (True, False):
        base = paper_system_config().with_overrides(legacy_prac_timings=legacy)
        runner = ExperimentRunner(
            base_config=base, accesses_per_core=accesses_per_core, seed=seed,
            engine=engine,
        )
        mixes = [mix.applications for mix in default_mixes(num_mixes)]
        comparisons = runner.compare(("PRAC-4",), nrh_values, mixes)
        for c in comparisons:
            rows.append(
                {
                    "timings": "old" if legacy else "new",
                    "nrh": c.nrh,
                    "performance_overhead": c.mean_performance_overhead,
                    "normalized_energy": c.mean_normalized_energy,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# §11 -- memory performance attack
# ---------------------------------------------------------------------------

def sec11_theory_data(nrh_values: Sequence[int] = (128, 20)) -> List[Dict[str, float]]:
    """§11 theoretical worst-case DRAM bandwidth consumption."""
    return [
        {
            "mechanism": bound.mechanism,
            "nrh": bound.nrh,
            "nbo": bound.nbo,
            "nref": bound.nref,
            "max_bandwidth_consumption": bound.consumption,
        }
        for bound in bandwidth_attack_table(nrh_values)
    ]


def sec11_simulation_data(
    nrh_values: Sequence[int] = (128, 20),
    mechanisms: Sequence[str] = ("PRAC-4", "Chronus"),
    num_mixes: int = 2,
    accesses_per_core: int = 3000,
    attack_accesses: int = 12000,
    seed: int = 0,
    engine: Optional[SweepEngine] = None,
) -> List[Dict[str, float]]:
    """§11 simulation: one attacker core + three benign cores.

    System performance (weighted speedup of the benign cores) and the maximum
    single-application slowdown are reported relative to the same mix running
    under the same mechanism *without* the attacker.
    """
    engine = engine if engine is not None else SweepEngine()
    base = paper_system_config()
    mixes = default_mixes(num_mixes)

    def point_jobs(mechanism: str, nrh: int, mix) -> tuple:
        benign_apps = tuple(mix.applications[:3])
        attacked = attack_job(
            base, benign_apps, mechanism, nrh, accesses_per_core,
            attack_accesses, seed=seed, workload_name=f"attack+{mix.name}",
        )
        peaceful = mechanism_job(
            base, benign_apps, mechanism, nrh, accesses_per_core,
            seed=seed, workload_name=mix.name,
        )
        return attacked, peaceful

    points = [
        (mechanism, nrh, mix)
        for mechanism in mechanisms
        for nrh in nrh_values
        for mix in mixes
    ]
    engine.run_jobs([job for point in points for job in point_jobs(*point)])

    rows: List[Dict[str, float]] = []
    for mechanism in mechanisms:
        for nrh in nrh_values:
            ws_losses = []
            max_slowdowns = []
            for mix in mixes:
                attacked_job, peaceful_job = point_jobs(mechanism, nrh, mix)
                attacked = engine.run_job(attacked_job)
                peaceful = engine.run_job(peaceful_job)

                benign_ipcs_attacked = attacked.core_ipcs[1:]
                benign_ipcs_peaceful = peaceful.core_ipcs
                ws_attacked = weighted_speedup(benign_ipcs_attacked, benign_ipcs_peaceful)
                ws_losses.append(1.0 - ws_attacked / len(benign_ipcs_peaceful))
                max_slowdowns.append(
                    max_slowdown(benign_ipcs_attacked, benign_ipcs_peaceful)
                )
            rows.append(
                {
                    "mechanism": mechanism,
                    "nrh": nrh,
                    "mean_performance_loss": sum(ws_losses) / len(ws_losses),
                    "max_performance_loss": max(ws_losses),
                    "max_slowdown": max(max_slowdowns),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Appendix A -- decrementer circuit
# ---------------------------------------------------------------------------

def appendix_a_data() -> Dict[str, object]:
    """Appendix A: decrementer gate counts, delay, and functional check."""
    circuit = DecrementerCircuit()
    mismatches = sum(
        1 for value in range(256) if circuit.evaluate(value) != (value - 1) % 256
    )
    return {
        "gate_count": circuit.gate_count,
        "transistor_count": circuit.transistor_count,
        "critical_path_delay_ns": circuit.critical_path_delay_ns,
        "fits_within_trc": circuit.fits_within_row_cycle(),
        "functional_mismatches": mismatches,
        "table": circuit.table_rows(),
    }


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------

def format_rows(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
