"""Ground-truth read-disturbance oracle.

The mitigation mechanisms under test keep their *own* activation counters --
trusting those to decide whether an attack succeeded would let a broken
mechanism grade its own homework.  :class:`DisturbanceOracle` is an
independent observer the simulator can attach to a run:

* it counts, per (channel, bank, row), the activations a row has received
  since its victims were last refreshed (by a preventive refresh, an RFM, or
  a borrowed refresh), mirroring the quantity the paper's analytical security
  model bounds ("maximum activation count of any single row"), and
* it records the peak of that quantity and whether it ever reached the
  configured RowHammer threshold ``N_RH`` -- i.e. whether a bit flip
  *escaped* the mitigation.

Event sources (wired up by :class:`~repro.system.simulator.SystemSimulator`):

* every ACT, via :meth:`~repro.dram.device.DramDevice.add_activation_listener`;
* every victim refresh, via
  :meth:`~repro.core.mitigation.MitigationMechanism.add_mitigation_listener`.
  A refresh event names the aggressor row whose victims were refreshed, or
  ``None`` when the DRAM chip picks the aggressor itself (PRFM's RFM): the
  oracle then credits the defence with its *best possible* choice -- the
  currently hottest row of the bank -- matching the generous assumption of
  the Eq. 1 analysis.

On a multi-channel system the simulator tags each event with the originating
channel, so the oracle can report both system-wide and per-channel peaks --
the per-channel view is how the red-team path proves that an attack aimed at
one channel leaves the rows of every other channel untouched.

Partial refreshes (PARA refreshes a single neighbour per trigger) scale the
aggressor's count down proportionally instead of clearing it, which keeps the
oracle deterministic while modelling that most of the aggressor's victims
remain disturbed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class DisturbanceOracle:
    """Tracks ground-truth per-row disturbance during one simulation."""

    def __init__(self, nrh: int, blast_radius: int = 2, num_channels: int = 1) -> None:
        if nrh <= 0:
            raise ValueError("nrh must be positive")
        if blast_radius <= 0:
            raise ValueError("blast_radius must be positive")
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        self.nrh = nrh
        self.blast_radius = blast_radius
        self.num_channels = num_channels
        #: Victim rows refreshed when an aggressor is fully mitigated.
        self.victims_per_aggressor = 2 * blast_radius

        #: channel -> (bank, row) -> activations since the victims were
        #: refreshed.  One dict per channel keeps every scan (hottest-row
        #: search, per-channel reporting) bounded to the owning channel.
        self._counts: Dict[int, Dict[Tuple[int, int], int]] = {}
        #: channel -> highest activation count any of its rows ever reached.
        self._channel_peaks: Dict[int, int] = {}
        self.max_disturbance = 0
        self.peak_channel: Optional[int] = None
        self.peak_bank: Optional[int] = None
        self.peak_row: Optional[int] = None
        self.first_escape_cycle: Optional[int] = None
        self.activations_observed = 0
        self.mitigation_events = 0

    # ------------------------------------------------------------------ #
    # Event sinks
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int, channel: int = 0) -> None:
        """Record one activation of (channel, bank, row)."""
        self.activations_observed += 1
        counts = self._counts.setdefault(channel, {})
        key = (bank_id, row)
        count = counts.get(key, 0) + 1
        counts[key] = count
        if count > self._channel_peaks.get(channel, 0):
            self._channel_peaks[channel] = count
        if count > self.max_disturbance:
            self.max_disturbance = count
            self.peak_channel, self.peak_bank, self.peak_row = channel, bank_id, row
        if count >= self.nrh and self.first_escape_cycle is None:
            self.first_escape_cycle = cycle

    def on_victims_refreshed(
        self,
        bank_id: int,
        aggressor_row: Optional[int],
        num_rows: int,
        cycle: int,
        channel: int = 0,
    ) -> None:
        """Record that victims of an aggressor in ``bank_id`` were refreshed.

        Args:
            bank_id: flat bank index within the channel.
            aggressor_row: the mitigated aggressor, or ``None`` when the
                device picked the aggressor itself (the oracle then assumes
                the hottest row of the bank -- the defence's best case).
            num_rows: victim rows actually refreshed; fewer than
                ``victims_per_aggressor`` scales the count instead of
                clearing it.
            cycle: DRAM cycle of the refresh (recorded for symmetry; the
                oracle's bookkeeping is purely count-based).
            channel: channel the refreshing mechanism instance belongs to.
        """
        self.mitigation_events += 1
        if aggressor_row is None:
            aggressor_row = self._hottest_row(channel, bank_id)
            if aggressor_row is None:
                return
        counts = self._counts.get(channel, {})
        key = (bank_id, aggressor_row)
        count = counts.get(key)
        if not count:
            return
        if num_rows >= self.victims_per_aggressor:
            counts[key] = 0
        else:
            # Partial refresh: the un-refreshed victims keep their
            # accumulated disturbance.
            remaining = self.victims_per_aggressor - num_rows
            counts[key] = count * remaining // self.victims_per_aggressor

    def _hottest_row(self, channel: int, bank_id: int) -> Optional[int]:
        """The row of (channel, bank) with the highest current count."""
        best_row: Optional[int] = None
        best_count = 0
        for (bank, row), count in self._counts.get(channel, {}).items():
            if bank == bank_id and count > best_count:
                best_row, best_count = row, count
        return best_row

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def escaped(self) -> bool:
        """True if any row reached ``N_RH`` activations unmitigated."""
        return self.first_escape_cycle is not None

    def current_count(self, bank_id: int, row: int, channel: int = 0) -> int:
        """Current activation count of (channel, bank, row)."""
        return self._counts.get(channel, {}).get((bank_id, row), 0)

    def rows_tracked(self, channel: Optional[int] = None) -> int:
        """Distinct activated rows (of one channel, or system-wide)."""
        if channel is None:
            return sum(len(counts) for counts in self._counts.values())
        return len(self._counts.get(channel, {}))

    def max_disturbance_in_channel(self, channel: int) -> int:
        """Peak activation count ever reached by any row of ``channel``."""
        return self._channel_peaks.get(channel, 0)

    def activations_in_channel(self, channel: int) -> int:
        """Activations currently accumulated against rows of ``channel``."""
        return sum(self._counts.get(channel, {}).values())

    def stats_dict(self) -> Dict[str, int]:
        """Integer stats merged into ``SimulationResult.mitigation_stats``.

        The per-channel keys are only emitted for multi-channel oracles, so
        single-channel results (and their cached entries) are unchanged.
        """
        stats = {
            "oracle_max_disturbance": self.max_disturbance,
            "oracle_escaped": 1 if self.escaped else 0,
            "oracle_first_escape_cycle": (
                -1 if self.first_escape_cycle is None else self.first_escape_cycle
            ),
            "oracle_activations": self.activations_observed,
            "oracle_mitigation_events": self.mitigation_events,
            "oracle_rows_tracked": self.rows_tracked(),
        }
        if self.num_channels > 1:
            stats["oracle_peak_channel"] = (
                -1 if self.peak_channel is None else self.peak_channel
            )
            for channel in range(self.num_channels):
                prefix = f"oracle_ch{channel}"
                stats[f"{prefix}_max_disturbance"] = self.max_disturbance_in_channel(
                    channel
                )
                stats[f"{prefix}_rows_tracked"] = self.rows_tracked(channel)
        return stats
