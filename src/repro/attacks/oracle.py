"""Ground-truth read-disturbance oracle.

The mitigation mechanisms under test keep their *own* activation counters --
trusting those to decide whether an attack succeeded would let a broken
mechanism grade its own homework.  :class:`DisturbanceOracle` is an
independent observer the simulator can attach to a run:

* it counts, per (bank, row), the activations a row has received since its
  victims were last refreshed (by a preventive refresh, an RFM, or a
  borrowed refresh), mirroring the quantity the paper's analytical security
  model bounds ("maximum activation count of any single row"), and
* it records the peak of that quantity and whether it ever reached the
  configured RowHammer threshold ``N_RH`` -- i.e. whether a bit flip
  *escaped* the mitigation.

Event sources (wired up by :class:`~repro.system.simulator.SystemSimulator`):

* every ACT, via :meth:`~repro.dram.device.DramDevice.add_activation_listener`;
* every victim refresh, via
  :meth:`~repro.core.mitigation.MitigationMechanism.add_mitigation_listener`.
  A refresh event names the aggressor row whose victims were refreshed, or
  ``None`` when the DRAM chip picks the aggressor itself (PRFM's RFM): the
  oracle then credits the defence with its *best possible* choice -- the
  currently hottest row of the bank -- matching the generous assumption of
  the Eq. 1 analysis.

Partial refreshes (PARA refreshes a single neighbour per trigger) scale the
aggressor's count down proportionally instead of clearing it, which keeps the
oracle deterministic while modelling that most of the aggressor's victims
remain disturbed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class DisturbanceOracle:
    """Tracks ground-truth per-row disturbance during one simulation."""

    def __init__(self, nrh: int, blast_radius: int = 2) -> None:
        if nrh <= 0:
            raise ValueError("nrh must be positive")
        if blast_radius <= 0:
            raise ValueError("blast_radius must be positive")
        self.nrh = nrh
        self.blast_radius = blast_radius
        #: Victim rows refreshed when an aggressor is fully mitigated.
        self.victims_per_aggressor = 2 * blast_radius

        #: (bank, row) -> activations since the row's victims were refreshed.
        self._counts: Dict[Tuple[int, int], int] = {}
        self.max_disturbance = 0
        self.peak_bank: Optional[int] = None
        self.peak_row: Optional[int] = None
        self.first_escape_cycle: Optional[int] = None
        self.activations_observed = 0
        self.mitigation_events = 0

    # ------------------------------------------------------------------ #
    # Event sinks
    # ------------------------------------------------------------------ #
    def on_activate(self, bank_id: int, row: int, cycle: int) -> None:
        """Record one activation of (bank, row)."""
        self.activations_observed += 1
        key = (bank_id, row)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count > self.max_disturbance:
            self.max_disturbance = count
            self.peak_bank, self.peak_row = bank_id, row
        if count >= self.nrh and self.first_escape_cycle is None:
            self.first_escape_cycle = cycle

    def on_victims_refreshed(
        self, bank_id: int, aggressor_row: Optional[int], num_rows: int, cycle: int
    ) -> None:
        """Record that victims of an aggressor in ``bank_id`` were refreshed.

        Args:
            bank_id: flat bank index.
            aggressor_row: the mitigated aggressor, or ``None`` when the
                device picked the aggressor itself (the oracle then assumes
                the hottest row of the bank -- the defence's best case).
            num_rows: victim rows actually refreshed; fewer than
                ``victims_per_aggressor`` scales the count instead of
                clearing it.
            cycle: DRAM cycle of the refresh (recorded for symmetry; the
                oracle's bookkeeping is purely count-based).
        """
        self.mitigation_events += 1
        if aggressor_row is None:
            aggressor_row = self._hottest_row(bank_id)
            if aggressor_row is None:
                return
        key = (bank_id, aggressor_row)
        count = self._counts.get(key)
        if not count:
            return
        if num_rows >= self.victims_per_aggressor:
            self._counts[key] = 0
        else:
            # Partial refresh: the un-refreshed victims keep their
            # accumulated disturbance.
            remaining = self.victims_per_aggressor - num_rows
            self._counts[key] = count * remaining // self.victims_per_aggressor

    def _hottest_row(self, bank_id: int) -> Optional[int]:
        """The row of ``bank_id`` with the highest current count."""
        best_row: Optional[int] = None
        best_count = 0
        for (bank, row), count in self._counts.items():
            if bank == bank_id and count > best_count:
                best_row, best_count = row, count
        return best_row

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def escaped(self) -> bool:
        """True if any row reached ``N_RH`` activations unmitigated."""
        return self.first_escape_cycle is not None

    def current_count(self, bank_id: int, row: int) -> int:
        """Current activation count of (bank, row) since its last refresh."""
        return self._counts.get((bank_id, row), 0)

    def rows_tracked(self) -> int:
        """Distinct (bank, row) pairs that have been activated."""
        return len(self._counts)

    def stats_dict(self) -> Dict[str, int]:
        """Integer stats merged into ``SimulationResult.mitigation_stats``."""
        return {
            "oracle_max_disturbance": self.max_disturbance,
            "oracle_escaped": 1 if self.escaped else 0,
            "oracle_first_escape_cycle": (
                -1 if self.first_escape_cycle is None else self.first_escape_cycle
            ),
            "oracle_activations": self.activations_observed,
            "oracle_mitigation_events": self.mitigation_events,
            "oracle_rows_tracked": self.rows_tracked(),
        }
