"""Empirical red-team search engine.

For each mitigation mechanism, :class:`RedTeamEngine` searches for the
RowHammer thresholds at which a synthesised attack pattern *empirically*
escapes the mechanism -- i.e. a ground-truth
:class:`~repro.attacks.oracle.DisturbanceOracle` observes some row reaching
``N_RH`` activations before its victims are refreshed -- and compares that
boundary with the analytical bound of :mod:`repro.analysis.security`.

Search structure:

1. **Grid scan.**  Every (N_RH, attack spec) combination of the grid becomes
   one :func:`~repro.experiments.sweep.attack_search_job`, executed as a
   single batch through a :class:`~repro.experiments.sweep.SweepEngine` --
   so probes run in parallel when the engine has workers and are memoised in
   its persistent :class:`~repro.experiments.cache.ResultCache`.  Thresholds
   at which the mechanism cannot even be *configured* (e.g. Chronus below
   ``Anormal + 2``) are recorded as escapes by construction, without
   simulating.
2. **Bisection refinement.**  Between the largest escaping grid threshold
   and the smallest non-escaping one, a deterministic binary search narrows
   the empirical security boundary to consecutive integers.

Everything is deterministic for a fixed seed: traces, PARA's RNG and the
search path itself, so repeated runs replay entirely from the cache and
serial and parallel execution agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.analysis.security import (
    DEFAULT_PARAMETERS,
    SecurityParameters,
    minimum_secure_nrh_chronus,
    minimum_secure_nrh_prac,
    minimum_secure_nrh_prfm,
)
from repro.attacks.patterns import AttackSpec, default_search_specs
from repro.core.factory import MECHANISM_NAMES, build_mechanism
from repro.experiments.sweep import SimJob, SweepEngine, attack_search_job
from repro.system.config import SystemConfig, paper_system_config

#: RowHammer thresholds probed by default.  ``N_RH = 1`` is the degenerate
#: floor (the very first activation is already an escape, for any defence),
#: which guarantees every mechanism reports an empirical escaping threshold.
DEFAULT_NRH_GRID: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Safety bound on bisection steps (the grid spans small integers).
MAX_REFINEMENT_STEPS = 12


def analytical_min_secure_nrh(
    mechanism: str, params: SecurityParameters = DEFAULT_PARAMETERS
) -> Optional[int]:
    """Smallest analytically secure ``N_RH`` for a factory mechanism.

    Returns ``None`` for mechanisms the paper's wave-attack analysis does not
    model (the deterministic trackers and PARA) and for the no-mitigation
    baseline (which is never secure).
    """
    if mechanism in ("PRAC-1", "PRAC-2", "PRAC-4"):
        return minimum_secure_nrh_prac(int(mechanism.split("-")[1]), params=params)
    if mechanism in ("PRAC+PRFM",):
        # The composite inherits PRAC-4's configurability limit.
        return minimum_secure_nrh_prac(4, params=params)
    if mechanism == "Chronus":
        return minimum_secure_nrh_chronus(params)
    if mechanism == "Chronus-PB":
        # CCU with PRAC-4's back-off policy: configured via the PRAC analysis.
        return minimum_secure_nrh_prac(4, params=params)
    if mechanism == "PRFM":
        return minimum_secure_nrh_prfm(params)
    return None


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one (mechanism, N_RH, attack spec) probe."""

    mechanism: str
    nrh: int
    spec: Optional[AttackSpec]
    #: False when the mechanism cannot be configured at this N_RH at all
    #: (escape by construction; nothing was simulated).
    configured: bool
    #: The mechanism's own claim about its configuration (red-edged bars).
    secure_config: bool
    escaped: bool
    max_disturbance: int
    first_escape_cycle: Optional[int]
    job_key: Optional[str] = None

    @property
    def spec_label(self) -> str:
        return self.spec.label if self.spec is not None else "(unconfigurable)"


@dataclass
class RedTeamReport:
    """Aggregated red-team search result for one mechanism."""

    mechanism: str
    nrh_grid: Tuple[int, ...]
    probes: List[ProbeResult] = field(default_factory=list)
    analytical_min_secure: Optional[int] = None
    refined: bool = False

    # ------------------------------------------------------------------ #
    # Empirical boundary
    # ------------------------------------------------------------------ #
    def escaping_nrh_values(self) -> List[int]:
        """Thresholds at which at least one probe escaped, ascending."""
        return sorted({p.nrh for p in self.probes if p.escaped})

    @property
    def empirical_min_escaping_nrh(self) -> Optional[int]:
        """Smallest ``N_RH`` at which an attack escaped (None: no escape)."""
        escaping = self.escaping_nrh_values()
        return escaping[0] if escaping else None

    @property
    def empirical_max_escaping_nrh(self) -> Optional[int]:
        """Largest ``N_RH`` at which an attack escaped (None: no escape)."""
        escaping = self.escaping_nrh_values()
        return escaping[-1] if escaping else None

    @property
    def empirical_min_secure_nrh(self) -> Optional[int]:
        """Smallest probed ``N_RH`` above every observed escape.

        ``None`` when even the largest probed threshold was escaped.
        """
        max_escaping = self.empirical_max_escaping_nrh
        candidates = sorted(
            {p.nrh for p in self.probes}
            if max_escaping is None
            else {p.nrh for p in self.probes if p.nrh > max_escaping}
        )
        return candidates[0] if candidates else None

    def best_probe(self, nrh: int) -> Optional[ProbeResult]:
        """The most disturbing probe at ``nrh`` (escapes first)."""
        probes = [p for p in self.probes if p.nrh == nrh]
        if not probes:
            return None
        return max(probes, key=lambda p: (p.escaped, p.max_disturbance))

    # ------------------------------------------------------------------ #
    # Analytical comparison
    # ------------------------------------------------------------------ #
    @property
    def disagreement(self) -> Optional[str]:
        """Human-readable empirical-vs-analytical discrepancy (or None).

        An attack escaping at an analytically *secure* threshold is the
        alarming direction; the converse (analytically insecure but no
        escape observed) is expected at this simulation scale -- the
        analytical wave attack assumes a full 32 ms refresh window -- and is
        therefore not flagged.
        """
        if self.analytical_min_secure is None:
            return None
        max_escaping = self.empirical_max_escaping_nrh
        if max_escaping is not None and max_escaping >= self.analytical_min_secure:
            return (
                f"attack escaped at N_RH={max_escaping}, which the analysis "
                f"claims secure (analytical minimum {self.analytical_min_secure})"
            )
        return None


class RedTeamEngine:
    """Searches for the empirical security boundary of each mechanism."""

    def __init__(
        self,
        engine: Optional[SweepEngine] = None,
        base_config: Optional[SystemConfig] = None,
        seed: int = 0,
    ) -> None:
        """Create a red-team engine.

        Args:
            engine: sweep engine used to execute (and cache) the probes; a
                fresh memory-only engine when omitted.
            base_config: system configuration the probes derive from.
            seed: seed for trace generation and the mechanisms' RNGs.

        The analytical comparison and the configurability pre-check both use
        :data:`~repro.analysis.security.DEFAULT_PARAMETERS` -- the same
        parameters the simulator's mechanism factory is built with, so the
        pre-check always agrees with what the executed jobs would do.
        """
        self.engine = engine if engine is not None else SweepEngine()
        self.base_config = base_config or paper_system_config()
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Job construction
    # ------------------------------------------------------------------ #
    def can_configure(self, mechanism: str, nrh: int) -> bool:
        """True if the mechanism can be instantiated at ``nrh`` at all."""
        try:
            build_mechanism(
                mechanism,
                nrh=nrh,
                num_banks=self.base_config.organization.total_banks,
                seed=self.seed,
                allow_insecure=True,
            )
            return True
        except ValueError:
            return False

    def build_job(self, mechanism: str, nrh: int, spec: AttackSpec) -> SimJob:
        """The sweep job for one probe."""
        return attack_search_job(
            self.base_config, mechanism, nrh, spec, seed=self.seed
        )

    def probe_jobs(
        self, mechanism: str, nrh_values: Sequence[int], specs: Sequence[AttackSpec]
    ) -> List[SimJob]:
        """All simulable probe jobs of a grid (unconfigurable points skipped)."""
        if any(nrh <= 0 for nrh in nrh_values):
            raise ValueError("nrh_values must be positive")
        return [
            self.build_job(mechanism, nrh, spec)
            for nrh in nrh_values
            if self.can_configure(mechanism, nrh)
            for spec in specs
        ]

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def _probe_batch(
        self, mechanism: str, nrh_values: Sequence[int], specs: Sequence[AttackSpec]
    ) -> List[ProbeResult]:
        """Run one batch of probes (one engine call; parallel-friendly)."""
        probes: List[ProbeResult] = []
        jobs: List[Tuple[int, AttackSpec, SimJob]] = []
        for nrh in nrh_values:
            if not self.can_configure(mechanism, nrh):
                probes.append(
                    ProbeResult(
                        mechanism=mechanism,
                        nrh=nrh,
                        spec=None,
                        configured=False,
                        secure_config=False,
                        escaped=True,
                        max_disturbance=nrh,
                        first_escape_cycle=None,
                    )
                )
                continue
            for spec in specs:
                jobs.append((nrh, spec, self.build_job(mechanism, nrh, spec)))
        results = self.engine.run_jobs([job for _, _, job in jobs])
        for nrh, spec, job in jobs:
            result = results[job.key]
            stats = result.mitigation_stats
            first_escape = stats.get("oracle_first_escape_cycle", -1)
            probes.append(
                ProbeResult(
                    mechanism=mechanism,
                    nrh=nrh,
                    spec=spec,
                    configured=True,
                    secure_config=result.is_secure,
                    escaped=bool(stats.get("oracle_escaped", 0)),
                    max_disturbance=int(stats.get("oracle_max_disturbance", 0)),
                    first_escape_cycle=None if first_escape < 0 else first_escape,
                    job_key=job.key,
                )
            )
        return probes

    def probe(self, mechanism: str, nrh: int, spec: AttackSpec) -> ProbeResult:
        """Run (or fetch) a single probe."""
        return self._probe_batch(mechanism, [nrh], [spec])[0]

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def search(
        self,
        mechanism: str,
        nrh_values: Sequence[int] = DEFAULT_NRH_GRID,
        patterns: Optional[Sequence[str]] = None,
        specs: Optional[Sequence[AttackSpec]] = None,
        refine: bool = True,
    ) -> RedTeamReport:
        """Grid scan plus bisection refinement for one mechanism.

        Args:
            mechanism: a :data:`~repro.core.factory.MECHANISM_NAMES` entry.
            nrh_values: RowHammer thresholds of the grid scan.
            patterns: restrict the synthesised patterns (default: all).
            specs: explicit attack specs (overrides ``patterns``).
            refine: bisect between the largest escaping and the smallest
                surviving threshold until they are consecutive.
        """
        if mechanism not in MECHANISM_NAMES:
            raise ValueError(
                f"unknown mechanism {mechanism!r}; expected one of {MECHANISM_NAMES}"
            )
        grid = tuple(sorted(set(nrh_values)))
        if not grid or grid[0] <= 0:
            raise ValueError("nrh_values must be positive")
        if specs is None:
            specs = default_search_specs(patterns, seed=self.seed)
        report = RedTeamReport(
            mechanism=mechanism,
            nrh_grid=grid,
            analytical_min_secure=analytical_min_secure_nrh(mechanism),
        )
        report.probes.extend(self._probe_batch(mechanism, grid, specs))

        if refine:
            self._refine(report, specs)
        return report

    def _refine(self, report: RedTeamReport, specs: Sequence[AttackSpec]) -> None:
        """Bisect the empirical boundary to consecutive thresholds."""
        for _ in range(MAX_REFINEMENT_STEPS):
            low = report.empirical_max_escaping_nrh
            high = report.empirical_min_secure_nrh
            if low is None or high is None or high - low <= 1:
                break
            mid = (low + high) // 2
            report.probes.extend(self._probe_batch(report.mechanism, [mid], specs))
            report.refined = True

    def compare(
        self,
        mechanisms: Sequence[str] = MECHANISM_NAMES,
        nrh_values: Sequence[int] = DEFAULT_NRH_GRID,
        patterns: Optional[Sequence[str]] = None,
        refine: bool = True,
    ) -> List[RedTeamReport]:
        """Run :meth:`search` for several mechanisms."""
        return [
            self.search(mechanism, nrh_values, patterns=patterns, refine=refine)
            for mechanism in mechanisms
        ]
