"""Declarative adversarial access patterns.

Every attack this repository knows how to mount is described by an
:class:`AttackSpec` -- a pattern name, a (fully resolvable) parameter set and
a seed -- and compiled into a :class:`~repro.cpu.trace.Trace` by the builder
registered for that pattern.  The registry (:data:`ATTACK_PATTERNS`) is the
single catalogue the red-team engine, the CLI (``python -m repro attack``)
and the benchmarks all draw from:

``single_sided``
    classic single-aggressor hammering, interleaved with a far-away dummy row
    so every access closes the previously open row.
``double_sided``
    the two immediate neighbours of a victim row hammered alternately.
``many_sided``
    N aggressor rows hammered round-robin (generalises TRRespass-style
    many-sided patterns).
``wave``
    the paper's §4 wave / feinting attack: a large decoy row set hammered in
    balanced rounds so a budget-limited mitigation can only refresh a small
    subset per preventive action.
``rfm_dodge``
    round-robin over many banks so per-bank activation counters (PRFM's
    ``RFMth``) grow as slowly as possible relative to per-row pressure.
``refresh_sync``
    burst hammering separated by long compute gaps, aligning the quiet phases
    with periodic refresh to dodge borrowed-refresh style cleanup.
``perf_attack``
    the §11 memory performance attack (few rows, few banks, back-to-back).

The historical entry points (``wave_attack_addresses``, ``wave_attack_trace``
and ``performance_attack_trace``) live here now; ``repro.workloads.attacker``
re-exports them with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.controller.address_mapping import AddressMapping, mop_mapping
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.organization import DramAddress, DramOrganization, PAPER_ORGANIZATION


def _address_for(
    mapping: AddressMapping,
    organization: DramOrganization,
    bank_index: int,
    row: int,
    column: int = 0,
) -> int:
    """Physical address that decodes to (bank_index, row, column)."""
    rank, bankgroup, bank = organization.unflatten_bank_index(bank_index)
    dram = DramAddress(
        channel=0, rank=rank, bankgroup=bankgroup, bank=bank, row=row, column=column
    )
    return mapping.encode(dram)


def _check_row(organization: DramOrganization, row: int, what: str = "row") -> None:
    if not 0 <= row < organization.rows:
        raise ValueError(
            f"{what} {row} out of range [0, {organization.rows}) for this organization"
        )


def retarget_channel(trace: Trace, mapping: AddressMapping, channel: int) -> Trace:
    """Move every access of ``trace`` to ``channel``.

    Pattern builders emit channel-0 addresses; on a multi-channel system this
    helper re-encodes each address with the ``channel`` field replaced, so an
    attack aims at exactly one channel while leaving its bank/row geometry
    intact.  Works for any bijective mapping (the decode/encode round-trip is
    exact).
    """
    organization = mapping.organization
    if not 0 <= channel < organization.channels:
        raise ValueError(
            f"channel {channel} out of range [0, {organization.channels})"
        )
    entries = [
        replace(
            entry,
            address=mapping.encode(replace(mapping.decode(entry.address), channel=channel)),
        )
        for entry in trace
    ]
    return Trace(trace.name, entries)


# --------------------------------------------------------------------------- #
# Historical entry points (migrated from repro.workloads.attacker)
# --------------------------------------------------------------------------- #

def _wave_rows(
    organization: DramOrganization, num_rows: int, row_stride: int, first_row: int
) -> List[int]:
    """The decoy row set of a wave attack, validated against the bank size.

    A row set that does not fit would silently wrap around under the modulo
    arithmetic historically used here, reusing rows and making victim sets
    overlap -- corrupting the attack's balance -- so it raises ``ValueError``
    instead.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    if row_stride <= 0:
        raise ValueError("row_stride must be positive")
    if first_row < 0:
        raise ValueError("first_row must be non-negative")
    if first_row + num_rows * row_stride > organization.rows:
        raise ValueError(
            f"wave attack row set does not fit: first_row={first_row} + "
            f"num_rows={num_rows} * row_stride={row_stride} exceeds "
            f"{organization.rows} rows per bank (rows would wrap around and "
            f"victim sets would overlap)"
        )
    return [first_row + index * row_stride for index in range(num_rows)]


def wave_attack_addresses(
    num_rows: int,
    bank_index: int = 0,
    organization: DramOrganization = PAPER_ORGANIZATION,
    mapping: Optional[AddressMapping] = None,
    row_stride: int = 4,
    first_row: int = 0,
) -> List[int]:
    """Physical addresses of ``num_rows`` decoy rows in one bank.

    Rows are spaced ``row_stride`` apart so their victim sets stay disjoint
    enough for the analysis (the paper assumes a blast radius of 2).  The row
    set must fit in the bank (see :func:`_wave_rows`).
    """
    mapping = mapping or mop_mapping(organization)
    return [
        _address_for(mapping, organization, bank_index, row)
        for row in _wave_rows(organization, num_rows, row_stride, first_row)
    ]


def wave_attack_trace(
    num_rows: int = 64,
    rounds: int = 32,
    bank_index: int = 0,
    organization: DramOrganization = PAPER_ORGANIZATION,
    mapping: Optional[AddressMapping] = None,
    name: str = "wave_attack",
    row_stride: int = 4,
    first_row: int = 0,
) -> Trace:
    """A wave-attack trace: hammer every decoy row once per round.

    Alternating between each decoy row and a conflicting row in the same bank
    forces a fresh activation per access even under an open-page policy.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    rows = _wave_rows(organization, num_rows, row_stride, first_row)
    mapping = mapping or mop_mapping(organization)
    entries: List[TraceEntry] = []
    for _ in range(rounds):
        for row in rows:
            # Interleave with a conflicting row in the same bank so that each
            # access closes the previously open row (classic hammer kernel).
            conflict_row = (row + 2) % organization.rows
            entries.append(
                TraceEntry(
                    gap_instructions=0,
                    address=_address_for(mapping, organization, bank_index, row),
                )
            )
            entries.append(
                TraceEntry(
                    gap_instructions=0,
                    address=_address_for(mapping, organization, bank_index, conflict_row),
                )
            )
    return Trace(name, entries)


def performance_attack_trace(
    num_banks: int = 4,
    rows_per_bank: int = 8,
    num_accesses: int = 40_000,
    organization: DramOrganization = PAPER_ORGANIZATION,
    mapping: Optional[AddressMapping] = None,
    seed: int = 0,
    name: str = "perf_attack",
) -> Trace:
    """The §11 memory performance attack.

    One malicious core hammers ``rows_per_bank`` rows in each of ``num_banks``
    banks back-to-back (no compute gap), maximising the rate of preventive
    refreshes that the mitigation mechanism performs and thereby hogging DRAM
    bandwidth.  The paper found 8 rows x 4 banks to be the most damaging
    pattern for both Chronus and PRAC in its configuration.
    """
    if num_banks <= 0 or rows_per_bank <= 0 or num_accesses <= 0:
        raise ValueError("attack parameters must be positive")
    mapping = mapping or mop_mapping(organization)
    rng = random.Random(seed)
    banks = list(range(min(num_banks, organization.total_banks)))
    base_row = rng.randrange(organization.rows // 2)
    rows = [base_row + 4 * index for index in range(rows_per_bank)]

    entries: List[TraceEntry] = []
    cursor = 0
    while len(entries) < num_accesses:
        row = rows[cursor % rows_per_bank]
        for bank_index in banks:
            if len(entries) >= num_accesses:
                break
            entries.append(
                TraceEntry(
                    gap_instructions=0,
                    address=_address_for(mapping, organization, bank_index, row),
                )
            )
        cursor += 1
    return Trace(name, entries)


# --------------------------------------------------------------------------- #
# Pattern builders (new synthesised attacks)
# --------------------------------------------------------------------------- #

def _hammer_pair(
    organization: DramOrganization,
    mapping: AddressMapping,
    bank_index: int,
    row_a: int,
    row_b: int,
    pairs: int,
) -> List[TraceEntry]:
    """``pairs`` alternations between two conflicting rows of one bank."""
    address_a = _address_for(mapping, organization, bank_index, row_a)
    address_b = _address_for(mapping, organization, bank_index, row_b)
    entries: List[TraceEntry] = []
    for _ in range(pairs):
        entries.append(TraceEntry(gap_instructions=0, address=address_a))
        entries.append(TraceEntry(gap_instructions=0, address=address_b))
    return entries


def build_single_sided(
    organization: DramOrganization,
    mapping: AddressMapping,
    seed: int,
    hammer_count: int,
    row: int,
    dummy_distance: int,
    bank_index: int,
) -> Trace:
    """One aggressor row, interleaved with a far-away dummy row."""
    if hammer_count <= 0:
        raise ValueError("hammer_count must be positive")
    _check_row(organization, row)
    _check_row(organization, row + dummy_distance, "dummy row")
    entries = _hammer_pair(
        organization, mapping, bank_index, row, row + dummy_distance, hammer_count
    )
    return Trace("single_sided", entries)


def build_double_sided(
    organization: DramOrganization,
    mapping: AddressMapping,
    seed: int,
    pair_rounds: int,
    victim_row: int,
    bank_index: int,
) -> Trace:
    """The two immediate neighbours of ``victim_row`` hammered alternately."""
    if pair_rounds <= 0:
        raise ValueError("pair_rounds must be positive")
    if victim_row < 1:
        raise ValueError("victim_row must have a lower neighbour")
    _check_row(organization, victim_row + 1, "upper aggressor")
    entries = _hammer_pair(
        organization, mapping, bank_index, victim_row - 1, victim_row + 1, pair_rounds
    )
    return Trace("double_sided", entries)


def build_many_sided(
    organization: DramOrganization,
    mapping: AddressMapping,
    seed: int,
    num_sides: int,
    rounds: int,
    first_row: int,
    stride: int,
    bank_index: int,
) -> Trace:
    """``num_sides`` aggressor rows hammered round-robin."""
    if num_sides < 2:
        raise ValueError("num_sides must be at least 2 (adjacent rows conflict)")
    if rounds <= 0 or stride <= 0:
        raise ValueError("rounds and stride must be positive")
    _check_row(organization, first_row + (num_sides - 1) * stride, "last aggressor")
    addresses = [
        _address_for(mapping, organization, bank_index, first_row + index * stride)
        for index in range(num_sides)
    ]
    entries = [
        TraceEntry(gap_instructions=0, address=address)
        for _ in range(rounds)
        for address in addresses
    ]
    return Trace("many_sided", entries)


def build_wave(
    organization: DramOrganization,
    mapping: AddressMapping,
    seed: int,
    num_rows: int,
    rounds: int,
    row_stride: int,
    first_row: int,
    bank_index: int,
) -> Trace:
    """The §4 wave attack (delegates to :func:`wave_attack_trace`)."""
    return wave_attack_trace(
        num_rows=num_rows,
        rounds=rounds,
        bank_index=bank_index,
        organization=organization,
        mapping=mapping,
        name="wave",
        row_stride=row_stride,
        first_row=first_row,
    )


def build_rfm_dodge(
    organization: DramOrganization,
    mapping: AddressMapping,
    seed: int,
    num_banks: int,
    rows_per_bank: int,
    rounds: int,
    stride: int,
    first_row: int,
) -> Trace:
    """Round-robin over banks so per-bank counters grow as slowly as possible.

    Each round activates every (bank, row) pair once, bank-major, so a
    per-bank activation budget (PRFM's ``RFMth``) is spread across
    ``num_banks`` counters while every row still gains one activation per
    round.
    """
    if num_banks <= 0 or rows_per_bank <= 0 or rounds <= 0 or stride <= 0:
        raise ValueError("attack parameters must be positive")
    _check_row(organization, first_row + (rows_per_bank - 1) * stride, "last row")
    banks = list(range(min(num_banks, organization.total_banks)))
    addresses = [
        _address_for(
            mapping, organization, bank_index, first_row + row_index * stride
        )
        for row_index in range(rows_per_bank)
        for bank_index in banks
    ]
    entries = [
        TraceEntry(gap_instructions=0, address=address)
        for _ in range(rounds)
        for address in addresses
    ]
    return Trace("rfm_dodge", entries)


def build_refresh_sync(
    organization: DramOrganization,
    mapping: AddressMapping,
    seed: int,
    burst_pairs: int,
    num_bursts: int,
    gap_instructions: int,
    row: int,
    dummy_distance: int,
    bank_index: int,
) -> Trace:
    """Burst hammering separated by long compute gaps.

    The quiet phases let periodic refreshes (and the borrowed-refresh
    cleanup that rides on them) pass while the aggressor is cold, then each
    burst re-applies maximum pressure.
    """
    if burst_pairs <= 0 or num_bursts <= 0:
        raise ValueError("burst_pairs and num_bursts must be positive")
    if gap_instructions < 0:
        raise ValueError("gap_instructions must be non-negative")
    _check_row(organization, row)
    _check_row(organization, row + dummy_distance, "dummy row")
    entries: List[TraceEntry] = []
    for burst in range(num_bursts):
        burst_entries = _hammer_pair(
            organization, mapping, bank_index, row, row + dummy_distance, burst_pairs
        )
        if burst:
            burst_entries[0] = replace(burst_entries[0], gap_instructions=gap_instructions)
        entries.extend(burst_entries)
    return Trace("refresh_sync", entries)


def build_perf_attack(
    organization: DramOrganization,
    mapping: AddressMapping,
    seed: int,
    num_banks: int,
    rows_per_bank: int,
    num_accesses: int,
) -> Trace:
    """The §11 performance attack (delegates to the historical builder)."""
    return performance_attack_trace(
        num_banks=num_banks,
        rows_per_bank=rows_per_bank,
        num_accesses=num_accesses,
        organization=organization,
        mapping=mapping,
        seed=seed,
        name="perf_attack",
    )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class AttackPattern:
    """One registered attack pattern.

    Attributes:
        name: registry key (also the compiled trace's name).
        summary: one-line human-readable description for ``attack list``.
        builder: callable ``(organization, mapping, seed, **params) -> Trace``.
        defaults: full default parameter set, as sorted (name, value) pairs.
        search_variants: parameter overrides (beyond the defaults) that the
            red-team search additionally tries; the defaults are always the
            first variant.
    """

    name: str
    summary: str
    builder: Callable[..., Trace]
    defaults: Tuple[Tuple[str, int], ...]
    search_variants: Tuple[Tuple[Tuple[str, int], ...], ...] = ()

    @property
    def default_params(self) -> Dict[str, int]:
        return dict(self.defaults)


def _params(**kwargs: int) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted(kwargs.items()))


ATTACK_PATTERNS: Dict[str, AttackPattern] = {
    pattern.name: pattern
    for pattern in (
        AttackPattern(
            name="single_sided",
            summary="one aggressor row interleaved with a far dummy row",
            builder=build_single_sided,
            defaults=_params(
                hammer_count=1200, row=100, dummy_distance=512, bank_index=0
            ),
            search_variants=(_params(hammer_count=2400),),
        ),
        AttackPattern(
            name="double_sided",
            summary="both immediate neighbours of one victim row",
            builder=build_double_sided,
            defaults=_params(pair_rounds=1200, victim_row=100, bank_index=0),
        ),
        AttackPattern(
            name="many_sided",
            summary="N aggressor rows hammered round-robin",
            builder=build_many_sided,
            defaults=_params(
                num_sides=8, rounds=300, first_row=64, stride=2, bank_index=0
            ),
            search_variants=(_params(num_sides=16, rounds=150),),
        ),
        AttackPattern(
            name="wave",
            summary="balanced decoy row set (the paper's §4 wave attack)",
            builder=build_wave,
            defaults=_params(
                num_rows=48, rounds=25, row_stride=4, first_row=0, bank_index=0
            ),
            search_variants=(_params(num_rows=96, rounds=12),),
        ),
        AttackPattern(
            name="rfm_dodge",
            summary="round-robin over banks to dodge per-bank RFM thresholds",
            builder=build_rfm_dodge,
            defaults=_params(
                num_banks=8, rows_per_bank=2, rounds=150, stride=4, first_row=32
            ),
        ),
        AttackPattern(
            name="refresh_sync",
            summary="hammer bursts separated by refresh-aligned quiet gaps",
            builder=build_refresh_sync,
            defaults=_params(
                burst_pairs=120,
                num_bursts=10,
                gap_instructions=4000,
                row=200,
                dummy_distance=512,
                bank_index=0,
            ),
        ),
        AttackPattern(
            name="perf_attack",
            summary="the §11 memory performance attack (few rows, few banks)",
            builder=build_perf_attack,
            defaults=_params(num_banks=4, rows_per_bank=8, num_accesses=2400),
        ),
    )
}


def pattern_names() -> Tuple[str, ...]:
    """All registered pattern names, in registry order."""
    return tuple(ATTACK_PATTERNS)


def pattern_by_name(name: str) -> AttackPattern:
    """Look up a registered pattern; raises ``ValueError`` for unknown names."""
    try:
        return ATTACK_PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown attack pattern {name!r}; expected one of {pattern_names()}"
        ) from None


# --------------------------------------------------------------------------- #
# AttackSpec
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class AttackSpec:
    """A declarative, content-addressable attack description.

    ``params`` holds *overrides* of the pattern's defaults as sorted
    (name, value) pairs, which keeps the spec hashable, picklable and
    JSON-serialisable -- the properties the sweep engine's job cache needs.

    ``channel`` aims the compiled attack at one memory channel of a
    multi-channel system (every builder emits channel-0 addresses; non-zero
    targets are re-encoded by :func:`retarget_channel`).  The default of 0
    is omitted from the cache payload, so every pre-existing single-channel
    job key is preserved.
    """

    pattern: str
    params: Tuple[Tuple[str, int], ...] = ()
    seed: int = 0
    channel: int = 0

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError("channel must be non-negative")
        registered = pattern_by_name(self.pattern)
        params = tuple(sorted(dict(self.params).items()))
        unknown = set(dict(params)) - set(registered.default_params)
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {sorted(unknown)} for pattern "
                f"{self.pattern!r}; accepted: {sorted(registered.default_params)}"
            )
        object.__setattr__(self, "params", params)

    @classmethod
    def create(
        cls,
        pattern: str,
        params: Optional[Mapping[str, int]] = None,
        seed: int = 0,
        channel: int = 0,
    ) -> "AttackSpec":
        """Build a spec from a plain parameter mapping."""
        return cls(
            pattern=pattern,
            params=tuple((params or {}).items()),
            seed=seed,
            channel=channel,
        )

    @property
    def resolved_params(self) -> Dict[str, int]:
        """The full parameter set: registry defaults with overrides applied."""
        resolved = pattern_by_name(self.pattern).default_params
        resolved.update(dict(self.params))
        return resolved

    def as_payload(self) -> Dict[str, object]:
        """JSON-serialisable description (cache key material).

        The *resolved* parameters are recorded, so changing a pattern's
        registry defaults changes the cache key of every spec relying on
        them -- stale results can never be served.
        """
        payload: Dict[str, object] = {
            "pattern": self.pattern,
            "params": self.resolved_params,
            "seed": self.seed,
        }
        # Only channel-targeted specs carry the field, so the keys of every
        # pre-existing (channel-0) spec -- and their cache entries -- are
        # byte-identical.
        if self.channel:
            payload["channel"] = self.channel
        return payload

    @property
    def label(self) -> str:
        """Compact human-readable description (CLI tables)."""
        overrides = ",".join(f"{k}={v}" for k, v in self.params)
        suffix = f"({overrides})" if overrides else ""
        target = f"@ch{self.channel}" if self.channel else ""
        return f"{self.pattern}{suffix}{target}"

    def compile(
        self,
        organization: DramOrganization = PAPER_ORGANIZATION,
        mapping: Optional[AddressMapping] = None,
    ) -> Trace:
        """Compile the spec into a memory-access trace."""
        mapping = mapping or mop_mapping(organization)
        builder = pattern_by_name(self.pattern).builder
        trace = builder(organization, mapping, self.seed, **self.resolved_params)
        if self.channel:
            trace = retarget_channel(trace, mapping, self.channel)
        return trace


def default_search_specs(
    patterns: Optional[Sequence[str]] = None, seed: int = 0, channel: int = 0
) -> List[AttackSpec]:
    """The spec set the red-team search tries per (mechanism, N_RH) point.

    For each selected pattern this yields the default parameterisation plus
    every registered search variant.  ``channel`` aims every spec at one
    memory channel of a multi-channel system.
    """
    selected = pattern_names() if patterns is None else tuple(patterns)
    specs: List[AttackSpec] = []
    for name in selected:
        registered = pattern_by_name(name)
        specs.append(AttackSpec(pattern=name, seed=seed, channel=channel))
        for variant in registered.search_variants:
            specs.append(
                AttackSpec(pattern=name, params=variant, seed=seed, channel=channel)
            )
    return specs
