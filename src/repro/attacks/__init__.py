"""Adversarial attack synthesis and empirical red-team search.

* :mod:`repro.attacks.patterns` -- the declarative attack-pattern registry
  and the :class:`AttackSpec` that compiles patterns into traces.
* :mod:`repro.attacks.oracle` -- the ground-truth disturbance oracle.
* :mod:`repro.attacks.redteam` -- the cached empirical search engine and its
  analytical comparison.

``repro.attacks.redteam`` pulls in the sweep engine, which itself compiles
attack traces via this package, so the red-team names are re-exported
lazily (PEP 562) to keep the import graph acyclic.
"""

from repro.attacks.oracle import DisturbanceOracle
from repro.attacks.patterns import (
    ATTACK_PATTERNS,
    AttackPattern,
    AttackSpec,
    default_search_specs,
    pattern_by_name,
    pattern_names,
    performance_attack_trace,
    wave_attack_addresses,
    wave_attack_trace,
)

_LAZY_REDTEAM = (
    "RedTeamEngine",
    "RedTeamReport",
    "ProbeResult",
    "DEFAULT_NRH_GRID",
    "analytical_min_secure_nrh",
)

__all__ = [
    "ATTACK_PATTERNS",
    "AttackPattern",
    "AttackSpec",
    "DisturbanceOracle",
    "default_search_specs",
    "pattern_by_name",
    "pattern_names",
    "performance_attack_trace",
    "wave_attack_addresses",
    "wave_attack_trace",
    *_LAZY_REDTEAM,
]


def __getattr__(name: str):
    if name in _LAZY_REDTEAM:
        from repro.attacks import redteam

        return getattr(redteam, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
