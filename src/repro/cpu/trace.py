"""Memory access traces.

A trace is the unit of workload in this repository (mirroring the Ramulator
trace format the paper uses): a named sequence of entries, each recording how
many non-memory instructions precede a memory access, the accessed physical
address, and whether the access is a write.

Traces can be synthesised (see :mod:`repro.workloads.synthetic`), written to
and read from a simple text format, and concatenated / truncated for the
scaled-down experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One memory access of a trace.

    Attributes:
        gap_instructions: non-memory instructions executed before this access.
        address: physical byte address of the access (cache-line aligned by
            the consumer).
        is_write: True for a store, False for a load.
    """

    gap_instructions: int
    address: int
    is_write: bool = False


class Trace:
    """A named sequence of :class:`TraceEntry` objects."""

    def __init__(self, name: str, entries: Sequence[TraceEntry]) -> None:
        if not entries:
            raise ValueError(f"trace {name!r} must contain at least one entry")
        self.name = name
        self.entries: List[TraceEntry] = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    @property
    def total_instructions(self) -> int:
        """Total instructions represented by the trace (memory + non-memory)."""
        return sum(entry.gap_instructions + 1 for entry in self.entries)

    @property
    def memory_accesses(self) -> int:
        """Number of memory accesses in the trace."""
        return len(self.entries)

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are writes."""
        writes = sum(1 for entry in self.entries if entry.is_write)
        return writes / len(self.entries)

    def accesses_per_kilo_instruction(self) -> float:
        """Memory accesses per 1000 instructions (pre-cache APKI)."""
        return 1000.0 * self.memory_accesses / max(1, self.total_instructions)

    def truncated(self, max_accesses: int) -> "Trace":
        """Return a copy limited to the first ``max_accesses`` accesses."""
        if max_accesses <= 0:
            raise ValueError("max_accesses must be positive")
        return Trace(self.name, self.entries[:max_accesses])

    # ------------------------------------------------------------------ #
    # Simple text serialisation (one access per line: gap address R|W)
    # ------------------------------------------------------------------ #
    def save(self, path: Path | str) -> None:
        """Write the trace to ``path`` in the text format."""
        path = Path(path)
        with path.open("w", encoding="ascii") as handle:
            for entry in self.entries:
                kind = "W" if entry.is_write else "R"
                handle.write(f"{entry.gap_instructions} 0x{entry.address:x} {kind}\n")

    @classmethod
    def load(cls, path: Path | str, name: str | None = None) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        path = Path(path)
        entries = []
        with path.open("r", encoding="ascii") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                gap_text, address_text, kind = line.split()
                entries.append(
                    TraceEntry(
                        gap_instructions=int(gap_text),
                        address=int(address_text, 16),
                        is_write=(kind.upper() == "W"),
                    )
                )
        return cls(name or path.stem, entries)
