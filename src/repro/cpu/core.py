"""Trace-driven core model.

Each core replays a memory-access trace through a bounded instruction window,
mirroring the processor model of Table 2 (4.2 GHz, 4-wide issue, 128-entry
instruction window):

* non-memory instructions retire at the peak issue rate;
* memory accesses first probe the shared LLC; hits complete after a fixed
  latency, misses become DRAM read requests;
* an access may only be *dispatched* once every instruction that is
  ``window_size`` instructions older has retired (in-order retirement), and
  at most ``max_outstanding`` DRAM reads may be in flight (MSHR limit);
* writes and writebacks are posted -- they generate DRAM traffic but do not
  stall the core.

The core is event-based: it exposes the earliest cycle at which it can make
progress, so the system simulator can skip idle cycles without losing
accuracy.  Traces wrap around until the core retires its instruction target,
which keeps memory contention alive for multi-programmed mixes whose
applications finish at different times (the standard weighted-speedup
methodology).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, TYPE_CHECKING

from repro.controller.request import MemoryRequest, RequestType
from repro.cpu.cache import Cache, CacheAccessResult
from repro.cpu.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import MemoryController

#: Sentinel "no event" hint.
FAR_FUTURE = 1 << 62


@dataclass
class _OutstandingAccess:
    """A dispatched memory access occupying the instruction window."""

    position: int
    completion_cycle: Optional[int]
    request: Optional[MemoryRequest] = None


class Core:
    """One trace-driven core of the simulated multi-core system."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        llc: Cache,
        clock_ratio: float = 2.625,
        issue_width: int = 4,
        window_size: int = 128,
        max_outstanding: int = 16,
        llc_hit_latency: int = 16,
        instruction_target: Optional[int] = None,
        bypass_llc: bool = False,
    ) -> None:
        """Create a core.

        Args:
            core_id: index of this core in the system.
            trace: the memory access trace the core replays.
            llc: the shared last-level cache.
            clock_ratio: core clock cycles per DRAM clock cycle (4.2 GHz over
                1.6 GHz = 2.625).
            issue_width: instructions issued per core cycle.
            window_size: instruction window (ROB) entries.
            max_outstanding: maximum in-flight DRAM reads (MSHR entries).
            llc_hit_latency: LLC hit latency in DRAM cycles.
            instruction_target: retire this many instructions before the core
                reports itself finished (defaults to one full pass of the
                trace).
            bypass_llc: if True, every access goes straight to DRAM (models an
                attacker that flushes its lines, as the §11 performance-attack
                study assumes).
        """
        if clock_ratio <= 0 or issue_width <= 0 or window_size <= 0:
            raise ValueError("core parameters must be positive")
        self.core_id = core_id
        self.trace = trace
        self.llc = llc
        self.clock_ratio = clock_ratio
        self.issue_width = issue_width
        self.window_size = window_size
        self.max_outstanding = max_outstanding
        self.llc_hit_latency = llc_hit_latency
        self.bypass_llc = bypass_llc
        self.instruction_target = (
            trace.total_instructions if instruction_target is None else instruction_target
        )
        #: Instructions retired per DRAM cycle when nothing stalls.
        self.instructions_per_dram_cycle = issue_width * clock_ratio

        # Trace cursor (wraps around).
        self._index = 0
        # Front-end progress, in DRAM cycles (fractional).
        self._front_cycle = 0.0
        # Cumulative instruction position of the *next* memory access.
        self._position = 0
        self._outstanding: Deque[_OutstandingAccess] = deque()
        self._reads_in_flight = 0

        # Progress accounting.
        self.retired_instructions = 0
        self.finish_cycle: Optional[int] = None
        self.mem_reads = 0
        self.mem_writes = 0
        self.llc_hits = 0
        self.llc_misses = 0

    # ------------------------------------------------------------------ #
    # Progress / completion
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """True once the core has retired its instruction target."""
        return self.finish_cycle is not None

    def ipc(self) -> float:
        """Instructions per *core* cycle up to the finish point."""
        if self.finish_cycle is None or self.finish_cycle == 0:
            return 0.0
        core_cycles = self.finish_cycle * self.clock_ratio
        return self.instruction_target / core_cycles

    def notify_completion(self, request: MemoryRequest, cycle: int) -> None:
        """A DRAM request issued by this core completed."""
        for access in self._outstanding:
            if access.request is request:
                access.completion_cycle = max(cycle, request.completion_cycle or cycle)
                if request.is_read:
                    self._reads_in_flight -= 1
                break

    # ------------------------------------------------------------------ #
    # Issuing
    # ------------------------------------------------------------------ #
    def try_issue(self, cycle: int, controller: "MemoryController") -> bool:
        """Attempt to dispatch the next trace access at ``cycle``.

        Returns True if an access was dispatched (the system should call
        again in the same cycle to exploit the full dispatch bandwidth).
        """
        self._retire(cycle)

        entry = self.trace[self._index]
        dispatch_position = self._position + entry.gap_instructions

        # Front-end: the access cannot dispatch before its preceding
        # instructions have been fetched / executed.
        ready_cycle = self._front_cycle + (
            entry.gap_instructions / self.instructions_per_dram_cycle
        )
        if ready_cycle > cycle:
            return False

        # Instruction-window constraint: the instruction ``window_size``
        # older must have retired.
        if not self._window_allows(dispatch_position, cycle):
            return False

        # MSHR constraint.
        if self._reads_in_flight >= self.max_outstanding:
            return False

        line_address = (entry.address // self.llc.line_size) * self.llc.line_size
        if self.bypass_llc:
            result = CacheAccessResult(hit=False)
        else:
            result = self.llc.access(line_address, entry.is_write)

        access = _OutstandingAccess(position=dispatch_position, completion_cycle=None)
        if result.hit:
            self.llc_hits += 1
            access.completion_cycle = cycle + self.llc_hit_latency
        else:
            self.llc_misses += 1
            if entry.is_write:
                # Write-allocate: fetch the line, but do not stall the core.
                self._post_write(controller, line_address, cycle)
                access.completion_cycle = cycle + self.llc_hit_latency
            else:
                request = MemoryRequest(
                    address=line_address,
                    request_type=RequestType.READ,
                    core_id=self.core_id,
                    arrival_cycle=cycle,
                )
                if not controller.enqueue(request):
                    # Queue full: undo the dispatch attempt (the LLC state
                    # change is harmless) and retry later.
                    return False
                access.request = request
                self._reads_in_flight += 1
                self.mem_reads += 1
        if result.writeback_address is not None:
            self._post_write(controller, result.writeback_address, cycle)

        if entry.is_write:
            self.mem_writes += 1

        self._outstanding.append(access)
        self._position = dispatch_position + 1
        self._front_cycle = max(self._front_cycle, float(cycle))
        self._front_cycle = max(ready_cycle, self._front_cycle)
        self._advance_cursor()
        return True

    def _post_write(self, controller: "MemoryController", address: int, cycle: int) -> None:
        """Send a posted (non-blocking) write to the memory controller."""
        request = MemoryRequest(
            address=address,
            request_type=RequestType.WRITE,
            core_id=self.core_id,
            arrival_cycle=cycle,
        )
        controller.enqueue(request)

    def _advance_cursor(self) -> None:
        self._index += 1
        if self._index >= len(self.trace):
            self._index = 0

    # ------------------------------------------------------------------ #
    # Retirement
    # ------------------------------------------------------------------ #
    def _window_allows(self, dispatch_position: int, cycle: int) -> bool:
        """True if the instruction window has room for ``dispatch_position``."""
        boundary = dispatch_position - self.window_size
        while self._outstanding and self._outstanding[0].position <= boundary:
            access = self._outstanding[0]
            if access.completion_cycle is None or access.completion_cycle > cycle:
                return False
            self._outstanding.popleft()
        return True

    def _retire(self, cycle: int) -> None:
        """Retire completed accesses and update the instruction count."""
        while self._outstanding:
            access = self._outstanding[0]
            if access.completion_cycle is None or access.completion_cycle > cycle:
                break
            self._outstanding.popleft()
        if self.finish_cycle is None:
            # Retired instructions are approximated by the front-end position
            # of the oldest un-retired access (in-order retirement).
            retired = self._position
            if self._outstanding:
                retired = min(retired, self._outstanding[0].position)
            self.retired_instructions = retired
            if retired >= self.instruction_target:
                self.finish_cycle = cycle

    # ------------------------------------------------------------------ #
    # Event hints
    # ------------------------------------------------------------------ #
    def next_event_cycle(self, cycle: int) -> int:
        """Earliest future cycle at which this core can make progress."""
        events = []
        entry = self.trace[self._index]
        events.append(
            self._front_cycle + entry.gap_instructions / self.instructions_per_dram_cycle
        )
        for access in self._outstanding:
            if access.completion_cycle is not None:
                events.append(access.completion_cycle)
        future = [math.ceil(event) for event in events if event > cycle]
        return min(future) if future else FAR_FUTURE
